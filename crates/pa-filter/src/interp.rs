//! The packet-filter interpreter.
//!
//! Verification has already bounded the stack and rejected malformed
//! programs, so execution is straight-line and cannot fail: every
//! instruction either manipulates the operand stack, touches a header
//! field through the frame, or returns a verdict. Falling off the end
//! returns [`crate::PASS`].

use crate::frame::Frame;
use crate::op::Op;
use crate::program::Program;
use crate::Verdict;

/// Where a non-PASS verdict was decided: program counter and mnemonic
/// of the deciding instruction. `&'static str` so trace events carrying
/// it stay `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectPoint {
    /// Index of the deciding instruction in the program.
    pub pc: u16,
    /// Mnemonic of the deciding instruction.
    pub op: &'static str,
}

/// Runs `program` against `frame`, returning the verdict (0 = pass).
pub fn run(program: &Program, frame: &mut Frame<'_>) -> Verdict {
    run_traced(program, frame).0
}

/// Like [`run`], but also reports *where* a non-PASS verdict was
/// decided, for diagnostic tracing. A PASS (including falling off the
/// end) carries no reject point.
pub fn run_traced(program: &Program, frame: &mut Frame<'_>) -> (Verdict, Option<RejectPoint>) {
    // Refuse to execute over a frame shorter than the class headers the
    // program's field references reach into — the totality guard that
    // makes arbitrary truncated wire bytes unable to panic a filter run.
    if frame.is_short() {
        return (crate::SHORT_FRAME, None);
    }
    // Exact stack requirement was computed by the verifier; a small
    // fixed-capacity Vec avoids reallocation in the common case.
    let mut stack: Vec<i64> = Vec::with_capacity(program.max_stack_depth() as usize);
    for (pc, op) in program.ops().iter().enumerate() {
        match *op {
            Op::PushConst(v) => stack.push(v),
            Op::PushSlot(s) => stack.push(program.slots()[s.0 as usize]),
            Op::PushField(f) => stack.push(frame.read(f) as i64),
            Op::PushSize => stack.push(frame.size() as i64),
            Op::PushBodySize => stack.push(frame.body_size() as i64),
            Op::Digest(kind) => stack.push(kind.compute(frame.body()) as i64),
            Op::DigestHeaders(kind) => stack.push(kind.compute_multi(&[
                frame.proto_hdr(),
                frame.gossip_hdr(),
                frame.body(),
            ]) as i64),
            Op::PopField(f) => {
                let v = stack.pop().expect("verified");
                frame.write(f, v as u64);
            }
            Op::Add => binop(&mut stack, |a, b| a.wrapping_add(b)),
            Op::Sub => binop(&mut stack, |a, b| a.wrapping_sub(b)),
            Op::Mul => binop(&mut stack, |a, b| a.wrapping_mul(b)),
            Op::And => binop(&mut stack, |a, b| a & b),
            Op::Or => binop(&mut stack, |a, b| a | b),
            Op::Xor => binop(&mut stack, |a, b| a ^ b),
            Op::Eq => binop(&mut stack, |a, b| (a == b) as i64),
            Op::Ne => binop(&mut stack, |a, b| (a != b) as i64),
            Op::Lt => binop(&mut stack, |a, b| (a < b) as i64),
            Op::Le => binop(&mut stack, |a, b| (a <= b) as i64),
            Op::Gt => binop(&mut stack, |a, b| (a > b) as i64),
            Op::Ge => binop(&mut stack, |a, b| (a >= b) as i64),
            Op::Not => {
                let v = stack.pop().expect("verified");
                stack.push((v == 0) as i64);
            }
            Op::Dup => {
                let v = *stack.last().expect("verified");
                stack.push(v);
            }
            Op::Swap => {
                let n = stack.len();
                stack.swap(n - 1, n - 2);
            }
            Op::Drop => {
                stack.pop().expect("verified");
            }
            Op::Return(v) => {
                let at = (v != crate::PASS).then(|| RejectPoint {
                    pc: pc as u16,
                    op: op.name(),
                });
                return (v, at);
            }
            Op::Abort(v) => {
                if stack.pop().expect("verified") != 0 {
                    return (
                        v,
                        Some(RejectPoint {
                            pc: pc as u16,
                            op: op.name(),
                        }),
                    );
                }
            }
        }
    }
    (crate::PASS, None)
}

#[inline]
fn binop(stack: &mut Vec<i64>, f: impl FnOnce(i64, i64) -> i64) {
    let top = stack.pop().expect("verified");
    let next = stack.pop().expect("verified");
    stack.push(f(next, top));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::DigestKind;
    use crate::op::Op;
    use crate::program::ProgramBuilder;
    use pa_buf::{ByteOrder, Msg};
    use pa_wire::{Class, CompiledLayout, Field, LayoutBuilder, LayoutMode};

    struct Fixture {
        layout: CompiledLayout,
        len_f: Field,
        ck_f: Field,
        seq_f: Field,
    }

    fn fixture() -> Fixture {
        let mut b = LayoutBuilder::new();
        b.begin_layer("l");
        let seq_f = b.add_field(Class::Protocol, "seq", 32, None).unwrap();
        let len_f = b.add_field(Class::Message, "len", 16, None).unwrap();
        let ck_f = b.add_field(Class::Message, "ck", 16, None).unwrap();
        Fixture {
            layout: b.compile(LayoutMode::Packed).unwrap(),
            len_f,
            ck_f,
            seq_f,
        }
    }

    fn frame_msg(layout: &CompiledLayout, payload: &[u8]) -> Msg {
        let hdr = layout.class_len(Class::Protocol)
            + layout.class_len(Class::Message)
            + layout.class_len(Class::Gossip);
        let mut m = Msg::from_payload(payload);
        m.push_front_zeroed(hdr);
        m
    }

    fn run_ops(fx: &Fixture, msg: &mut Msg, ops: Vec<Op>) -> i64 {
        let mut b = ProgramBuilder::new();
        b.extend(ops);
        let p = b.build().unwrap();
        let mut frame = Frame::new(msg, &fx.layout, ByteOrder::Big);
        run(&p, &mut frame)
    }

    #[test]
    fn traced_run_reports_the_deciding_instruction() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        let mut b = ProgramBuilder::new();
        b.extend(vec![Op::PushConst(1), Op::Abort(9), Op::Return(0)]);
        let p = b.build().unwrap();
        let mut frame = Frame::new(&mut m, &fx.layout, ByteOrder::Big);
        let (v, at) = run_traced(&p, &mut frame);
        assert_eq!(v, 9);
        let at = at.expect("rejected");
        assert_eq!(at.pc, 1);
        assert_eq!(at.op, "ABORT");

        let mut b = ProgramBuilder::new();
        b.extend(vec![Op::Return(0)]);
        let p = b.build().unwrap();
        let mut frame = Frame::new(&mut m, &fx.layout, ByteOrder::Big);
        assert_eq!(run_traced(&p, &mut frame), (0, None));
    }

    #[test]
    fn empty_program_passes() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"x");
        assert_eq!(run_ops(&fx, &mut m, vec![]), 0);
    }

    #[test]
    fn arithmetic() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        // (10 - 3) * 2 + 6 == 20 → Eq pushes 1 → Abort 7 fires.
        let ops = vec![
            Op::PushConst(10),
            Op::PushConst(3),
            Op::Sub,
            Op::PushConst(2),
            Op::Mul,
            Op::PushConst(6),
            Op::Add,
            Op::PushConst(20),
            Op::Eq,
            Op::Abort(7),
            Op::Return(1),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 7);
    }

    #[test]
    fn comparisons() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        for (op, a, b, expect) in [
            (Op::Lt, 1, 2, 1),
            (Op::Lt, 2, 2, 0),
            (Op::Le, 2, 2, 1),
            (Op::Gt, 3, 2, 1),
            (Op::Ge, 2, 3, 0),
            (Op::Ne, 4, 5, 1),
        ] {
            let ops = vec![
                Op::PushConst(a),
                Op::PushConst(b),
                op,
                Op::Abort(1),
                Op::Return(0),
            ];
            let got = run_ops(&fx, &mut m, ops);
            assert_eq!(got, expect, "{op} {a} {b}");
        }
    }

    #[test]
    fn bitwise_and_not() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        let ops = vec![
            Op::PushConst(0b1100),
            Op::PushConst(0b1010),
            Op::Xor, // 0b0110
            Op::PushConst(0b0110),
            Op::Eq,
            Op::Not, // 0
            Op::Abort(5),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 0);
    }

    #[test]
    fn dup_swap_drop() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        // stack: 1 2 → swap → 2 1 → dup → 2 1 1 → drop → 2 1 → sub = 1
        let ops = vec![
            Op::PushConst(1),
            Op::PushConst(2),
            Op::Swap,
            Op::Dup,
            Op::Drop,
            Op::Sub,
            Op::Abort(3),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 3);
    }

    #[test]
    fn push_size_and_body_size() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"12345");
        let total = m.len() as i64;
        let ops = vec![
            Op::PushSize,
            Op::PushConst(total),
            Op::Ne,
            Op::Abort(1),
            Op::PushBodySize,
            Op::PushConst(5),
            Op::Ne,
            Op::Abort(2),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 0);
    }

    #[test]
    fn send_filter_fills_fields_then_recv_filter_validates() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"the payload");

        // Send side: len := PUSH_SIZE; ck := DIGEST.
        let send_ops = vec![
            Op::PushSize,
            Op::PopField(fx.len_f),
            Op::Digest(DigestKind::InternetChecksum),
            Op::PopField(fx.ck_f),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, send_ops), 0);

        // Wire transfer.
        let mut rx = Msg::from_wire(m.to_wire());

        // Receive side: both must match.
        let recv_ops = vec![
            Op::PushField(fx.len_f),
            Op::PushSize,
            Op::Ne,
            Op::Abort(1),
            Op::PushField(fx.ck_f),
            Op::Digest(DigestKind::InternetChecksum),
            Op::Ne,
            Op::Abort(2),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut rx, recv_ops.clone()), 0);

        // Corrupt a payload byte → checksum check fires.
        let last = rx.len() - 1;
        rx.set_byte_at(last, rx.byte_at(last) ^ 0xFF);
        assert_eq!(run_ops(&fx, &mut rx, recv_ops), 2);
    }

    #[test]
    fn size_reject_fragment_style() {
        // §6: "The fragmentation/reassembly layer adds code to the send
        // packet filter to reject messages over a certain size."
        let fx = fixture();
        let mtu = 16i64;
        let make = |payload: &[u8]| frame_msg(&fx.layout, payload);
        let ops = |_: ()| {
            vec![
                Op::PushBodySize,
                Op::PushConst(mtu),
                Op::Gt,
                Op::Abort(99),
                Op::Return(0),
            ]
        };
        let mut small = make(b"ok");
        assert_eq!(run_ops(&fx, &mut small, ops(())), 0);
        let mut big = make(&[0u8; 64]);
        assert_eq!(run_ops(&fx, &mut big, ops(())), 99);
    }

    #[test]
    fn slot_patching_changes_behaviour_without_rebuild() {
        let fx = fixture();
        let mut b = ProgramBuilder::new();
        let limit = b.alloc_slot(10);
        b.extend(vec![
            Op::PushBodySize,
            Op::PushSlot(limit),
            Op::Gt,
            Op::Abort(1),
            Op::Return(0),
        ]);
        let mut p = b.build().unwrap();

        let mut m = frame_msg(&fx.layout, &[0u8; 20]);
        {
            let mut frame = Frame::new(&mut m, &fx.layout, ByteOrder::Big);
            assert_eq!(run(&p, &mut frame), 1, "20 > 10");
        }
        p.set_slot(limit, 100);
        let mut frame = Frame::new(&mut m, &fx.layout, ByteOrder::Big);
        assert_eq!(run(&p, &mut frame), 0, "20 <= 100 after patch");
    }

    #[test]
    fn protocol_fields_accessible_too() {
        // Header prediction compares protocol fields outside the filter,
        // but a filter may also read them (e.g. fragment bit checks).
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        {
            let mut frame = Frame::new(&mut m, &fx.layout, ByteOrder::Big);
            frame.write(fx.seq_f, 99);
        }
        let ops = vec![
            Op::PushField(fx.seq_f),
            Op::PushConst(99),
            Op::Ne,
            Op::Abort(1),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 0);
    }

    #[test]
    fn wrapping_arithmetic_never_panics() {
        let fx = fixture();
        let mut m = frame_msg(&fx.layout, b"");
        let ops = vec![
            Op::PushConst(i64::MAX),
            Op::PushConst(1),
            Op::Add, // wraps
            Op::PushConst(i64::MIN),
            Op::Ne,
            Op::Abort(1),
            Op::Return(0),
        ];
        assert_eq!(run_ops(&fx, &mut m, ops), 0);
    }
}
