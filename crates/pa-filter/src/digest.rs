//! Message digests for the `DIGEST` filter instruction.
//!
//! Table 2 gives `DIGEST` a function pointer; we give it a small closed
//! set of algorithms so programs stay comparable, printable and
//! verifiable. All digests run over the *body* region of the frame —
//! everything after the gossip header (packing header + application
//! data) — which is the region whose integrity the message-specific
//! checksum protects. (The class headers themselves cannot be covered:
//! the checksum field lives inside one of them.)

use std::fmt;

/// Digest algorithm selector carried by [`crate::Op::Digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DigestKind {
    /// RFC 1071 one's-complement 16-bit sum (the Internet checksum).
    InternetChecksum,
    /// CRC-32 (IEEE 802.3 polynomial, bit-reflected).
    Crc32,
    /// XOR of all bytes — the cheapest possible integrity hint.
    Xor8,
}

impl DigestKind {
    /// Computes this digest over `data`.
    pub fn compute(self, data: &[u8]) -> u64 {
        self.compute_multi(&[data])
    }

    /// Computes this digest over the concatenation of `parts` without
    /// materializing it (used by `DIGEST_HEADERS`, which covers the
    /// protocol header + gossip header + body).
    pub fn compute_multi(self, parts: &[&[u8]]) -> u64 {
        match self {
            DigestKind::InternetChecksum => {
                // Streaming one's-complement sum with global byte-
                // position parity across part boundaries. Summed in
                // 16-bit big-endian words (RFC 1071) rather than byte
                // by byte — this runs inside the packet filter on every
                // fast-path send and deliver, so the word loop (which
                // the compiler unrolls and vectorizes) is hot-path
                // relevant. Bit-identical to the byte formulation.
                let mut sum = 0u32;
                let mut odd = false;
                for part in parts {
                    let mut p: &[u8] = part;
                    if odd && !p.is_empty() {
                        // A part beginning at an odd global offset
                        // contributes its first byte in the low lane.
                        sum += p[0] as u32;
                        p = &p[1..];
                        odd = false;
                    }
                    let mut chunks = p.chunks_exact(2);
                    for c in &mut chunks {
                        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
                    }
                    if let [last] = chunks.remainder() {
                        sum += (*last as u32) << 8;
                        odd = true;
                    }
                }
                while sum >> 16 != 0 {
                    sum = (sum & 0xFFFF) + (sum >> 16);
                }
                (!(sum as u16)) as u64
            }
            DigestKind::Crc32 => {
                let mut crc = 0xFFFF_FFFFu32;
                for part in parts {
                    for &b in *part {
                        crc ^= b as u32;
                        for _ in 0..8 {
                            let lsb = crc & 1;
                            crc >>= 1;
                            if lsb != 0 {
                                crc ^= 0xEDB8_8320;
                            }
                        }
                    }
                }
                (!crc) as u64
            }
            DigestKind::Xor8 => parts.iter().flat_map(|p| p.iter()).fold(0u8, |a, &b| a ^ b) as u64,
        }
    }
}

impl fmt::Display for DigestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DigestKind::InternetChecksum => "inet16",
            DigestKind::Crc32 => "crc32",
            DigestKind::Xor8 => "xor8",
        };
        write!(f, "{s}")
    }
}

/// RFC 1071 Internet checksum (one's-complement sum of 16-bit words,
/// odd trailing byte padded with zero).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Bit-reflected CRC-32 (polynomial 0xEDB88320), tableless.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet_checksum_rfc1071_example() {
        // The classic example from RFC 1071 §3: words 0x0001, 0xf203,
        // 0xf4f5, 0xf6f7 sum to 0xddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn internet_checksum_odd_length() {
        // Odd byte is padded with zero on the right.
        assert_eq!(internet_checksum(&[0xAB]), !0xAB00u16);
    }

    #[test]
    fn internet_checksum_detects_flips() {
        let a = internet_checksum(b"hello world");
        let b = internet_checksum(b"hellp world");
        assert_ne!(a, b);
    }

    #[test]
    fn internet_checksum_verification_property() {
        // Appending the checksum and re-summing yields 0 (all-ones
        // before complement) — the standard verification identity.
        let data = b"The quick brown fox!"; // even length
        let ck = internet_checksum(data);
        let mut with = data.to_vec();
        with.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical "123456789" check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn xor8_is_order_insensitive_but_cheap() {
        assert_eq!(DigestKind::Xor8.compute(b"ab"), (b'a' ^ b'b') as u64);
        assert_eq!(DigestKind::Xor8.compute(b""), 0);
    }

    #[test]
    fn compute_dispatch() {
        let d = b"data";
        assert_eq!(DigestKind::Crc32.compute(d), crc32(d) as u64);
        assert_eq!(
            DigestKind::InternetChecksum.compute(d),
            internet_checksum(d) as u64
        );
    }

    #[test]
    fn compute_multi_equals_concatenation() {
        let parts: [&[u8]; 3] = [b"odd", b"", b"length parts!"];
        let concat: Vec<u8> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        for kind in [
            DigestKind::InternetChecksum,
            DigestKind::Crc32,
            DigestKind::Xor8,
        ] {
            assert_eq!(kind.compute_multi(&parts), kind.compute(&concat), "{kind}");
        }
    }

    #[test]
    fn compute_multi_detects_cross_part_flips() {
        let a = DigestKind::InternetChecksum.compute_multi(&[b"abc", b"def"]);
        let b = DigestKind::InternetChecksum.compute_multi(&[b"abd", b"def"]);
        assert_ne!(a, b);
    }

    #[test]
    fn display_names() {
        assert_eq!(DigestKind::Crc32.to_string(), "crc32");
        assert_eq!(DigestKind::InternetChecksum.to_string(), "inet16");
    }
}
