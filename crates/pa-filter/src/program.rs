//! Filter programs: construction, patchable slots, and static
//! verification.
//!
//! "There are no loop or function constructs, so a packet filter program
//! can be checked in advance, and the necessary size for the stack can
//! be calculated (typically just a few entries)." (§3.3)

use crate::op::{Op, SlotId};
use pa_wire::Class;
use std::fmt;

/// Hard cap on operand-stack depth; a verified program exceeding this is
/// rejected (real programs need "just a few entries").
pub const MAX_STACK: u32 = 32;

/// Errors detected by static verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An instruction would pop from an empty stack.
    StackUnderflow {
        /// Program counter of the offending instruction.
        pc: usize,
    },
    /// The program needs more than [`MAX_STACK`] stack entries.
    StackTooDeep {
        /// Depth that would be reached.
        depth: u32,
    },
    /// A field instruction references the conn-id class, which is not
    /// part of the filter frame.
    ConnIdField {
        /// Program counter of the offending instruction.
        pc: usize,
    },
    /// A `PushSlot` references a slot that was never allocated.
    BadSlot {
        /// Program counter of the offending instruction.
        pc: usize,
        /// The out-of-range slot.
        slot: u16,
    },
    /// Instructions follow an unconditional `RETURN` (dead code — almost
    /// certainly a mis-assembled layer fragment).
    DeadCode {
        /// Program counter of the unreachable instruction.
        pc: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            VerifyError::StackTooDeep { depth } => {
                write!(f, "stack depth {depth} exceeds maximum {MAX_STACK}")
            }
            VerifyError::ConnIdField { pc } => {
                write!(f, "conn-id field access at pc {pc} (not part of the frame)")
            }
            VerifyError::BadSlot { pc, slot } => {
                write!(f, "unallocated slot {slot} referenced at pc {pc}")
            }
            VerifyError::DeadCode { pc } => write!(f, "unreachable instruction at pc {pc}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A verified packet-filter program with its patchable slot values.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
    slots: Vec<i64>,
    max_depth: u32,
}

impl Program {
    /// The instruction sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The exact operand-stack requirement computed by the verifier.
    pub fn max_stack_depth(&self) -> u32 {
        self.max_depth
    }

    /// Number of patchable slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current value of a slot.
    pub fn slot(&self, id: SlotId) -> i64 {
        self.slots[id.0 as usize]
    }

    /// Rewrites a patchable slot — the §3.3 mechanism by which
    /// post-processing updates the filter as protocol state changes
    /// (e.g. the expected length bound moves when the window slides).
    pub fn set_slot(&mut self, id: SlotId, value: i64) {
        self.slots[id.0 as usize] = value;
    }

    /// All slot values (for the interpreter).
    pub fn slots(&self) -> &[i64] {
        &self.slots
    }

    /// An empty program (always passes). Useful as the identity filter.
    pub fn empty() -> Program {
        Program {
            ops: Vec::new(),
            slots: Vec::new(),
            max_depth: 0,
        }
    }

    /// Disassembles to one instruction per line.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("{pc:4}: {op}\n"));
        }
        out
    }
}

/// Accumulates instruction fragments from each layer, then verifies.
///
/// "The packet filters are constructed by the layers themselves, at
/// run-time. Each layer adds instructions to both packet filters for
/// their particular message-specific fields." (§3.3)
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    slots: Vec<i64>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one instruction.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends a sequence of instructions (one layer's fragment).
    pub fn extend(&mut self, ops: impl IntoIterator<Item = Op>) -> &mut Self {
        self.ops.extend(ops);
        self
    }

    /// Allocates a patchable slot initialized to `value` and returns its
    /// id for later `PushSlot` references and `set_slot` rewrites.
    pub fn alloc_slot(&mut self, value: i64) -> SlotId {
        let id = SlotId(self.slots.len() as u16);
        self.slots.push(value);
        id
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Verifies and seals the program.
    ///
    /// Verification walks the linear instruction sequence once, tracking
    /// stack depth (there are no branches, so depth is exact, not an
    /// approximation), and checks slot references and field classes.
    pub fn build(self) -> Result<Program, VerifyError> {
        let mut depth: u32 = 0;
        let mut max_depth: u32 = 0;
        for (pc, op) in self.ops.iter().enumerate() {
            match op {
                Op::PushField(f) | Op::PopField(f) if f.class == Class::ConnId => {
                    return Err(VerifyError::ConnIdField { pc });
                }
                Op::PushSlot(s) if s.0 as usize >= self.slots.len() => {
                    return Err(VerifyError::BadSlot { pc, slot: s.0 });
                }
                _ => {}
            }
            let (pops, pushes) = op.stack_effect();
            if depth < pops {
                return Err(VerifyError::StackUnderflow { pc });
            }
            depth = depth - pops + pushes;
            max_depth = max_depth.max(depth);
            if max_depth > MAX_STACK {
                return Err(VerifyError::StackTooDeep { depth: max_depth });
            }
            if op.is_terminator() && pc + 1 < self.ops.len() {
                return Err(VerifyError::DeadCode { pc: pc + 1 });
            }
        }
        Ok(Program {
            ops: self.ops,
            slots: self.slots,
            max_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::DigestKind;
    use pa_wire::Field;

    fn msg_field(i: usize) -> Field {
        Field::new(Class::Message, i)
    }

    #[test]
    fn empty_program_verifies() {
        let p = ProgramBuilder::new().build().unwrap();
        assert_eq!(p.max_stack_depth(), 0);
        assert_eq!(p.ops().len(), 0);
    }

    #[test]
    fn depth_is_exact() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushConst(1))
            .op(Op::PushConst(2))
            .op(Op::PushConst(3))
            .op(Op::Add)
            .op(Op::Add)
            .op(Op::Drop);
        let p = b.build().unwrap();
        assert_eq!(p.max_stack_depth(), 3);
    }

    #[test]
    fn underflow_detected_with_pc() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushConst(1)).op(Op::Add);
        assert_eq!(b.build(), Err(VerifyError::StackUnderflow { pc: 1 }));
    }

    #[test]
    fn conn_id_fields_rejected() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushField(Field::new(Class::ConnId, 0)));
        assert_eq!(b.build(), Err(VerifyError::ConnIdField { pc: 0 }));
        let mut b2 = ProgramBuilder::new();
        b2.op(Op::PushConst(0))
            .op(Op::PopField(Field::new(Class::ConnId, 1)));
        assert_eq!(b2.build(), Err(VerifyError::ConnIdField { pc: 1 }));
    }

    #[test]
    fn unallocated_slot_rejected() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushSlot(SlotId(0)));
        assert_eq!(b.build(), Err(VerifyError::BadSlot { pc: 0, slot: 0 }));
    }

    #[test]
    fn allocated_slot_accepted_and_patchable() {
        let mut b = ProgramBuilder::new();
        let s = b.alloc_slot(42);
        b.op(Op::PushSlot(s)).op(Op::Drop);
        let mut p = b.build().unwrap();
        assert_eq!(p.slot(s), 42);
        p.set_slot(s, 7);
        assert_eq!(p.slot(s), 7);
        assert_eq!(p.slot_count(), 1);
    }

    #[test]
    fn dead_code_after_return_rejected() {
        let mut b = ProgramBuilder::new();
        b.op(Op::Return(0)).op(Op::PushConst(1));
        assert_eq!(b.build(), Err(VerifyError::DeadCode { pc: 1 }));
    }

    #[test]
    fn abort_does_not_create_dead_code() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushConst(1)).op(Op::Abort(9)).op(Op::Return(0));
        assert!(b.build().is_ok());
    }

    #[test]
    fn stack_cap_enforced() {
        let mut b = ProgramBuilder::new();
        for _ in 0..(MAX_STACK + 1) {
            b.op(Op::PushConst(0));
        }
        assert!(matches!(b.build(), Err(VerifyError::StackTooDeep { .. })));
    }

    #[test]
    fn typical_checksum_program_verifies_shallow() {
        // The canonical send-side fragment: fill in length + checksum.
        let mut b = ProgramBuilder::new();
        b.op(Op::PushSize)
            .op(Op::PopField(msg_field(0)))
            .op(Op::Digest(DigestKind::InternetChecksum))
            .op(Op::PopField(msg_field(1)))
            .op(Op::Return(0));
        let p = b.build().unwrap();
        assert_eq!(p.max_stack_depth(), 1, "typically just a few entries");
    }

    #[test]
    fn disassembly_lists_all_ops() {
        let mut b = ProgramBuilder::new();
        b.op(Op::PushSize).op(Op::Return(0));
        let p = b.build().unwrap();
        let d = p.disassemble();
        assert!(d.contains("0: PUSH_SIZE"));
        assert!(d.contains("1: RETURN 0"));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(VerifyError::StackUnderflow { pc: 3 }
            .to_string()
            .contains("pc 3"));
        assert!(VerifyError::BadSlot { pc: 1, slot: 9 }
            .to_string()
            .contains("slot 9"));
    }
}
