//! The frame a packet filter operates on.
//!
//! At filter-run time the message has the shape (Figure 1, minus the
//! preamble and optional conn-ident, which the fast paths handle):
//!
//! ```text
//! ┌──────────┬──────────┬────────┬─────────────────────────────┐
//! │ protocol │ message  │ gossip │ body = packing hdr + data   │
//! └──────────┴──────────┴────────┴─────────────────────────────┘
//! ```
//!
//! All three class headers have sizes fixed by the compiled layout, so
//! every field resolves to a constant offset — this is what makes the
//! pre-resolved filter backend possible. The same frame shape is seen by
//! the send filter (just before the preamble is pushed) and the delivery
//! filter (just after the preamble is popped), so one program text works
//! in either direction.

use pa_buf::{ByteOrder, Msg};
use pa_wire::{Class, CompiledLayout, Field};

/// A mutable view of a message frame plus the layout needed to resolve
/// field handles.
pub struct Frame<'a> {
    msg: &'a mut Msg,
    layout: &'a CompiledLayout,
    order: ByteOrder,
    class_base: [usize; 4],
    body_off: usize,
}

impl<'a> Frame<'a> {
    /// Builds a frame view. The message must start at the protocol
    /// header (preamble and conn-ident already stripped or not yet
    /// added).
    pub fn new(msg: &'a mut Msg, layout: &'a CompiledLayout, order: ByteOrder) -> Frame<'a> {
        let proto = layout.class_len(Class::Protocol);
        let message = layout.class_len(Class::Message);
        let gossip = layout.class_len(Class::Gossip);
        // ConnId is not part of the frame; give it a base that any
        // accidental use would read garbage from deterministically (the
        // verifier rejects ConnId fields before a program can run).
        let class_base = [usize::MAX, 0, proto, proto + message];
        Frame {
            msg,
            layout,
            order,
            class_base,
            body_off: proto + message + gossip,
        }
    }

    /// True if the message is long enough to contain all class headers.
    /// A frame on a too-short (malformed) message must not be built;
    /// callers check this first.
    pub fn fits(msg: &Msg, layout: &CompiledLayout) -> bool {
        msg.len()
            >= layout.class_len(Class::Protocol)
                + layout.class_len(Class::Message)
                + layout.class_len(Class::Gossip)
    }

    /// True if the underlying message is too short for the class headers
    /// — the already-built-view twin of [`Frame::fits`]. The interpreter
    /// refuses to execute over a short frame ([`crate::SHORT_FRAME`]),
    /// so even a caller that skipped the `fits` gate cannot be panicked
    /// by truncated wire bytes.
    pub fn is_short(&self) -> bool {
        self.msg.len() < self.body_off
    }

    /// The byte order fields are encoded in.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Total frame size (headers + body) — the `PUSH_SIZE` value.
    pub fn size(&self) -> usize {
        self.msg.len()
    }

    /// Size of the body region — the `PUSH_BODY_SIZE` value.
    pub fn body_size(&self) -> usize {
        self.msg.len() - self.body_off
    }

    /// The body region (packing header + application data), the region
    /// plain digests cover.
    pub fn body(&self) -> &[u8] {
        &self.msg.as_slice()[self.body_off..]
    }

    /// The protocol-specific header bytes.
    pub fn proto_hdr(&self) -> &[u8] {
        let base = self.class_base[Class::Protocol.index()];
        &self.msg.as_slice()[base..base + self.layout.class_len(Class::Protocol)]
    }

    /// The gossip header bytes.
    pub fn gossip_hdr(&self) -> &[u8] {
        let base = self.class_base[Class::Gossip.index()];
        &self.msg.as_slice()[base..base + self.layout.class_len(Class::Gossip)]
    }

    /// Base byte offset of `class`'s header within the frame.
    pub fn class_base(&self, class: Class) -> usize {
        self.class_base[class.index()]
    }

    /// Reads scalar field `f`.
    pub fn read(&self, f: Field) -> u64 {
        debug_assert_ne!(
            f.class,
            Class::ConnId,
            "conn-id fields are not in the frame"
        );
        let base = self.class_base[f.class.index()];
        let len = self.layout.class_len(f.class);
        self.layout
            .read_field(f, &self.msg.as_slice()[base..base + len], self.order)
    }

    /// Writes scalar field `f`.
    pub fn write(&mut self, f: Field, v: u64) {
        debug_assert_ne!(
            f.class,
            Class::ConnId,
            "conn-id fields are not in the frame"
        );
        let base = self.class_base[f.class.index()];
        let len = self.layout.class_len(f.class);
        let order = self.order;
        self.layout
            .write_field(f, &mut self.msg.as_mut_slice()[base..base + len], order, v);
    }

    /// The layout used to resolve fields.
    pub fn layout(&self) -> &CompiledLayout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_wire::{LayoutBuilder, LayoutMode};

    fn small_layout() -> (CompiledLayout, Field, Field, Field) {
        let mut b = LayoutBuilder::new();
        b.begin_layer("l");
        let seq = b.add_field(Class::Protocol, "seq", 32, None).unwrap();
        let ck = b.add_field(Class::Message, "cksum", 16, None).unwrap();
        let ack = b.add_field(Class::Gossip, "ack", 32, None).unwrap();
        (b.compile(LayoutMode::Packed).unwrap(), seq, ck, ack)
    }

    fn frame_msg(layout: &CompiledLayout, payload: &[u8]) -> Msg {
        let hdr_len = layout.class_len(Class::Protocol)
            + layout.class_len(Class::Message)
            + layout.class_len(Class::Gossip);
        let mut m = Msg::from_payload(payload);
        m.push_front_zeroed(hdr_len);
        m
    }

    #[test]
    fn offsets_partition_the_frame() {
        let (layout, ..) = small_layout();
        let mut m = frame_msg(&layout, b"PAYLOAD");
        let f = Frame::new(&mut m, &layout, ByteOrder::Big);
        assert_eq!(f.class_base(Class::Protocol), 0);
        assert_eq!(f.class_base(Class::Message), 4);
        assert_eq!(f.class_base(Class::Gossip), 6);
        assert_eq!(f.body(), b"PAYLOAD");
        assert_eq!(f.body_size(), 7);
        assert_eq!(f.size(), 4 + 2 + 4 + 7);
    }

    #[test]
    fn read_write_fields_in_place() {
        let (layout, seq, ck, ack) = small_layout();
        let mut m = frame_msg(&layout, b"x");
        let mut f = Frame::new(&mut m, &layout, ByteOrder::Big);
        f.write(seq, 0xAABBCCDD);
        f.write(ck, 0x1234);
        f.write(ack, 77);
        assert_eq!(f.read(seq), 0xAABBCCDD);
        assert_eq!(f.read(ck), 0x1234);
        assert_eq!(f.read(ack), 77);
        // Payload untouched.
        assert_eq!(f.body(), b"x");
    }

    #[test]
    fn fits_rejects_short_messages() {
        let (layout, ..) = small_layout();
        let ok = frame_msg(&layout, b"");
        assert!(Frame::fits(&ok, &layout));
        let short = Msg::from_payload(&[0u8; 5]); // needs 10 header bytes
        assert!(!Frame::fits(&short, &layout));
    }

    #[test]
    fn same_bytes_both_directions() {
        // A frame written by the "sender" reads identically after a
        // wire round trip — the property that lets one filter program
        // serve both paths.
        let (layout, seq, ck, ack) = small_layout();
        let mut m = frame_msg(&layout, b"data");
        {
            let mut f = Frame::new(&mut m, &layout, ByteOrder::Little);
            f.write(seq, 5);
            f.write(ck, 9);
            f.write(ack, 2);
        }
        let mut rx = Msg::from_wire(m.to_wire());
        let f = Frame::new(&mut rx, &layout, ByteOrder::Little);
        assert_eq!(f.read(seq), 5);
        assert_eq!(f.read(ck), 9);
        assert_eq!(f.read(ack), 2);
    }
}
