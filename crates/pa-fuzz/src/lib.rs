//! Deterministic structure-aware wire fuzzer for the Protocol
//! Accelerator.
//!
//! The PA's premise is that the common-case deliver path is steered by
//! an 8-byte preamble plus a predicted header (§2.2, §3.2) — which
//! makes every one of those bytes attacker-controllable input. This
//! crate proves the ingest path total over that input:
//!
//! - [`mutate`] — structure-aware mutators (truncation, bit-flips,
//!   preamble/cookie forgery, byte-order flips, pack-header forgery,
//!   duplication, reordering, cross-connection splicing) driven by one
//!   [`SplitMix64`](pa_obs::rng::SplitMix64) seed,
//! - [`harness`] — a live two-connection world under a mutation storm,
//!   asserting after *every* injection that the demux and delivery
//!   ledgers reconcile exactly, no payload crosses connections, and
//!   the connections still pass traffic after the storm,
//! - [`churn`] — a seeded connection-lifecycle storm against the
//!   sharded demux: bind / traffic / re-key / remove cycles (optionally
//!   under mutation) asserting the router maps, stale ledgers, and
//!   buffer pools reconcile exactly and return to baseline,
//! - [`corpus`] — the committed regression corpus: every hostile input
//!   shape a fuzz campaign has flushed out, replayed as a test.
//!
//! Everything is deterministic: a failure prints its seed, iteration,
//! and a hexdump of the last frame injected ([`last_injection`]), and
//! re-running with the same seed reproduces it bit-for-bit. There is
//! no external dependency and no wall-clock randomness anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod corpus;
pub mod harness;
pub mod mutate;

/// The workspace PRNG, re-exported so fuzz tooling (and anything
/// replaying a committed corpus) names one generator: `pa_fuzz::rng`
/// *is* [`pa_obs::rng`] — same types, same streams. The committed
/// corpus entries are derived from these streams, so the stream
/// contract is pinned by `tests/rng_streams.rs`; a SplitMix64 change
/// that altered draw `k` of any seed would invalidate every committed
/// corpus and is a breaking change, not a refactor.
pub use pa_obs::rng;

pub use churn::{run_churn_campaign, ChurnConfig, ChurnReport};
pub use corpus::{regression_corpus, replay_corpus, CorpusEntry};
pub use harness::{run_burst_campaign, run_campaign, run_udp_campaign, CampaignReport, FuzzConfig};
pub use mutate::{apply, draw_mutation, hexdump, Mutation};

use std::cell::RefCell;

thread_local! {
    /// The last frame handed to a demux by this thread, kept so a panic
    /// hook can print the exact bytes that triggered a failure.
    static LAST_INJECTION: RefCell<Option<Vec<u8>>> = const { RefCell::new(None) };
}

/// Records `bytes` as the most recent injection on this thread (called
/// by the harness and corpus replay just before each demux call).
pub fn note_injection(bytes: &[u8]) {
    LAST_INJECTION.with(|c| *c.borrow_mut() = Some(bytes.to_vec()));
}

/// The most recent frame injected on this thread, if any — the panic
/// artifact for `fuzz_smoke`'s failure report.
pub fn last_injection() -> Option<Vec<u8>> {
    LAST_INJECTION.with(|c| c.borrow().clone())
}
