//! Structure-aware frame mutators.
//!
//! Every mutator is a pure function of `(rng, input frames)`, so a
//! campaign is reproducible from its seed alone. The mutators know the
//! PA's wire shape — the 8-byte network-bit-order preamble with the
//! conn-ident bit (63), the byte-order bit (62), and the 62-bit cookie
//! below them (§2.2, Figure 1) — and aim their damage at exactly the
//! bytes that steer the fast path.

use pa_obs::rng::{Rng, SplitMix64};

/// Length of the preamble at the front of every frame.
const PREAMBLE_LEN: usize = 8;

/// The mutation classes the fuzzer draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Cut the frame at a random point (including down to zero bytes).
    Truncate,
    /// Flip 1–8 random bits anywhere in the frame.
    BitFlip,
    /// Replace the whole preamble word with random bits.
    PreambleForge,
    /// Keep the preamble flags, randomize the 62-bit cookie (sometimes
    /// to the reserved all-zero forgery).
    CookieForge,
    /// Toggle the byte-order bit so every later header is read in the
    /// wrong endianness.
    ByteOrderFlip,
    /// Toggle the conn-ident-present bit so the demux mis-frames the
    /// bytes after the preamble.
    IdentBitFlip,
    /// Write a forged §3.4 packing header (`SameSize`, huge count,
    /// zero/small size) at a random offset in the front half.
    PackForge,
    /// Re-inject a previously seen frame verbatim (replay/duplicate).
    Duplicate,
    /// Hold the frame back and release it after later traffic
    /// (reordering). The harness implements the delay; the mutator
    /// just tags it.
    Reorder,
    /// Graft this frame's preamble onto another connection's body
    /// (cross-connection splice), usually with a forged cookie.
    Splice,
    /// Replace the frame with unstructured random bytes.
    RandomBytes,
}

impl Mutation {
    /// Number of mutation classes.
    pub const COUNT: usize = 11;

    /// All mutation classes, draw-index order.
    pub const ALL: [Mutation; Mutation::COUNT] = [
        Mutation::Truncate,
        Mutation::BitFlip,
        Mutation::PreambleForge,
        Mutation::CookieForge,
        Mutation::ByteOrderFlip,
        Mutation::IdentBitFlip,
        Mutation::PackForge,
        Mutation::Duplicate,
        Mutation::Reorder,
        Mutation::Splice,
        Mutation::RandomBytes,
    ];

    /// Stable index (for counters).
    pub fn index(self) -> usize {
        Mutation::ALL
            .iter()
            .position(|&m| m == self)
            .expect("in ALL")
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::Truncate => "truncate",
            Mutation::BitFlip => "bitflip",
            Mutation::PreambleForge => "preamble-forge",
            Mutation::CookieForge => "cookie-forge",
            Mutation::ByteOrderFlip => "byteorder-flip",
            Mutation::IdentBitFlip => "identbit-flip",
            Mutation::PackForge => "pack-forge",
            Mutation::Duplicate => "duplicate",
            Mutation::Reorder => "reorder",
            Mutation::Splice => "splice",
            Mutation::RandomBytes => "random-bytes",
        }
    }

    /// True if this mutation can alter payload bytes (so a delivered
    /// message may legitimately carry a garbled marker if the checksum
    /// happens to collide). Mutations that only touch the preamble or
    /// the routing metadata leave the payload bit-exact.
    pub fn corrupts_payload(self) -> bool {
        matches!(
            self,
            Mutation::BitFlip | Mutation::PackForge | Mutation::RandomBytes | Mutation::Truncate
        )
    }
}

/// Draws a mutation class.
pub fn draw_mutation(rng: &mut SplitMix64) -> Mutation {
    Mutation::ALL[rng.gen_index(Mutation::COUNT)]
}

/// Applies `m` to `frame` (wire bytes, preamble-first). `donor` is a
/// frame captured from a *different* connection, used by
/// [`Mutation::Splice`]; when `None`, splice degrades to a preamble
/// forgery. [`Mutation::Duplicate`] and [`Mutation::Reorder`] return
/// the frame unchanged — the harness realises them as scheduling.
pub fn apply(m: Mutation, rng: &mut SplitMix64, frame: &[u8], donor: Option<&[u8]>) -> Vec<u8> {
    let mut out = frame.to_vec();
    match m {
        Mutation::Truncate => {
            let cut = rng.gen_index(out.len() + 1);
            out.truncate(cut);
        }
        Mutation::BitFlip => {
            if !out.is_empty() {
                let flips = 1 + rng.gen_index(8);
                for _ in 0..flips {
                    let byte = rng.gen_index(out.len());
                    let bit = rng.gen_index(8);
                    out[byte] ^= 1 << bit;
                }
            }
        }
        Mutation::PreambleForge => {
            let word: u64 = rng.next_u64();
            overwrite_preamble(&mut out, word);
        }
        Mutation::CookieForge => {
            if let Some(word) = preamble_word(&out) {
                // 1-in-8: the reserved all-zero cookie, which a
                // legitimate sender can never mint.
                let cookie = if rng.gen_index(8) == 0 {
                    0
                } else {
                    rng.next_u64() & COOKIE_MASK
                };
                overwrite_preamble(&mut out, (word & FLAG_MASK) | cookie);
            }
        }
        Mutation::ByteOrderFlip => {
            if let Some(word) = preamble_word(&out) {
                overwrite_preamble(&mut out, word ^ (1 << 62));
            }
        }
        Mutation::IdentBitFlip => {
            if let Some(word) = preamble_word(&out) {
                overwrite_preamble(&mut out, word ^ (1 << 63));
            }
        }
        Mutation::PackForge => {
            // A §3.4 SameSize header is `[1][count:u16][size:u32]`.
            // Plant one with an amplified count and a tiny size at a
            // random offset in the front half, where the real packing
            // byte lives once the class headers end.
            if out.len() > PREAMBLE_LEN + 7 {
                let span = (out.len() - 7).max(PREAMBLE_LEN + 1);
                let at = PREAMBLE_LEN + rng.gen_index(span - PREAMBLE_LEN);
                let count: u16 = [u16::MAX, 0, 1, 513][rng.gen_index(4)];
                let size: u32 = [0u32, 1, 65_535][rng.gen_index(3)];
                let mut hdr = [0u8; 7];
                hdr[0] = 1;
                hdr[1..3].copy_from_slice(&count.to_be_bytes());
                hdr[3..7].copy_from_slice(&size.to_be_bytes());
                let end = (at + 7).min(out.len());
                out[at..end].copy_from_slice(&hdr[..end - at]);
            }
        }
        Mutation::Duplicate | Mutation::Reorder => {}
        Mutation::Splice => {
            // Preamble flags from `frame`, body from the donor — the
            // classic cross-connection graft — with a *forged* cookie:
            // the splicing attacker holds captured bytes, not the live
            // cookie capability (an attacker who knows the cookie can
            // inject valid traffic outright; no cookie scheme can
            // refuse that without a MAC, so it is out of scope).
            if let Some(donor) = donor {
                let body = donor.get(PREAMBLE_LEN..).unwrap_or(&[]);
                out.truncate(PREAMBLE_LEN.min(out.len()));
                out.extend_from_slice(body);
                if let Some(word) = preamble_word(&out) {
                    overwrite_preamble(
                        &mut out,
                        (word & FLAG_MASK) | (rng.next_u64() & COOKIE_MASK),
                    );
                }
            } else {
                overwrite_preamble(&mut out, rng.next_u64());
            }
        }
        Mutation::RandomBytes => {
            let n = rng.gen_index(96);
            out = (0..n).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

/// Mask of the two preamble flag bits.
const FLAG_MASK: u64 = 0b11 << 62;
/// Mask of the 62-bit cookie below them.
const COOKIE_MASK: u64 = !FLAG_MASK;

/// Reads the preamble word if the frame still has one.
fn preamble_word(frame: &[u8]) -> Option<u64> {
    frame
        .first_chunk::<PREAMBLE_LEN>()
        .map(|b| u64::from_be_bytes(*b))
}

/// Writes the preamble word back (no-op on frames shorter than a
/// preamble — there is nothing structured left to aim at).
fn overwrite_preamble(frame: &mut [u8], word: u64) {
    if let Some(head) = frame.first_chunk_mut::<PREAMBLE_LEN>() {
        *head = word.to_be_bytes();
    }
}

/// Renders `bytes` as a conventional 16-per-line hexdump, for failure
/// artifacts (the printed form is enough to re-create the frame).
pub fn hexdump(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let _ = write!(out, "{:08x}  ", i * 16);
        for (j, b) in chunk.iter().enumerate() {
            let _ = write!(out, "{b:02x}{}", if j == 7 { "  " } else { " " });
        }
        let pad = 16 - chunk.len();
        for j in 0..pad {
            let _ = write!(out, "   {}", if chunk.len() + j == 7 { " " } else { "" });
        }
        let _ = write!(out, " |");
        for b in chunk {
            let c = if b.is_ascii_graphic() || *b == b' ' {
                *b as char
            } else {
                '.'
            };
            out.push(c);
        }
        out.push_str("|\n");
    }
    if bytes.is_empty() {
        out.push_str("(empty)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        let mut f = 0x8ABC_DEF0_1234_5678u64.to_be_bytes().to_vec();
        f.extend_from_slice(b"header-bytes-and-payload");
        f
    }

    #[test]
    fn mutations_are_deterministic_by_seed() {
        for m in Mutation::ALL {
            let run = |seed| {
                let mut rng = SplitMix64::new(seed);
                apply(
                    m,
                    &mut rng,
                    &frame(),
                    Some(b"\x11\x22\x33\x44\x55\x66\x77\x88donor-body"),
                )
            };
            assert_eq!(run(7), run(7), "{m:?}");
        }
    }

    #[test]
    fn cookie_forge_preserves_flags() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..64 {
            let out = apply(Mutation::CookieForge, &mut rng, &frame(), None);
            let before = preamble_word(&frame()).unwrap();
            let after = preamble_word(&out).unwrap();
            assert_eq!(before & FLAG_MASK, after & FLAG_MASK);
            assert_eq!(&out[PREAMBLE_LEN..], &frame()[PREAMBLE_LEN..]);
        }
    }

    #[test]
    fn byteorder_and_identbit_flip_exactly_one_bit() {
        let mut rng = SplitMix64::new(4);
        let before = preamble_word(&frame()).unwrap();
        let bo = apply(Mutation::ByteOrderFlip, &mut rng, &frame(), None);
        assert_eq!(preamble_word(&bo).unwrap() ^ before, 1 << 62);
        let id = apply(Mutation::IdentBitFlip, &mut rng, &frame(), None);
        assert_eq!(preamble_word(&id).unwrap() ^ before, 1 << 63);
    }

    #[test]
    fn truncate_only_shortens() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..64 {
            let out = apply(Mutation::Truncate, &mut rng, &frame(), None);
            assert!(out.len() <= frame().len());
            assert_eq!(out[..], frame()[..out.len()]);
        }
    }

    #[test]
    fn splice_takes_donor_body() {
        let mut rng = SplitMix64::new(6);
        let donor: Vec<u8> = (0..24).map(|i| 0x40 + i).collect();
        let out = apply(Mutation::Splice, &mut rng, &frame(), Some(&donor));
        assert_eq!(&out[PREAMBLE_LEN..], &donor[PREAMBLE_LEN..]);
    }

    #[test]
    fn mutators_total_over_tiny_frames() {
        // No frame is too short to mutate: every mutator must cope with
        // 0..=9-byte inputs without panicking.
        let mut rng = SplitMix64::new(7);
        for len in 0..=9usize {
            let tiny: Vec<u8> = (0..len as u8).collect();
            for m in Mutation::ALL {
                for _ in 0..16 {
                    let _ = apply(m, &mut rng, &tiny, Some(&tiny));
                    let _ = apply(m, &mut rng, &tiny, None);
                }
            }
        }
    }

    #[test]
    fn hexdump_covers_partial_lines() {
        let d = hexdump(&frame());
        assert!(d.starts_with("00000000  8a bc de f0 12 34 56 78  "));
        assert!(d.contains("|ytes-and-payload|"), "{d}");
        assert_eq!(hexdump(&[]), "(empty)\n");
    }
}
