//! CI entry point: replay the committed regression corpus, then run
//! the deterministic mutation storm over both transports.
//!
//! Environment knobs (all optional):
//!
//! - `FUZZ_SEED`  — master seed (decimal or 0x-hex; default 1).
//! - `FUZZ_ITERS` — storm iterations for the in-memory campaign
//!   (default 40 000; each iteration injects ~2–3 frames, so the
//!   default comfortably exceeds 100 000 injected frames).
//! - `FUZZ_UDP_ITERS` — iterations for the UDP-loopback campaign
//!   (default 4 000; 0 disables the socket leg for hermetic hosts).
//!
//! On any panic the process prints the seed, the last frame injected
//! (as a hexdump), and writes the same report to
//! `target/fuzz-failure.txt` so CI can upload it as an artifact.
//! Reproduce with `FUZZ_SEED=<seed> cargo run -p pa-fuzz --bin
//! fuzz_smoke`.

use pa_fuzz::{
    hexdump, regression_corpus, replay_corpus, run_campaign, run_udp_campaign, FuzzConfig,
};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v:?} is not a number"))
        }
        Err(_) => default,
    }
}

fn main() {
    let seed = env_u64("FUZZ_SEED", 1);
    let iters = env_u64("FUZZ_ITERS", 40_000);
    let udp_iters = env_u64("FUZZ_UDP_ITERS", 4_000);

    // On failure, leave a reproduction artifact behind.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let frame = pa_fuzz::last_injection();
        let mut report = format!(
            "fuzz_smoke failure\nseed: {seed:#x}\npanic: {info}\nlast injected frame:\n{}",
            frame
                .as_deref()
                .map(hexdump)
                .unwrap_or_else(|| "(none)\n".into())
        );
        report.push_str(&format!(
            "reproduce: FUZZ_SEED={seed:#x} FUZZ_ITERS={iters} FUZZ_UDP_ITERS={udp_iters} \
             cargo run -p pa-fuzz --bin fuzz_smoke\n"
        ));
        eprintln!("{report}");
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/fuzz-failure.txt", report);
        default_hook(info);
    }));

    let n = replay_corpus(&regression_corpus());
    println!("corpus: {n} entries replayed clean");

    let report = run_campaign(&FuzzConfig::new(seed, iters));
    print!("{report}");
    assert!(report.recovered, "in-memory campaign did not recover");

    if udp_iters > 0 {
        let udp = run_udp_campaign(&FuzzConfig::new(seed ^ 0x0DD_BA11, udp_iters));
        print!("{udp}");
        assert!(udp.recovered, "udp campaign did not recover");
        println!("total frames injected: {}", report.injected + udp.injected);
    }
    println!("fuzz_smoke: OK");
}
