//! CI entry point: replay the committed regression corpus, then run
//! the deterministic mutation storm over both transports.
//!
//! Environment knobs (all optional):
//!
//! - `FUZZ_SEED`  — master seed (decimal or 0x-hex; default 1).
//! - `FUZZ_ITERS` — storm iterations for the in-memory campaign
//!   (default 40 000; each iteration injects ~2–3 frames, so the
//!   default comfortably exceeds 100 000 injected frames).
//! - `FUZZ_UDP_ITERS` — iterations for the UDP-loopback campaign
//!   (default 4 000; 0 disables the socket leg for hermetic hosts).
//! - `FUZZ_BURST_ITERS` — iterations for the burst-ingest campaign,
//!   where arrivals flow through `recv_burst` and
//!   `Endpoint::from_network_burst` in chunks (default 4 000; 0
//!   disables). Its totals must equal the in-memory campaign's for the
//!   same seed — any divergence means the burst demux and the
//!   per-frame demux disagree on hostile input.
//!
//! On any panic the process prints the seed, the last frame injected
//! (as a hexdump), and writes the same report to
//! `target/fuzz-failure.txt` so CI can upload it as an artifact.
//! Reproduce with `FUZZ_SEED=<seed> cargo run -p pa-fuzz --bin
//! fuzz_smoke`.

use pa_fuzz::{
    hexdump, regression_corpus, replay_corpus, run_burst_campaign, run_campaign, run_udp_campaign,
    FuzzConfig,
};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v:?} is not a number"))
        }
        Err(_) => default,
    }
}

fn main() {
    let seed = env_u64("FUZZ_SEED", 1);
    let iters = env_u64("FUZZ_ITERS", 40_000);
    let udp_iters = env_u64("FUZZ_UDP_ITERS", 4_000);
    let burst_iters = env_u64("FUZZ_BURST_ITERS", 4_000);

    // On failure, leave a reproduction artifact behind.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let frame = pa_fuzz::last_injection();
        let mut report = format!(
            "fuzz_smoke failure\nseed: {seed:#x}\npanic: {info}\nlast injected frame:\n{}",
            frame
                .as_deref()
                .map(hexdump)
                .unwrap_or_else(|| "(none)\n".into())
        );
        report.push_str(&format!(
            "reproduce: FUZZ_SEED={seed:#x} FUZZ_ITERS={iters} FUZZ_UDP_ITERS={udp_iters} \
             FUZZ_BURST_ITERS={burst_iters} cargo run -p pa-fuzz --bin fuzz_smoke\n"
        ));
        eprintln!("{report}");
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/fuzz-failure.txt", report);
        default_hook(info);
    }));

    let n = replay_corpus(&regression_corpus());
    println!("corpus: {n} entries replayed clean");

    let report = run_campaign(&FuzzConfig::new(seed, iters));
    print!("{report}");
    assert!(report.recovered, "in-memory campaign did not recover");

    let mut total = report.injected;
    if udp_iters > 0 {
        let udp = run_udp_campaign(&FuzzConfig::new(seed ^ 0x0DD_BA11, udp_iters));
        print!("{udp}");
        assert!(udp.recovered, "udp campaign did not recover");
        total += udp.injected;
    }

    if burst_iters > 0 {
        // The burst-ingest leg: same storm, arrivals pulled through
        // recv_burst and demuxed via from_network_burst in chunks of
        // 32. A per-frame control campaign with the same config must
        // produce identical totals — burst demux is a packaging change,
        // never an outcome change, even on hostile input.
        let burst_cfg = FuzzConfig::new(seed ^ 0xB0_0575, burst_iters);
        let burst = run_burst_campaign(&burst_cfg, 32);
        print!("{burst}");
        assert!(burst.recovered, "burst campaign did not recover");
        let control = run_campaign(&burst_cfg);
        assert_eq!(
            (burst.injected, burst.delivered, burst.garbled),
            (control.injected, control.delivered, control.garbled),
            "burst ingest diverged from per-frame demux"
        );
        assert_eq!(
            (burst.demux_rejects, burst.conn_rejects),
            (control.demux_rejects, control.conn_rejects),
            "burst ingest rejects diverged from per-frame demux"
        );
        total += burst.injected;
    }
    println!("total frames injected: {total}");
    println!("fuzz_smoke: OK");
}
