//! The committed regression corpus.
//!
//! Every hostile input shape a fuzz campaign has flushed out lives
//! here as a named, deterministic byte string (either literal bytes or
//! a fixed-seed mutation of a canonically generated frame). The corpus
//! replays on every test run and in CI's `fuzz-smoke` step, so a decode
//! path that regresses to panicking or mis-accounting fails loudly with
//! the corpus entry's name.

use crate::mutate::{apply, Mutation};
use crate::note_injection;
use pa_buf::Msg;
use pa_core::config::PaConfig;
use pa_core::conn::{Connection, ConnectionParams};
use pa_core::endpoint::Endpoint;
use pa_core::packing::PackInfo;
use pa_core::Greeting;
use pa_obs::rng::SplitMix64;
use pa_stack::StackSpec;
use pa_wire::{EndpointAddr, Preamble};

/// One committed hostile input.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable name (appears in failure messages).
    pub name: &'static str,
    /// The frame bytes, as they would arrive from the network.
    pub bytes: Vec<u8>,
}

/// Builds a canonical world (one paper-stack connection pair) and
/// captures the client's first wire frame — the donor that the
/// mutation-derived corpus entries are built from.
fn canonical_frame() -> Vec<u8> {
    let mk = |l: u64, p: u64, s: u64| {
        Connection::new(
            StackSpec::paper().build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(l, 7),
                EndpointAddr::from_parts(p, 7),
                s,
            ),
        )
        .expect("paper stack builds")
    };
    let mut a = mk(1, 10, 0xC0C0_0001);
    a.send(b"canonical corpus frame payload");
    a.poll_transmit().expect("first frame").to_wire()
}

/// The regression corpus: literal shapes plus fixed-seed mutations of
/// the canonical frame (one per mutation class).
pub fn regression_corpus() -> Vec<CorpusEntry> {
    let mut out = vec![
        CorpusEntry {
            name: "empty",
            bytes: Vec::new(),
        },
        CorpusEntry {
            name: "truncated-preamble",
            bytes: vec![0xDE, 0xAD, 0xBE],
        },
        CorpusEntry {
            // The reserved all-zero cookie: unmintable by a legitimate
            // sender, must be refused at demux.
            name: "zero-cookie",
            bytes: {
                let mut b = 0u64.to_be_bytes().to_vec();
                b.extend_from_slice(&[0x55; 24]);
                b
            },
        },
        CorpusEntry {
            // Zero cookie *with* the conn-ident bit — the zero-cookie
            // check must win before any ident probing.
            name: "zero-cookie-with-ident-bit",
            bytes: {
                let mut b = (1u64 << 63).to_be_bytes().to_vec();
                b.extend_from_slice(&[0x55; 24]);
                b
            },
        },
        CorpusEntry {
            name: "unknown-cookie",
            bytes: {
                let mut b = 0x0000_1234_5678_9ABCu64.to_be_bytes().to_vec();
                b.extend_from_slice(&[0x77; 16]);
                b
            },
        },
        CorpusEntry {
            name: "unknown-cookie-little-endian-bit",
            bytes: {
                let mut b = ((1u64 << 62) | 0x1234_5678).to_be_bytes().to_vec();
                b.extend_from_slice(&[0x77; 16]);
                b
            },
        },
        CorpusEntry {
            // Claims an ident but has zero bytes after the preamble:
            // must be a truncated-ident reject, not an indexing panic.
            name: "ident-claimed-no-ident-bytes",
            bytes: ((1u64 << 63) | 0x0BAD_CAFE).to_be_bytes().to_vec(),
        },
        CorpusEntry {
            // §3.4 SameSize pack header with an amplified count and
            // zero size — the 65 535-empty-pieces forgery.
            name: "pack-forge-same-size-65535x0",
            bytes: vec![1, 0xFF, 0xFF, 0, 0, 0, 0, 0x41, 0x42],
        },
        CorpusEntry {
            // Variable pack header claiming 65 535 pieces on a 10-byte
            // body: the allocation-bound forgery.
            name: "pack-forge-variable-65535",
            bytes: vec![2, 0xFF, 0xFF, 0, 0, 0, 1, 0, 0, 0],
        },
        CorpusEntry {
            name: "greeting-truncated",
            bytes: b"PAg1\x00\x01".to_vec(),
        },
        CorpusEntry {
            // A greeting whose length prefix promises far more ident
            // bytes than follow: must reject without allocating 64 KiB.
            name: "greeting-forged-ident-len",
            bytes: {
                let mut b = b"PAg1".to_vec();
                b.extend_from_slice(&0x0102_0304_0506_0708u64.to_be_bytes());
                b.extend_from_slice(&0xFFFFu16.to_be_bytes());
                b.extend_from_slice(b"short");
                b
            },
        },
    ];
    // One fixed-seed mutation of the canonical frame per mutation
    // class: the structured half of the corpus.
    let donor_world = canonical_frame();
    for (k, m) in Mutation::ALL.into_iter().enumerate() {
        let mut rng = SplitMix64::new(0xC0_4955 + k as u64);
        out.push(CorpusEntry {
            name: m.name(),
            bytes: apply(m, &mut rng, &donor_world, Some(&donor_world)),
        });
    }
    out
}

/// Replays `entries` against every total decode surface and a live
/// endpoint, asserting that nothing panics and the demux ledger still
/// reconciles after each entry. Returns the number of entries replayed.
pub fn replay_corpus(entries: &[CorpusEntry]) -> usize {
    // A victim endpoint with one real connection, so demux has live
    // state to defend.
    let mut server = Endpoint::new();
    let h = server.add_connection(
        Connection::new(
            StackSpec::paper().build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(10, 7),
                EndpointAddr::from_parts(1, 7),
                0xBEEF_0001,
            ),
        )
        .expect("paper stack builds"),
    );
    for e in entries {
        note_injection(&e.bytes);
        // Every stand-alone decoder must be total over the entry.
        let _ = Preamble::decode(&e.bytes);
        let _ = EndpointAddr::decode(&e.bytes);
        let _ = PackInfo::decode(&e.bytes);
        let _ = Greeting::decode(&e.bytes);
        // And the live demux must stay balanced.
        let _ = server.from_network(Msg::from_wire(e.bytes.clone()));
        server.process_all_pending();
        while server.poll_delivery().is_some() {}
        assert!(
            server.demux_balanced(),
            "demux imbalance after corpus entry `{}`",
            e.name
        );
        let s = server.conn(h).stats();
        assert!(
            s.delivery_balanced(),
            "delivery imbalance after corpus entry `{}`: {s}",
            e.name
        );
        assert!(
            s.rejects_reconcile(),
            "reject ledger mismatch after corpus entry `{}`: {s}",
            e.name
        );
    }
    entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_obs::RejectReason;

    #[test]
    fn corpus_replays_clean() {
        let entries = regression_corpus();
        assert!(entries.len() >= 11 + Mutation::COUNT);
        assert_eq!(replay_corpus(&entries), entries.len());
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = regression_corpus();
        let b = regression_corpus();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bytes, y.bytes, "{}", x.name);
        }
    }

    #[test]
    fn literal_entries_hit_their_intended_rejections() {
        use pa_core::conn::DeliverOutcome;
        let mut server = Endpoint::new();
        server.add_connection(
            Connection::new(
                StackSpec::paper().build(),
                PaConfig::paper_default(),
                ConnectionParams::new(
                    EndpointAddr::from_parts(10, 7),
                    EndpointAddr::from_parts(1, 7),
                    0xBEEF_0002,
                ),
            )
            .expect("paper stack builds"),
        );
        let by_name = |n: &str| {
            regression_corpus()
                .into_iter()
                .find(|e| e.name == n)
                .expect("entry exists")
                .bytes
        };
        let mut feed = |n: &str| server.from_network(Msg::from_wire(by_name(n)));
        assert_eq!(
            feed("empty"),
            DeliverOutcome::Dropped(RejectReason::TruncatedPreamble)
        );
        assert_eq!(
            feed("truncated-preamble"),
            DeliverOutcome::Dropped(RejectReason::TruncatedPreamble)
        );
        assert_eq!(
            feed("zero-cookie"),
            DeliverOutcome::Dropped(RejectReason::ZeroCookie)
        );
        assert_eq!(
            feed("zero-cookie-with-ident-bit"),
            DeliverOutcome::Dropped(RejectReason::ZeroCookie)
        );
        assert_eq!(
            feed("unknown-cookie"),
            DeliverOutcome::Dropped(RejectReason::UnknownCookie)
        );
        assert_eq!(
            feed("unknown-cookie-little-endian-bit"),
            DeliverOutcome::Dropped(RejectReason::UnknownCookie)
        );
        assert_eq!(
            feed("ident-claimed-no-ident-bytes"),
            DeliverOutcome::Dropped(RejectReason::TruncatedIdent)
        );
        assert!(server.demux_balanced());
    }

    #[test]
    fn forged_pack_headers_reject_without_allocating() {
        let by_name = |n: &str| {
            regression_corpus()
                .into_iter()
                .find(|e| e.name == n)
                .expect("entry exists")
                .bytes
        };
        assert!(PackInfo::decode(&by_name("pack-forge-same-size-65535x0")).is_err());
        assert!(PackInfo::decode(&by_name("pack-forge-variable-65535")).is_err());
        assert!(Greeting::decode(&by_name("greeting-truncated")).is_err());
        assert!(Greeting::decode(&by_name("greeting-forged-ident-len")).is_err());
    }
}
