//! The fuzz campaign: a live two-connection world under a mutation
//! storm.
//!
//! The world is one *server* [`Endpoint`] owning two paper-stack
//! connections, fed by two client endpoints. Every client frame is
//! captured on its way to the server and, with some probability,
//! handed to a structure-aware mutator before injection. After every
//! single injection the harness asserts the full accounting lattice:
//!
//! - [`Endpoint::demux_balanced`] — every frame seen either routed or
//!   was refused with exactly one demux [`RejectReason`],
//! - per-connection `delivery_balanced()` and `rejects_reconcile()` —
//!   the coarse drop counters and the fine reject ledger agree,
//! - *no cross-connection delivery*: a payload carrying client A's
//!   marker is never delivered on client B's connection,
//! - and after the storm, *liveness*: both connections still carry a
//!   fresh probe payload end-to-end (no fast-path wedge).
//!
//! Everything is driven by one [`SplitMix64`] seed, so a failure
//! reproduces exactly from the `seed` printed in the panic message.
//!
//! [`RejectReason`]: pa_obs::RejectReason

use crate::mutate::{apply, draw_mutation, hexdump, Mutation};
use crate::note_injection;
use pa_buf::Msg;
use pa_core::config::PaConfig;
use pa_core::conn::{Connection, ConnectionParams};
use pa_core::endpoint::{ConnHandle, Endpoint};
use pa_core::Nanos;
use pa_obs::rng::{Rng, SplitMix64};
use pa_stack::StackSpec;
use pa_unet::loopback::LoopbackNet;
use pa_unet::netif::Netif;
use pa_unet::udp::UdpNet;
use pa_wire::EndpointAddr;
use std::collections::VecDeque;
use std::fmt;

/// Bytes of repeated marker at the front of every fuzz payload.
const MARKER_LEN: usize = 16;
/// Virtual time advanced per storm iteration.
const STEP: Nanos = 1_000_000; // 1 ms — comfortably past the window RTO
/// Sequence sentinel carried by the post-storm liveness probes.
const PROBE_SEQ: u64 = u64::MAX - 16;
/// Backlog high-water mark above which a client stops offering new
/// payloads (the storm destroys most frames; without a cap the backlog
/// would grow without bound and measure nothing).
const BACKLOG_CAP: usize = 48;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; everything (payloads, mutation draws, mutation
    /// parameters) derives from it.
    pub seed: u64,
    /// Storm iterations (each injects at least one frame).
    pub iterations: u64,
    /// Probability a captured frame is injected *unmutated*, keeping
    /// cookies learned and windows moving so the storm hits live state
    /// rather than a stalled connection.
    pub clean_ratio: f64,
    /// Probability a server→client frame is mutated (the reverse leg:
    /// clients must survive hostile bytes too).
    pub reverse_mutate_ratio: f64,
}

impl FuzzConfig {
    /// Default shape: mostly-hostile forward leg, lightly-hostile
    /// reverse leg.
    pub fn new(seed: u64, iterations: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iterations,
            clean_ratio: 0.35,
            reverse_mutate_ratio: 0.15,
        }
    }
}

/// What a campaign did, for reports and assertions.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// The master seed (reproduction handle).
    pub seed: u64,
    /// Storm iterations run.
    pub iterations: u64,
    /// Frames handed to the server's demux.
    pub injected: u64,
    /// Of those, unmutated.
    pub clean: u64,
    /// Of those, mutated.
    pub mutated: u64,
    /// Mutated injections by mutation class (index = [`Mutation::index`]).
    pub mutation_counts: [u64; Mutation::COUNT],
    /// Application messages the server delivered.
    pub delivered: u64,
    /// Delivered payloads whose marker was garbled (possible only when
    /// payload-corrupting mutations slipped a checksum collision
    /// through — never a clean wrong-connection marker).
    pub garbled: u64,
    /// Demux-level rejects at the server.
    pub demux_rejects: u64,
    /// Sum of per-connection reject ledgers at the server.
    pub conn_rejects: u64,
    /// Whether both connections carried a fresh probe end-to-end after
    /// the storm.
    pub recovered: bool,
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz campaign seed={:#x} iters={} injected={} (clean {}, mutated {})",
            self.seed, self.iterations, self.injected, self.clean, self.mutated
        )?;
        for m in Mutation::ALL {
            writeln!(f, "  {:>16}: {}", m.name(), self.mutation_counts[m.index()])?;
        }
        writeln!(
            f,
            "  delivered={} garbled={} demux_rejects={} conn_rejects={} recovered={}",
            self.delivered, self.garbled, self.demux_rejects, self.conn_rejects, self.recovered
        )
    }
}

/// How mutated frames travel from the attacker to the server.
trait Leg {
    /// Puts wire bytes on the attacker→server path.
    fn push(&mut self, bytes: Vec<u8>, now: Nanos);
    /// Pulls every frame that has arrived at the server so far.
    fn pull(&mut self, now: Nanos) -> Vec<Vec<u8>>;
    /// Blocks briefly when the path is asynchronous and nothing has
    /// arrived yet (no-op for the in-memory leg).
    fn settle(&mut self);
    /// When `Some(k)`, arrived frames are demuxed through
    /// [`Endpoint::from_network_burst`] in chunks of up to `k` instead
    /// of one [`Endpoint::from_network`] call per frame.
    fn burst_chunk(&self) -> Option<usize> {
        None
    }
}

/// In-memory leg: push is delivery (the simulator transport).
#[derive(Default)]
struct DirectLeg {
    q: VecDeque<Vec<u8>>,
}

impl Leg for DirectLeg {
    fn push(&mut self, bytes: Vec<u8>, _now: Nanos) {
        self.q.push_back(bytes);
    }
    fn pull(&mut self, _now: Nanos) -> Vec<Vec<u8>> {
        self.q.drain(..).collect()
    }
    fn settle(&mut self) {}
}

/// Real-socket leg: frames cross the OS loopback as UDP datagrams
/// through [`UdpNet`], truncation sentinel and all.
struct UdpLeg {
    tx: UdpNet,
    rx: UdpNet,
    server: EndpointAddr,
    attacker: EndpointAddr,
}

impl UdpLeg {
    fn new() -> UdpLeg {
        let attacker = EndpointAddr::from_parts(0xA77A, 7);
        let server = EndpointAddr::from_parts(10, 7);
        let mut tx = UdpNet::bind(attacker, "127.0.0.1:0").expect("bind tx");
        let mut rx = UdpNet::bind(server, "127.0.0.1:0").expect("bind rx");
        let rx_addr = rx.local_socket_addr().expect("rx addr");
        let tx_addr = tx.local_socket_addr().expect("tx addr");
        tx.add_peer(server, rx_addr);
        rx.add_peer(attacker, tx_addr);
        UdpLeg {
            tx,
            rx,
            server,
            attacker,
        }
    }
}

/// Burst-ingest leg: frames ride a [`LoopbackNet`], arrive through
/// [`Netif::recv_burst`], and hit the server's demux through
/// [`Endpoint::from_network_burst`] in chunks — the hostile-wire proof
/// for PR 9's batched ingest path (run-cached cookie demux included).
struct BurstLeg {
    net: LoopbackNet,
    server: EndpointAddr,
    attacker: EndpointAddr,
    chunk: usize,
}

impl BurstLeg {
    fn new(chunk: usize) -> BurstLeg {
        BurstLeg {
            net: LoopbackNet::new(),
            server: EndpointAddr::from_parts(10, 7),
            attacker: EndpointAddr::from_parts(0xA77A, 7),
            chunk: chunk.max(1),
        }
    }
}

impl Leg for BurstLeg {
    fn push(&mut self, bytes: Vec<u8>, now: Nanos) {
        self.net
            .send(self.attacker, self.server, Msg::from_wire(bytes), now);
    }
    fn pull(&mut self, now: Nanos) -> Vec<Vec<u8>> {
        let mut arrivals = Vec::new();
        self.net.recv_burst(now, usize::MAX, &mut arrivals);
        arrivals.into_iter().map(|a| a.frame.to_wire()).collect()
    }
    fn settle(&mut self) {}
    fn burst_chunk(&self) -> Option<usize> {
        Some(self.chunk)
    }
}

impl Leg for UdpLeg {
    fn push(&mut self, bytes: Vec<u8>, now: Nanos) {
        self.tx
            .send(self.attacker, self.server, Msg::from_wire(bytes), now);
    }
    fn pull(&mut self, now: Nanos) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(arr) = self.rx.poll_arrival(now) {
            out.push(arr.frame.to_wire());
        }
        out
    }
    fn settle(&mut self) {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// The live world: one server endpoint with two connections, two
/// single-connection clients.
struct World {
    server: Endpoint,
    server_handles: [ConnHandle; 2],
    clients: [Endpoint; 2],
    client_handles: [ConnHandle; 2],
    client_addrs: [EndpointAddr; 2],
    next_seq: [u64; 2],
    now: Nanos,
}

/// Marker byte for client `i`'s payloads (0xAA / 0xBB).
fn marker(i: usize) -> u8 {
    0xAA + 0x11 * i as u8
}

/// A fuzz payload: 16 marker bytes + the 8-byte sequence number.
fn payload(i: usize, seq: u64) -> Vec<u8> {
    let mut p = vec![marker(i); MARKER_LEN];
    p.extend_from_slice(&seq.to_be_bytes());
    p
}

/// What a delivered payload's marker says about its origin.
#[derive(Debug, PartialEq, Eq)]
enum Origin {
    /// Clean marker of client `i`, with its sequence number.
    Client(usize, u64),
    /// Not a clean marker (possible only after payload corruption).
    Garbled,
}

fn classify(bytes: &[u8]) -> Origin {
    if bytes.len() == MARKER_LEN + 8 {
        for i in 0..2 {
            if bytes[..MARKER_LEN].iter().all(|&b| b == marker(i)) {
                let seq = u64::from_be_bytes(bytes[MARKER_LEN..].try_into().expect("8 bytes"));
                return Origin::Client(i, seq);
            }
        }
    }
    Origin::Garbled
}

impl World {
    fn new(seed: u64) -> World {
        let server_addr = EndpointAddr::from_parts(10, 7);
        let client_addrs = [
            EndpointAddr::from_parts(1, 7),
            EndpointAddr::from_parts(2, 7),
        ];
        let mk = |local, peer, seed| {
            Connection::new(
                StackSpec::paper().build(),
                PaConfig::paper_default(),
                ConnectionParams::new(local, peer, seed),
            )
            .expect("paper stack builds")
        };
        let mut server = Endpoint::new();
        let server_handles = [
            server.add_connection(mk(server_addr, client_addrs[0], seed ^ 0x5EED_0001)),
            server.add_connection(mk(server_addr, client_addrs[1], seed ^ 0x5EED_0002)),
        ];
        let mut clients = [Endpoint::new(), Endpoint::new()];
        let client_handles = [
            clients[0].add_connection(mk(client_addrs[0], server_addr, seed ^ 0xC11E_0001)),
            clients[1].add_connection(mk(client_addrs[1], server_addr, seed ^ 0xC11E_0002)),
        ];
        World {
            server,
            server_handles,
            clients,
            client_handles,
            client_addrs,
            next_seq: [0, 0],
            now: 1,
        }
    }

    /// Asserts the whole accounting lattice. `ctx` goes into the panic
    /// message so a failure carries its reproduction handle.
    fn check_invariants(&self, seed: u64, iter: u64) {
        assert!(
            self.server.demux_balanced(),
            "demux imbalance at server (seed={seed:#x} iter={iter}): \
             seen={} != routed+rejects",
            self.server.frames_seen()
        );
        for (i, &h) in self.server_handles.iter().enumerate() {
            let s = self.server.conn(h).stats();
            assert!(
                s.delivery_balanced(),
                "server conn{i} delivery imbalance (seed={seed:#x} iter={iter}): {s}"
            );
            assert!(
                s.rejects_reconcile(),
                "server conn{i} reject ledger mismatch (seed={seed:#x} iter={iter}): {s}"
            );
        }
        for (i, c) in self.clients.iter().enumerate() {
            assert!(
                c.demux_balanced(),
                "demux imbalance at client {i} (seed={seed:#x} iter={iter})"
            );
            let s = c.conn(self.client_handles[i]).stats();
            assert!(
                s.delivery_balanced(),
                "client {i} delivery imbalance (seed={seed:#x} iter={iter}): {s}"
            );
            assert!(
                s.rejects_reconcile(),
                "client {i} reject ledger mismatch (seed={seed:#x} iter={iter}): {s}"
            );
        }
    }

    /// Drains server deliveries, enforcing the cross-connection rule.
    /// Returns `(delivered, garbled, probe_hits)`.
    fn drain_server(
        &mut self,
        seed: u64,
        iter: u64,
        corrupting_seen: bool,
    ) -> (u64, u64, [bool; 2]) {
        let mut delivered = 0;
        let mut garbled = 0;
        let mut probes = [false, false];
        while let Some(d) = self.server.poll_delivery() {
            delivered += 1;
            match classify(d.msg.as_slice()) {
                Origin::Client(i, seq) => {
                    let expect = self
                        .server_handles
                        .iter()
                        .position(|&h| h == d.conn)
                        .expect("delivery from a known connection");
                    assert_eq!(
                        i,
                        expect,
                        "CROSS-CONNECTION DELIVERY (seed={seed:#x} iter={iter}): \
                         payload of client {i} delivered on connection {expect}\n{}",
                        hexdump(d.msg.as_slice())
                    );
                    if seq == PROBE_SEQ {
                        probes[i] = true;
                    }
                }
                Origin::Garbled => {
                    assert!(
                        corrupting_seen,
                        "garbled delivery without any payload-corrupting mutation \
                         (seed={seed:#x} iter={iter}):\n{}",
                        hexdump(d.msg.as_slice())
                    );
                    garbled += 1;
                }
            }
        }
        (delivered, garbled, probes)
    }

    /// Moves server→client traffic (acks, retransmission requests),
    /// optionally mutating some of it, and drains client deliveries
    /// (clients are sinks; the server never sends payloads, so nothing
    /// meaningful arrives — but the demux must stay balanced).
    fn shuttle_reverse(&mut self, rng: &mut SplitMix64, mutate_ratio: f64) -> u64 {
        let mut corrupting = 0;
        while let Some((dest, frame)) = self.server.poll_transmit() {
            let Some(i) = self.client_addrs.iter().position(|&a| a == dest) else {
                continue;
            };
            let bytes = frame.to_wire();
            if mutate_ratio > 0.0 && rng.gen_bool(mutate_ratio) {
                let m = draw_mutation(rng);
                if m.corrupts_payload() {
                    corrupting += 1;
                }
                let mutated = apply(m, rng, &bytes, None);
                note_injection(&mutated);
                self.clients[i].from_network(Msg::from_wire(mutated));
            } else {
                self.clients[i].from_network(Msg::from_wire(bytes));
            }
            while self.clients[i].poll_delivery().is_some() {}
        }
        corrupting
    }

    /// Ticks and post-processes everyone at the current virtual time.
    fn settle(&mut self) {
        for c in &mut self.clients {
            c.process_all_pending();
            c.tick(self.now);
        }
        self.server.process_all_pending();
        self.server.tick(self.now);
    }
}

/// Runs the campaign over the in-memory (simulator) transport.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignReport {
    run_with_leg(cfg, DirectLeg::default())
}

/// Runs the campaign with the attacker→server leg crossing real UDP
/// loopback sockets through [`UdpNet`].
pub fn run_udp_campaign(cfg: &FuzzConfig) -> CampaignReport {
    run_with_leg(cfg, UdpLeg::new())
}

/// Runs the campaign with arrivals pulled through the batched netif
/// path ([`LoopbackNet::recv_burst`]) and demuxed through
/// [`Endpoint::from_network_burst`] in chunks of up to `chunk` frames —
/// the hostile-wire proof that burst ingestion is outcome-identical to
/// the per-frame demux.
pub fn run_burst_campaign(cfg: &FuzzConfig, chunk: usize) -> CampaignReport {
    run_with_leg(cfg, BurstLeg::new(chunk))
}

/// Demuxes everything a leg delivered into the server endpoint.
///
/// With `chunk == None` (the per-frame legs) each frame goes through
/// [`Endpoint::from_network`] exactly as the seed harness did. With
/// `chunk == Some(k)` the frames are grouped into bursts of up to `k`
/// and demuxed through [`Endpoint::from_network_burst`] — same
/// injection notes, same count, so a burst campaign's totals must equal
/// the per-frame campaign's for the same seed.
fn ingest(world: &mut World, frames: Vec<Vec<u8>>, chunk: Option<usize>) -> u64 {
    let n = frames.len() as u64;
    match chunk {
        None => {
            for bytes in frames {
                note_injection(&bytes);
                world.server.from_network(Msg::from_wire(bytes));
            }
        }
        Some(k) => {
            let k = k.max(1);
            let mut burst: Vec<Msg> = Vec::with_capacity(k);
            for group in frames.chunks(k) {
                burst.clear();
                for bytes in group {
                    note_injection(bytes);
                    burst.push(Msg::from_wire(bytes.clone()));
                }
                world.server.from_network_burst(&mut burst);
            }
        }
    }
    n
}

fn run_with_leg(cfg: &FuzzConfig, mut leg: impl Leg) -> CampaignReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut world = World::new(cfg.seed);
    let mut report = CampaignReport {
        seed: cfg.seed,
        iterations: cfg.iterations,
        ..CampaignReport::default()
    };
    // Donor corpus for splices and replays: last clean frame per client.
    let mut last_frame: [Option<Vec<u8>>; 2] = [None, None];
    // Frames held back by the Reorder mutation.
    let mut held: VecDeque<Vec<u8>> = VecDeque::new();
    let mut corrupting_seen = false;

    for iter in 0..cfg.iterations {
        world.now += STEP;
        // Offer fresh payloads while the backlog is sane.
        for i in 0..2 {
            if world.clients[i].conn(world.client_handles[i]).backlog_len() < BACKLOG_CAP {
                let seq = world.next_seq[i];
                world.next_seq[i] += 1;
                let p = payload(i, seq);
                world.clients[i].send(world.client_handles[i], &p);
            }
        }
        for c in &mut world.clients {
            c.process_all_pending();
            c.tick(world.now);
        }

        // Capture the forward leg and decide each frame's fate.
        for i in 0..2 {
            while let Some((_, frame)) = world.clients[i].poll_transmit() {
                let bytes = frame.to_wire();
                if rng.gen_bool(cfg.clean_ratio) {
                    last_frame[i] = Some(bytes.clone());
                    report.clean += 1;
                    leg.push(bytes, world.now);
                    continue;
                }
                let m = draw_mutation(&mut rng);
                report.mutation_counts[m.index()] += 1;
                report.mutated += 1;
                if m.corrupts_payload() {
                    corrupting_seen = true;
                }
                match m {
                    Mutation::Duplicate => {
                        leg.push(bytes.clone(), world.now);
                        leg.push(bytes, world.now);
                    }
                    Mutation::Reorder => {
                        held.push_back(bytes);
                        if held.len() > 32 {
                            let old = held.pop_front().expect("non-empty");
                            leg.push(old, world.now);
                        }
                    }
                    _ => {
                        let donor = last_frame[1 - i].as_deref();
                        leg.push(apply(m, &mut rng, &bytes, donor), world.now);
                    }
                }
            }
        }
        // Replay pressure: the live stream throttles itself when the
        // storm destroys its frames (the window stalls until its RTO
        // fires), but an attacker with a capture does not — every
        // iteration it also injects mutated variants of previously
        // captured frames. Stale sequence numbers are expected and
        // must be *accounted*, not just survived: the window refuses
        // them as ReplayedSeq and the ledger reconciles anyway.
        for _ in 0..2 {
            let j = rng.gen_index(2);
            let Some(src) = last_frame[j].clone() else {
                continue;
            };
            let m = draw_mutation(&mut rng);
            report.mutation_counts[m.index()] += 1;
            report.mutated += 1;
            if m.corrupts_payload() {
                corrupting_seen = true;
            }
            match m {
                Mutation::Duplicate => {
                    leg.push(src.clone(), world.now);
                    leg.push(src, world.now);
                }
                Mutation::Reorder => {
                    held.push_back(src);
                    if held.len() > 32 {
                        let old = held.pop_front().expect("non-empty");
                        leg.push(old, world.now);
                    }
                }
                _ => {
                    let donor = last_frame[1 - j].as_deref();
                    leg.push(apply(m, &mut rng, &src, donor), world.now);
                }
            }
        }

        // Sometimes release a held frame out of order, and sometimes
        // inject pure line noise on top of everything.
        if !held.is_empty() && rng.gen_bool(0.2) {
            let f = held.pop_front().expect("non-empty");
            leg.push(f, world.now);
        }
        if rng.gen_bool(0.1) {
            report.mutation_counts[Mutation::RandomBytes.index()] += 1;
            report.mutated += 1;
            corrupting_seen = true;
            leg.push(apply(Mutation::RandomBytes, &mut rng, &[], None), world.now);
        }

        // Everything that reached the server goes through the demux.
        let arrivals = leg.pull(world.now);
        report.injected += ingest(&mut world, arrivals, leg.burst_chunk());
        world.server.process_all_pending();
        world.server.tick(world.now);

        let (d, g, _) = world.drain_server(cfg.seed, iter, corrupting_seen);
        report.delivered += d;
        report.garbled += g;
        if world.shuttle_reverse(&mut rng, cfg.reverse_mutate_ratio) > 0 {
            corrupting_seen = true;
        }
        world.check_invariants(cfg.seed, iter);
    }

    // Flush anything still held or in flight.
    for f in held.drain(..) {
        leg.push(f, world.now);
    }
    leg.settle();
    let arrivals = leg.pull(world.now);
    report.injected += ingest(&mut world, arrivals, leg.burst_chunk());
    let (d, g, _) = world.drain_server(cfg.seed, cfg.iterations, corrupting_seen);
    report.delivered += d;
    report.garbled += g;
    world.check_invariants(cfg.seed, cfg.iterations);

    // Liveness: both connections must still carry a fresh probe.
    report.recovered = prove_liveness(&mut world, &mut leg, cfg, corrupting_seen);
    report.demux_rejects = world.server.rejects().total();
    report.conn_rejects = world
        .server_handles
        .iter()
        .map(|&h| world.server.conn(h).stats().rejects.total())
        .sum();
    report
}

/// Post-storm recovery: send one probe per client over a now-clean
/// network and require both to arrive (retransmission is allowed to do
/// its job — the probe may need several RTOs to squeeze past the
/// window state the storm left behind).
fn prove_liveness(
    world: &mut World,
    leg: &mut impl Leg,
    cfg: &FuzzConfig,
    corrupting_seen: bool,
) -> bool {
    for i in 0..2 {
        let p = payload(i, PROBE_SEQ);
        world.clients[i].send(world.client_handles[i], &p);
    }
    let mut seen = [false, false];
    for round in 0..4000u64 {
        world.now += STEP;
        world.settle();
        let mut moved = false;
        for i in 0..2 {
            while let Some((_, frame)) = world.clients[i].poll_transmit() {
                leg.push(frame.to_wire(), world.now);
                moved = true;
            }
        }
        if ingest(world, leg.pull(world.now), leg.burst_chunk()) > 0 {
            moved = true;
        }
        world.server.process_all_pending();
        let (_, _, probes) = world.drain_server(cfg.seed, u64::MAX - round, corrupting_seen);
        for i in 0..2 {
            seen[i] |= probes[i];
        }
        world.shuttle_reverse(&mut SplitMix64::new(0), 0.0);
        world.check_invariants(cfg.seed, u64::MAX - round);
        if seen == [true, true] {
            return true;
        }
        if !moved {
            leg.settle();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_classifier_roundtrips() {
        assert_eq!(classify(&payload(0, 7)), Origin::Client(0, 7));
        assert_eq!(
            classify(&payload(1, PROBE_SEQ)),
            Origin::Client(1, PROBE_SEQ)
        );
        assert_eq!(classify(b"anything else"), Origin::Garbled);
        let mut p = payload(0, 7);
        p[3] ^= 0x01;
        assert_eq!(classify(&p), Origin::Garbled);
    }

    #[test]
    fn small_campaign_reconciles_and_recovers() {
        let report = run_campaign(&FuzzConfig::new(0xF0_22, 400));
        assert!(report.recovered, "{report}");
        assert!(report.injected > 400, "{report}");
        assert!(report.delivered > 0, "{report}");
        assert!(report.mutated > 0, "{report}");
    }

    #[test]
    fn burst_campaign_reconciles_and_recovers() {
        let report = run_burst_campaign(&FuzzConfig::new(0xB0_57, 400), 32);
        assert!(report.recovered, "{report}");
        assert!(report.injected > 400, "{report}");
        assert!(report.delivered > 0, "{report}");
    }

    #[test]
    fn burst_ingest_is_outcome_identical_to_per_frame_demux() {
        // Same seed, same storm — the only difference is arrivals being
        // demuxed through from_network_burst in chunks instead of one
        // from_network call per frame. Endpoint::from_network_burst is
        // counter- and outcome-identical to the per-frame path, so every
        // campaign total must match exactly, at any chunk size.
        let cfg = FuzzConfig::new(0x600D_F00D, 300);
        let direct = run_campaign(&cfg);
        for chunk in [1usize, 7, 64] {
            let burst = run_burst_campaign(&cfg, chunk);
            assert_eq!(burst.injected, direct.injected, "chunk {chunk}");
            assert_eq!(burst.delivered, direct.delivered, "chunk {chunk}");
            assert_eq!(burst.garbled, direct.garbled, "chunk {chunk}");
            assert_eq!(burst.demux_rejects, direct.demux_rejects, "chunk {chunk}");
            assert_eq!(burst.conn_rejects, direct.conn_rejects, "chunk {chunk}");
            assert_eq!(burst.recovered, direct.recovered, "chunk {chunk}");
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(&FuzzConfig::new(42, 150));
        let b = run_campaign(&FuzzConfig::new(42, 150));
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mutation_counts, b.mutation_counts);
        assert_eq!(a.demux_rejects, b.demux_rejects);
    }
}
