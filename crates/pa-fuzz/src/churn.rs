//! Connection-churn campaign: a seeded bind / traffic / re-key /
//! remove loop against a sharded demux, with optional hostile mutation
//! mixed in.
//!
//! The storm campaigns ([`crate::harness`]) hold the *population* fixed
//! and mutate the *bytes*; this campaign mutates the population. Every
//! cycle draws one lifecycle op — admit a connection, route traffic,
//! rotate a cookie (and immediately replay the retired one), remove a
//! connection (and poke its dead handle) — and the invariants are
//! checked at periodic checkpoints:
//!
//! - the router's ident map tracks the live population exactly and the
//!   live cookie map tracks the established population exactly — every
//!   removal pays its map entries back,
//! - retired-cookie state stays *bounded* (per-conn stale caps, FIFO
//!   tombstones) no matter how long the churn runs,
//! - shard buffer pools return to their retained-idle baseline once
//!   warmed — churn must not leak or strand buffers,
//! - the demux conservation law and the stale ledger identity hold on
//!   every shard at exact `==`.
//!
//! At the end the whole population is removed and the router must be
//! *empty* (live maps zero, only bounded tombstones left). Connections
//! are single-[`NullLayer`] on purpose: no window backpressure means a
//! clean frame must *always* route, so the campaign can assert exact
//! outcomes per op instead of merely surviving ([`crate::harness`]
//! covers full-stack resilience; this covers lifecycle bookkeeping).
//! A failure prints its seed and cycle for bit-exact reproduction.

use crate::mutate::{apply, draw_mutation};
use crate::note_injection;
use pa_buf::Msg;
use pa_core::conn::{Connection, ConnectionParams, DeliverOutcome, DropReason};
use pa_core::layer::NullLayer;
use pa_core::shard::{ShardDelivery, ShardHandle, ShardedEndpoint};
use pa_core::PaConfig;
use pa_obs::rng::{Rng, SplitMix64};
use pa_wire::{ByteOrder, Cookie, EndpointAddr, Preamble};
use std::collections::HashMap;
use std::fmt;

/// Parameters of a churn campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Master seed (the reproduction handle).
    pub seed: u64,
    /// Lifecycle cycles to run.
    pub cycles: u64,
    /// Live-population cap.
    pub max_live: usize,
    /// Demux shards (power of two).
    pub shards: usize,
    /// Probability an established-connection traffic frame is mutated
    /// before injection (0.0 = the surgical, exactly-accounted mode).
    /// Ident-carrying and re-key frames are always injected clean —
    /// bindings only ever change through verified frames, which keeps
    /// the cookie-map population assertions exact even under hostility.
    pub mutate_ratio: f64,
}

impl ChurnConfig {
    /// Default shape: 4 shards, up to 48 live connections, surgical.
    pub fn new(seed: u64, cycles: u64) -> ChurnConfig {
        ChurnConfig {
            seed,
            cycles,
            max_live: 48,
            shards: 4,
            mutate_ratio: 0.0,
        }
    }
}

/// What a churn campaign did.
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// The master seed.
    pub seed: u64,
    /// Cycles run.
    pub cycles: u64,
    /// Connections admitted over the whole run.
    pub admitted: u64,
    /// Connections removed (all of them, by the end).
    pub removed: u64,
    /// Cookie rotations performed.
    pub rekeys: u64,
    /// Clean traffic frames routed.
    pub routed: u64,
    /// Mutated frames injected.
    pub mutated: u64,
    /// Replays of retired cookies refused as stale.
    pub stale_replays: u64,
    /// Operations refused through dead handles.
    pub dead_handle_pokes: u64,
    /// Application messages delivered.
    pub delivered: u64,
    /// Deliveries whose payload tag did not match the connection
    /// (possible only after a payload-corrupting mutation).
    pub garbled: u64,
    /// Peak live population observed.
    pub peak_live: usize,
    /// Peak stale+tombstone entries observed across shards.
    pub peak_retired: usize,
}

impl fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "churn campaign seed={:#x} cycles={} admitted={} removed={} rekeys={}",
            self.seed, self.cycles, self.admitted, self.removed, self.rekeys
        )?;
        writeln!(
            f,
            "  routed={} mutated={} delivered={} garbled={} stale_replays={} dead_pokes={}",
            self.routed,
            self.mutated,
            self.delivered,
            self.garbled,
            self.stale_replays,
            self.dead_handle_pokes
        )?;
        write!(
            f,
            "  peak_live={} peak_retired={}",
            self.peak_live, self.peak_retired
        )
    }
}

const SERVER_HOST: u64 = 10;
const TICK: u64 = 1_000_000;
/// `MsgPool::with_defaults` retains this many free buffers; the pool
/// baseline is taken once every shard's idle list has filled to it.
const POOL_RETAINED: usize = 64;

/// One live member of the churning population.
struct Member {
    conn: Connection,
    handle: ShardHandle,
    /// Unique per-admission tag, stamped into every payload.
    key: u64,
    established: bool,
}

struct Driver {
    cfg: ChurnConfig,
    server: ShardedEndpoint,
    members: Vec<Member>,
    /// handle → payload key, for the cross-connection delivery check.
    expect: HashMap<ShardHandle, u64>,
    rng: SplitMix64,
    next_key: u64,
    clock: u64,
    corrupting_seen: bool,
    report: ChurnReport,
    pool_baseline: Option<Vec<usize>>,
}

fn payload_for(key: u64, nonce: u64) -> Vec<u8> {
    let mut p = key.to_be_bytes().to_vec();
    p.extend_from_slice(&key.to_be_bytes());
    p.extend_from_slice(&nonce.to_be_bytes());
    p
}

fn payload_key(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 24 || bytes[..8] != bytes[8..16] {
        return None;
    }
    Some(u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")))
}

impl Driver {
    fn new(cfg: ChurnConfig) -> Driver {
        Driver {
            server: ShardedEndpoint::new(cfg.shards),
            members: Vec::new(),
            expect: HashMap::new(),
            rng: SplitMix64::new(cfg.seed),
            next_key: 1,
            clock: 0,
            corrupting_seen: false,
            report: ChurnReport {
                seed: cfg.seed,
                ..ChurnReport::default()
            },
            pool_baseline: None,
            cfg,
        }
    }

    fn admit(&mut self) {
        let key = self.next_key;
        self.next_key += 1;
        let host = key + 100; // distinct address per admission
        let mk = |local: u64, peer: u64, seed: u64| {
            Connection::new(
                vec![Box::new(NullLayer)],
                PaConfig::paper_default(),
                ConnectionParams::new(
                    EndpointAddr::from_parts(local, 1),
                    EndpointAddr::from_parts(peer, 1),
                    seed,
                ),
            )
            .expect("single-layer stack builds")
        };
        let client = mk(host, SERVER_HOST, key.wrapping_mul(2) + 1);
        let server_side = mk(SERVER_HOST, host, key.wrapping_mul(2) + 2);
        let handle = self.server.add_connection(server_side);
        self.expect.insert(handle, key);
        self.members.push(Member {
            conn: client,
            handle,
            key,
            established: false,
        });
        self.report.admitted += 1;
        self.report.peak_live = self.report.peak_live.max(self.members.len());
    }

    /// Sends one payload from member `i`. Established-connection frames
    /// may be mutated (hostile mode); ident-carrying first frames are
    /// always injected clean so establishment is never in doubt.
    fn traffic(&mut self, i: usize) {
        let m = &mut self.members[i];
        let nonce = self.rng.next_u64() >> 8;
        m.conn.send(&payload_for(m.key, nonce));
        let Some(frame) = m.conn.poll_transmit() else {
            m.conn.process_pending();
            return;
        };
        let may_mutate = m.established;
        m.established = true;
        let bytes = frame.to_wire();
        m.conn.process_pending();
        if may_mutate && self.cfg.mutate_ratio > 0.0 && self.rng.gen_bool(self.cfg.mutate_ratio) {
            let mutation = draw_mutation(&mut self.rng);
            if mutation.corrupts_payload() {
                self.corrupting_seen = true;
            }
            let mutated = apply(mutation, &mut self.rng, &bytes, None);
            note_injection(&mutated);
            self.server.from_network(Msg::from_wire(mutated));
            self.report.mutated += 1;
        } else {
            note_injection(&bytes);
            let out = self.server.from_network(Msg::from_wire(bytes));
            assert!(
                !matches!(out, DeliverOutcome::Dropped(_)),
                "clean frame dropped (seed={:#x}): {out:?}",
                self.cfg.seed
            );
            self.report.routed += 1;
        }
    }

    /// Rotates member `i`'s cookie, lands the rotation, then replays
    /// the retired cookie — which must be refused as stale by whichever
    /// shard it hashes to, immediately, every time.
    fn rekey(&mut self, i: usize) {
        let m = &mut self.members[i];
        if !m.established {
            return;
        }
        let old = m.conn.local_cookie().raw();
        m.conn.rotate_cookie(self.rng.next_u64());
        self.report.rekeys += 1;
        let nonce = self.rng.next_u64() >> 8;
        m.conn.send(&payload_for(m.key, nonce));
        if let Some(frame) = m.conn.poll_transmit() {
            let out = self.server.from_network(frame);
            assert!(
                !matches!(out, DeliverOutcome::Dropped(_)),
                "re-key frame dropped (seed={:#x}): {out:?}",
                self.cfg.seed
            );
            self.report.routed += 1;
        }
        m.conn.process_pending();

        let mut wire = Preamble::common(Cookie::from_raw(old), ByteOrder::Big)
            .encode()
            .to_vec();
        wire.extend_from_slice(b"churn replay");
        note_injection(&wire);
        let out = self.server.from_network(Msg::from_wire(wire));
        assert_eq!(
            out,
            DeliverOutcome::Dropped(DropReason::StaleCookie),
            "retired cookie not stale (seed={:#x})",
            self.cfg.seed
        );
        self.report.stale_replays += 1;
    }

    fn remove(&mut self, i: usize) {
        let m = self.members.swap_remove(i);
        self.expect.remove(&m.handle);
        self.server
            .remove_connection(m.handle)
            .expect("live member removes");
        self.report.removed += 1;
        // Poke the dead handle: refused, never misrouted.
        assert!(self.server.try_send(m.handle, b"late").is_err());
        self.report.dead_handle_pokes += 1;
    }

    fn drain(&mut self) {
        let mut out: Vec<ShardDelivery> = Vec::new();
        self.server.drain_deliveries(&mut out);
        for d in out {
            self.report.delivered += 1;
            match payload_key(d.msg.as_slice()) {
                Some(key) if Some(&key) == self.expect.get(&d.conn) => {}
                _ => {
                    assert!(
                        self.corrupting_seen,
                        "cross-connection or garbled delivery without corrupting \
                         mutation (seed={:#x})",
                        self.cfg.seed
                    );
                    self.report.garbled += 1;
                }
            }
            self.server.recycle_delivery(d);
        }
    }

    /// The invariant lattice, checked at every checkpoint.
    fn check(&mut self, cycle: u64) {
        let seed = self.cfg.seed;
        assert!(
            self.server.demux_balanced(),
            "demux imbalance (seed={seed:#x} cycle={cycle})"
        );
        let mut idents = 0;
        let mut cookies = 0;
        let mut retired = 0;
        for s in 0..self.cfg.shards {
            let r = self.server.shard(s).router();
            assert!(
                r.stale_ledger_reconciles(),
                "stale ledger broken on shard {s} (seed={seed:#x} cycle={cycle})"
            );
            idents += r.ident_count();
            cookies += r.cookie_count();
            retired += r.stale_count() + r.tombstone_count();
        }
        self.report.peak_retired = self.report.peak_retired.max(retired);
        assert_eq!(
            idents,
            self.members.len(),
            "router idents != live population (seed={seed:#x} cycle={cycle})"
        );
        // Bindings change only through verified (always-clean) frames,
        // so the live cookie map tracks establishment exactly even in
        // hostile mode.
        let established = self.members.iter().filter(|m| m.established).count();
        assert_eq!(
            cookies, established,
            "live cookies != established members (seed={seed:#x} cycle={cycle})"
        );
        // Pool accounting: the flux identity holds always; once every
        // shard's free list has filled to its retained cap, the idle
        // counts must sit at exactly that baseline at every subsequent
        // checkpoint (all deliveries drained) — churn must not leak or
        // strand buffers.
        let idle: Vec<usize> = (0..self.cfg.shards)
            .map(|s| self.server.shard_pool_idle(s))
            .collect();
        for (s, &n) in idle.iter().enumerate() {
            let st = self.server.shard_pool_stats(s);
            assert_eq!(
                n as u64,
                st.returns + st.burst_refills - st.hits - st.capped,
                "pool flux identity broken on shard {s} (seed={seed:#x} cycle={cycle})"
            );
        }
        match &self.pool_baseline {
            None => {
                if idle.iter().all(|&n| n >= POOL_RETAINED) {
                    self.pool_baseline = Some(idle);
                }
            }
            Some(base) => {
                assert_eq!(
                    &idle, base,
                    "pool idle diverged from baseline (seed={seed:#x} cycle={cycle})"
                );
            }
        }
    }

    fn run(mut self) -> ChurnReport {
        // Seed population.
        for _ in 0..self.cfg.max_live / 2 {
            self.admit();
        }
        for cycle in 0..self.cfg.cycles {
            match self.rng.gen_index(16) {
                0..=1 => {
                    if self.members.len() < self.cfg.max_live {
                        self.admit();
                    }
                }
                2 => {
                    if !self.members.is_empty() {
                        let i = self.rng.gen_index(self.members.len());
                        self.rekey(i);
                    }
                }
                3 => {
                    if self.members.len() > 1 {
                        let i = self.rng.gen_index(self.members.len());
                        self.remove(i);
                    }
                }
                _ => {
                    if !self.members.is_empty() {
                        let i = self.rng.gen_index(self.members.len());
                        self.traffic(i);
                    }
                }
            }
            if cycle % 64 == 0 {
                self.clock += TICK;
                self.server.tick(self.clock);
                self.drain();
            }
            if cycle % 1024 == 0 {
                self.drain();
                self.check(cycle);
            }
        }
        // Tear the whole population down: the router must pay every
        // map entry back.
        self.drain();
        while !self.members.is_empty() {
            let i = self.members.len() - 1;
            self.remove(i);
        }
        self.drain();
        self.check(self.cfg.cycles);
        let seed = self.cfg.seed;
        assert_eq!(self.server.connection_count(), 0);
        for s in 0..self.cfg.shards {
            let r = self.server.shard(s).router();
            assert_eq!(r.ident_count(), 0, "idents leaked (seed={seed:#x})");
            assert_eq!(r.cookie_count(), 0, "cookies leaked (seed={seed:#x})");
            // `stale_count` counts owned entries plus tombstones; with
            // every owner gone, only tombstones may remain.
            assert_eq!(
                r.stale_count(),
                r.tombstone_count(),
                "owned stale entries leaked (seed={seed:#x})"
            );
            // Tombstones of migrated-then-removed conns are the one
            // thing allowed to remain — and they are FIFO-bounded.
            assert!(
                r.tombstone_count() <= 1024,
                "tombstones unbounded (seed={seed:#x})"
            );
        }
        self.report.cycles = self.cfg.cycles;
        self.report
    }
}

/// Runs a churn campaign and returns its report. Panics (with seed and
/// cycle) on any invariant breach.
pub fn run_churn_campaign(cfg: &ChurnConfig) -> ChurnReport {
    Driver::new(*cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_surgical_churn_reconciles() {
        let report = run_churn_campaign(&ChurnConfig::new(0xC4E4_2026, 4_000));
        assert!(
            report.admitted > report.peak_live as u64,
            "population churned: {report}"
        );
        assert_eq!(report.removed, report.admitted, "everyone left: {report}");
        assert!(report.rekeys > 0 && report.stale_replays == report.rekeys);
        assert!(report.delivered > 0);
        assert_eq!(report.garbled, 0, "surgical mode never garbles");
    }

    #[test]
    fn short_hostile_churn_survives() {
        let mut cfg = ChurnConfig::new(0xBAD_C4E4, 4_000);
        cfg.mutate_ratio = 0.2;
        let report = run_churn_campaign(&cfg);
        assert!(report.mutated > 0, "{report}");
        assert_eq!(report.removed, report.admitted, "{report}");
    }
}
