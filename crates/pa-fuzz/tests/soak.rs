//! The storm soaks: the mutation campaign over both transports, plus a
//! `TwoNodeSim` fault soak — the "no input byte sequence can panic,
//! wedge, mis-deliver, or un-account a connection" guarantee, end to
//! end.

use pa_fuzz::{run_campaign, run_udp_campaign, FuzzConfig, Mutation};

/// The in-memory storm: tens of thousands of mutated frames against a
/// live two-connection endpoint, invariants asserted after every
/// injection, liveness proved after the storm.
#[test]
fn sim_transport_storm() {
    let report = run_campaign(&FuzzConfig::new(0x5701_2026, 12_000));
    assert!(report.recovered, "connections wedged:\n{report}");
    assert!(report.injected >= 12_000, "{report}");
    assert!(report.delivered > 0, "{report}");
    // Every mutation class actually ran.
    for m in Mutation::ALL {
        assert!(
            report.mutation_counts[m.index()] > 0,
            "mutation {} never drawn:\n{report}",
            m.name()
        );
    }
    // The storm was hostile enough to exercise the reject taxonomy.
    assert!(report.demux_rejects > 0, "{report}");
}

/// The same storm with the attacker→server leg crossing real UDP
/// loopback sockets (kernel truncation sentinel included).
#[test]
fn udp_loopback_storm() {
    let report = run_udp_campaign(&FuzzConfig::new(0x0DD_BA11, 2_500));
    assert!(report.recovered, "connections wedged:\n{report}");
    assert!(report.injected > 1_000, "{report}");
    assert!(report.delivered > 0, "{report}");
    assert!(report.demux_rejects > 0, "{report}");
}

/// A different failure geometry: `TwoNodeSim`'s own fault injector
/// (drop/corrupt/duplicate/reorder at the network layer) against the
/// paper schedule, then a clean tail to prove progress after the storm.
#[test]
fn two_node_sim_fault_soak_reconciles_and_recovers() {
    use pa_sim::{SimConfig, TwoNodeSim};
    use pa_unet::faults::FaultConfig;

    let mut cfg = SimConfig::paper();
    cfg.faults = FaultConfig::harsh(0xFA_57);
    cfg.tick_every = Some(2_000_000);
    let mut sim = TwoNodeSim::new(&cfg);
    sim.schedule_stream(0, 1_000, 2_000_000, 200, 64);
    sim.run_until(600_000_000);

    for (i, node) in sim.nodes.iter().enumerate() {
        let s = node.conn.stats();
        assert!(s.delivery_balanced(), "node {i}: {s}");
        assert!(s.rejects_reconcile(), "node {i}: {s}");
    }
    let delivered_during_storm = sim.delivered[1];
    assert!(delivered_during_storm > 0, "storm starved the stream");

    // Clean tail: the connection must still move once the network
    // behaves (retransmission drains whatever the storm destroyed).
    sim.run_to_quiescence(5_000_000_000);
    assert!(
        sim.delivered[1] >= 200,
        "stream never completed: {} of 200 delivered",
        sim.delivered[1]
    );
    for (i, node) in sim.nodes.iter().enumerate() {
        let s = node.conn.stats();
        assert!(s.delivery_balanced(), "node {i} after recovery: {s}");
        assert!(s.rejects_reconcile(), "node {i} after recovery: {s}");
    }
}

/// Lifecycle soak: the churn campaign in hostile mode — ~50k seeded
/// bind / traffic / re-key / remove cycles with one frame in five
/// mutated in flight. The demux conservation law, stale ledgers, and
/// pool baselines must hold at every checkpoint *while the population
/// itself churns*, and the final teardown must still empty the router.
#[test]
fn hostile_churn_soak_reconciles_through_lifecycle_storm() {
    use pa_fuzz::churn::{run_churn_campaign, ChurnConfig};

    let mut cfg = ChurnConfig::new(0x50A_BC4E4, 50_000);
    cfg.mutate_ratio = 0.2;
    let report = run_churn_campaign(&cfg);
    assert!(report.mutated > 3_000, "{report}");
    assert_eq!(report.removed, report.admitted, "{report}");
    assert_eq!(report.stale_replays, report.rekeys, "{report}");
    assert!(report.delivered > 10_000, "{report}");
}
