//! The PRNG stream contract behind the committed fuzz corpora.
//!
//! `pa_fuzz::rng` re-exports `pa_obs::rng` — one SplitMix64 for the
//! whole workspace. Every committed corpus entry, every campaign
//! replay, and every "re-run with this seed" instruction in a failure
//! report assumes draw `k` of seed `s` is the same today as the day the
//! corpus was committed. These tests pin that contract:
//!
//! - the raw streams match the canonical SplitMix64 reference values
//!   (Steele, Lea & Flood) through the *re-exported* path,
//! - the re-export is the same type as the pa-obs original (a second
//!   implementation can't silently drift in),
//! - the generated regression corpus is byte-pinned by length + FNV-1a
//!   fingerprint, entry by entry.
//!
//! If a change here is intentional, it invalidates every committed
//! corpus and every recorded seed — regenerate them all, in the same
//! change.

use pa_fuzz::rng::{Rng, SplitMix64};

fn fnv64(b: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn reexport_is_the_same_type_as_the_origin() {
    // Compiles only if `pa_fuzz::rng::SplitMix64` IS
    // `pa_obs::rng::SplitMix64` — not a copy.
    let r: pa_obs::rng::SplitMix64 = SplitMix64::new(7);
    let mut a = r;
    let mut b = pa_fuzz::rng::SplitMix64::new(7);
    assert_eq!(a.next_u64(), b.next_u64());
}

#[test]
fn canonical_reference_vectors_via_the_reexport() {
    // Seed 0, first outputs of the canonical C implementation.
    let mut r = SplitMix64::new(0);
    assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    // Deep draw: position 1000 of seed 0 (the whole stream is pinned,
    // not just its head).
    let mut r = SplitMix64::new(0);
    let v = (0..1000).map(|_| r.next_u64()).last().unwrap();
    assert_eq!(v, 0x14E0_ABB2_BFCF_7C3E);
    // The corpus base seed (see `pa_fuzz::corpus`): mutation entry k
    // draws from seed 0xC0_4955 + k.
    let mut r = SplitMix64::new(0xC0_4955);
    assert_eq!(r.next_u64(), 0x591E_FF55_BF0E_C293);
    assert_eq!(r.next_u64(), 0x148C_E1E9_AE5F_82A8);
    assert_eq!(r.next_u64(), 0x62E4_D7A4_35D0_55DD);
}

#[test]
fn committed_corpus_is_byte_pinned() {
    // (name, byte length, FNV-1a 64 of the bytes) for every entry the
    // generator emits — hand-crafted regressions and seeded mutants
    // alike. A mismatch means either the mutators, the canonical
    // frame, or the PRNG stream changed; all three invalidate
    // committed corpora.
    const PINNED: &[(&str, usize, u64)] = &[
        ("empty", 0, 0xCBF29CE484222325),
        ("truncated-preamble", 3, 0x15D8BC1C8508284E),
        ("zero-cookie", 32, 0xA59AAD376277953D),
        ("zero-cookie-with-ident-bit", 32, 0x51F42088DD97D5BD),
        ("unknown-cookie", 24, 0xEFB08EE175B6502B),
        ("unknown-cookie-little-endian-bit", 24, 0x6C400C99412A8B45),
        ("ident-claimed-no-ident-bytes", 8, 0x13825A05A7DE21E9),
        ("pack-forge-same-size-65535x0", 9, 0xE3F0007EA0120681),
        ("pack-forge-variable-65535", 10, 0xD31A1E946E62A980),
        ("greeting-truncated", 6, 0xC6A69827FF834675),
        ("greeting-forged-ident-len", 19, 0xACB79738E0F9FC5A),
        ("truncate", 44, 0xB69717FA05D2DF55),
        ("bitflip", 127, 0x701D4D88A041FADA),
        ("preamble-forge", 127, 0xE78AB9E0E05EEDC2),
        ("cookie-forge", 127, 0x322ED5AA72DE03CE),
        ("byteorder-flip", 127, 0x2FE37FFD84BB5E1E),
        ("identbit-flip", 127, 0xE7E232F0B263A85E),
        ("pack-forge", 127, 0x7F45CECDDB4EAD29),
        ("duplicate", 127, 0xB50B0AE3E64A2DDE),
        ("reorder", 127, 0xB50B0AE3E64A2DDE),
        ("splice", 127, 0x73B6FD815E3823CB),
        ("random-bytes", 10, 0x80D476792023FBFC),
    ];
    let corpus = pa_fuzz::regression_corpus();
    assert_eq!(
        corpus.len(),
        PINNED.len(),
        "corpus gained or lost entries — re-pin deliberately"
    );
    for (entry, &(name, len, fp)) in corpus.iter().zip(PINNED) {
        assert_eq!(entry.name, name, "corpus order changed");
        assert_eq!(entry.bytes.len(), len, "entry {name} length drifted");
        assert_eq!(
            fnv64(&entry.bytes),
            fp,
            "entry {name} bytes drifted — PRNG stream or mutator changed"
        );
    }
}

#[test]
fn identical_seeds_mutate_identically() {
    // The property every recorded failure seed depends on: the same
    // seed applied to the same frame produces the same mutant.
    use pa_fuzz::{apply, draw_mutation};
    let frame: Vec<u8> = (0..64u8).collect();
    for seed in [0u64, 1, 0xC0_4955, u64::MAX] {
        let mut r1 = SplitMix64::new(seed);
        let mut r2 = SplitMix64::new(seed);
        let m1 = draw_mutation(&mut r1);
        let m2 = draw_mutation(&mut r2);
        assert_eq!(m1, m2);
        assert_eq!(
            apply(m1, &mut r1, &frame, Some(&frame)),
            apply(m2, &mut r2, &frame, Some(&frame)),
        );
    }
}
