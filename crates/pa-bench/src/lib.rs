//! Benchmark harnesses for the paper's tables and figures.
//!
//! Each `[[bench]]` target with `harness = false` regenerates one paper
//! artifact by running the corresponding `pa_sim::experiments` driver
//! and printing the paper-versus-measured table (see EXPERIMENTS.md).
//! The `micro` bench is a conventional Criterion suite measuring the
//! *real* Rust-native cost of each PA mechanism — packed vs padded
//! header access, interpreted vs pre-resolved filters, fast path vs
//! layered traversal, packing — the honest numbers for this
//! implementation on today's hardware (shapes, not 1996 values).
//!
//! The `table4` and `fig4` benches additionally emit
//! `BENCH_table4.json` / `BENCH_fig4.json` reports and run the
//! [`report`] comparator against the committed baselines in
//! `baselines/` — the CI bench-smoke regression gate.

pub mod report;

pub use report::{compare, emit_and_compare, BenchReport, Better, Comparison, Delta, Metric};

/// Prints a standard banner for a paper-artifact bench.
pub fn banner(what: &str) {
    println!("\n================================================================");
    println!("  {what}");
    println!("================================================================\n");
}
