//! Bench reports and the regression comparator.
//!
//! Every paper-artifact bench can emit its headline numbers as a
//! `BENCH_<name>.json` report and compare them against a *committed
//! baseline* (`crates/pa-bench/baselines/`) whose values are the
//! EXPERIMENTS.md anchors (87 µs one-way, 174 µs RTT, …). A metric
//! that moves beyond the tolerance **in its bad direction** (latency
//! up, rate down) is a regression and fails the bench with a non-zero
//! exit status — the CI bench-smoke gate.
//!
//! The JSON is hand-rolled (the workspace takes no dependencies): a
//! flat, stable schema both written and parsed here.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Smaller is better (latencies): regression when it grows.
    Lower,
    /// Larger is better (rates, bandwidth): regression when it drops.
    Higher,
}

impl Better {
    fn label(self) -> &'static str {
        match self {
            Better::Lower => "lower",
            Better::Higher => "higher",
        }
    }

    fn parse(s: &str) -> Option<Better> {
        match s {
            "lower" => Some(Better::Lower),
            "higher" => Some(Better::Higher),
            _ => None,
        }
    }
}

/// One headline number of a bench.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (`one_way_us`, `roundtrips_per_sec`, …).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Its good direction.
    pub better: Better,
    /// Optional per-metric tolerance overriding the global one. The
    /// *baseline's* `tol` is what the comparator honors: virtual-time
    /// metrics are exact and keep the tight global default, while
    /// wall-clock nanosecond rows are hardware-dependent and carry a
    /// loose tolerance so only their hardware-independent *ratios*
    /// gate tightly.
    pub tol: Option<f64>,
}

/// A bench's emitted report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Bench name (`table4`, `fig4`).
    pub bench: String,
    /// Headline metrics, in emission order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: &str) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends one metric (global tolerance).
    pub fn push(&mut self, name: &str, value: f64, better: Better) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            better,
            tol: None,
        });
        self
    }

    /// Appends one metric with a per-metric tolerance (meaningful in
    /// the committed baseline; informational in emitted reports).
    pub fn push_tol(&mut self, name: &str, value: f64, better: Better, tol: f64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            better,
            tol: Some(tol),
        });
        self
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Renders the report as stable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let tol = match m.tol {
                Some(t) => format!(", \"tol\": {}", fmt_f64(t)),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}, \"better\": \"{}\"{tol}}}{comma}",
                m.name,
                fmt_f64(m.value),
                m.better.label()
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report produced by [`BenchReport::to_json`] (tolerant
    /// of whitespace; not a general JSON parser).
    pub fn parse(json: &str) -> Result<BenchReport, String> {
        let bench = find_string(json, "bench").ok_or("missing \"bench\"")?;
        let mut metrics = Vec::new();
        let mut rest = json;
        while let Some(start) = rest.find("{\"name\"") {
            let obj_end = rest[start..]
                .find('}')
                .map(|e| start + e + 1)
                .ok_or("unterminated metric object")?;
            let obj = &rest[start..obj_end];
            let name = find_string(obj, "name").ok_or("metric missing \"name\"")?;
            let value = find_number(obj, "value").ok_or("metric missing \"value\"")?;
            let better = find_string(obj, "better")
                .and_then(|s| Better::parse(&s))
                .ok_or("metric missing \"better\"")?;
            let tol = find_number(obj, "tol");
            metrics.push(Metric {
                name,
                value,
                better,
                tol,
            });
            rest = &rest[obj_end..];
        }
        if metrics.is_empty() {
            return Err("no metrics".to_string());
        }
        Ok(BenchReport { bench, metrics })
    }

    /// Writes the report to `path`, creating the parent directory if
    /// needed (CI sets `BENCH_OUT_DIR` to a fresh artifact directory).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Loads a report from `path`.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::parse(&text)
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

fn find_string(hay: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = hay.find(&pat)? + pat.len();
    let rest = hay[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn find_number(hay: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = hay.find(&pat)? + pat.len();
    let rest = hay[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One metric's comparison against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Current measurement.
    pub current: f64,
    /// Signed relative change, `(current - baseline) / baseline`.
    pub change: f64,
    /// The tolerance this metric was judged against (the baseline's
    /// per-metric `tol` when present, else the global one).
    pub tol: f64,
    /// True if the change exceeds tolerance in the bad direction.
    pub regressed: bool,
}

/// The comparator's verdict over a whole report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-metric deltas, baseline order.
    pub deltas: Vec<Delta>,
    /// Metrics present in the baseline but absent from the current
    /// report (counted as failures: a vanished metric hides anything).
    pub missing: Vec<String>,
}

impl Comparison {
    /// True if nothing regressed and nothing went missing.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Renders a verdict table.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>8} {:>7}  verdict (global tolerance ±{:.0}%)",
            "metric",
            "baseline",
            "current",
            "Δ%",
            "tol%",
            tolerance * 100.0
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{:<28} {:>14.3} {:>14.3} {:>+7.1}% {:>6.0}%  {}",
                d.name,
                d.baseline,
                d.current,
                d.change * 100.0,
                d.tol * 100.0,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for m in &self.missing {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14} {:>8} {:>7}  MISSING",
                m, "-", "-", "-", "-"
            );
        }
        let _ = writeln!(out, "verdict: {}", if self.ok() { "PASS" } else { "FAIL" });
        out
    }
}

/// Compares `current` against `baseline`: a metric regresses when it
/// moves more than its tolerance (the baseline's per-metric `tol` when
/// present, else the global `tolerance`) in its bad direction —
/// latency up, rate down. Improvements never fail.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.metrics {
        let Some(c) = current.get(&b.name) else {
            missing.push(b.name.clone());
            continue;
        };
        let change = if b.value != 0.0 {
            (c.value - b.value) / b.value
        } else {
            0.0
        };
        let tol = b.tol.unwrap_or(tolerance);
        let regressed = match b.better {
            Better::Lower => change > tol,
            Better::Higher => change < -tol,
        };
        deltas.push(Delta {
            name: b.name.clone(),
            baseline: b.value,
            current: c.value,
            change,
            tol,
            regressed,
        });
    }
    Comparison { deltas, missing }
}

/// The committed-baseline path for `bench` (inside this crate, so it
/// travels with the repo).
pub fn baseline_path(bench: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join(format!("BENCH_{bench}.json"))
}

/// Where to write the emitted report: `$BENCH_OUT_DIR` if set (the CI
/// artifact directory), else the current directory.
pub fn out_path(bench: &str) -> PathBuf {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    Path::new(&dir).join(format!("BENCH_{bench}.json"))
}

/// The regression tolerance: `$BENCH_TOLERANCE` (a fraction, e.g.
/// `0.10`) or the default 10%.
pub fn tolerance() -> f64 {
    std::env::var("BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10)
}

/// The whole gate: writes `BENCH_<name>.json`, compares against the
/// committed baseline (if present), prints the verdict table, and
/// returns `false` on regression. Benches call
/// `std::process::exit(1)` on `false` so CI fails.
pub fn emit_and_compare(report: &BenchReport) -> bool {
    let out = out_path(&report.bench);
    match report.write(&out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("warning: could not write {}: {e}", out.display()),
    }
    let base_path = baseline_path(&report.bench);
    let baseline = match BenchReport::load(&base_path) {
        Ok(b) => b,
        Err(e) => {
            println!("no committed baseline ({e}); skipping comparison");
            return true;
        }
    };
    let tol = tolerance();
    let cmp = compare(report, &baseline, tol);
    println!("\n--- regression gate vs {} ---", base_path.display());
    print!("{}", cmp.render(tol));
    cmp.ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("table4");
        r.push("one_way_us", 87.0, Better::Lower)
            .push("msgs_per_sec", 75654.0, Better::Higher);
        r
    }

    #[test]
    fn json_roundtrips() {
        let r = sample();
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("not json").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let base = sample();
        let mut cur = BenchReport::new("table4");
        cur.push("one_way_us", 90.0, Better::Lower) // +3.4 %
            .push("msgs_per_sec", 70_000.0, Better::Higher); // −7.5 %
        let cmp = compare(&cur, &base, 0.10);
        assert!(cmp.ok(), "{}", cmp.render(0.10));
    }

    #[test]
    fn latency_up_beyond_tolerance_regresses() {
        let base = sample();
        let mut cur = BenchReport::new("table4");
        cur.push("one_way_us", 100.0, Better::Lower) // +14.9 %
            .push("msgs_per_sec", 75_654.0, Better::Higher);
        let cmp = compare(&cur, &base, 0.10);
        assert!(!cmp.ok());
        assert!(cmp.deltas[0].regressed);
        assert!(!cmp.deltas[1].regressed);
        assert!(cmp.render(0.10).contains("REGRESSED"));
    }

    #[test]
    fn rate_down_beyond_tolerance_regresses() {
        let base = sample();
        let mut cur = BenchReport::new("table4");
        cur.push("one_way_us", 87.0, Better::Lower)
            .push("msgs_per_sec", 60_000.0, Better::Higher); // −20.7 %
        assert!(!compare(&cur, &base, 0.10).ok());
    }

    #[test]
    fn improvements_never_fail() {
        let base = sample();
        let mut cur = BenchReport::new("table4");
        cur.push("one_way_us", 40.0, Better::Lower) // much faster
            .push("msgs_per_sec", 150_000.0, Better::Higher); // much more
        assert!(compare(&cur, &base, 0.10).ok());
    }

    #[test]
    fn per_metric_tolerance_overrides_global() {
        // A wall-clock row with a loose per-metric tol survives a big
        // swing that the global 10% would flag; the tight ratio row
        // still gates. Round-trips through JSON so the comparator sees
        // exactly what a committed baseline file would carry.
        let mut base = BenchReport::new("micro");
        base.push_tol("hot_op_ns", 100.0, Better::Lower, 1.5)
            .push_tol("speedup", 1.45, Better::Higher, 0.25);
        let base = BenchReport::parse(&base.to_json()).unwrap();
        assert_eq!(base.get("hot_op_ns").unwrap().tol, Some(1.5));

        let mut cur = BenchReport::new("micro");
        cur.push("hot_op_ns", 230.0, Better::Lower) // +130 %: slow CI box
            .push("speedup", 1.30, Better::Higher); // −10.3 %: within 25 %
        let cmp = compare(&cur, &base, 0.10);
        assert!(cmp.ok(), "{}", cmp.render(0.10));

        let mut lost = BenchReport::new("micro");
        lost.push("hot_op_ns", 110.0, Better::Lower)
            .push("speedup", 1.00, Better::Higher); // optimization gone
        let cmp = compare(&lost, &base, 0.10);
        assert!(!cmp.ok());
        assert!(cmp.deltas[1].regressed && !cmp.deltas[0].regressed);
    }

    #[test]
    fn missing_metric_fails() {
        let base = sample();
        let mut cur = BenchReport::new("table4");
        cur.push("one_way_us", 87.0, Better::Lower);
        let cmp = compare(&cur, &base, 0.10);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["msgs_per_sec".to_string()]);
        assert!(cmp.render(0.10).contains("MISSING"));
    }

    #[test]
    fn committed_baselines_parse_and_anchor_the_paper() {
        // The baselines shipped with the crate are the EXPERIMENTS.md
        // anchors; the gate is only as good as their integrity.
        let t4 = BenchReport::load(&baseline_path("table4")).unwrap();
        assert_eq!(t4.get("one_way_us").unwrap().value, 87.0);
        assert_eq!(t4.get("one_way_us").unwrap().better, Better::Lower);
        let f4 = BenchReport::load(&baseline_path("fig4")).unwrap();
        assert_eq!(f4.get("typical_rtt_us").unwrap().value, 174.0);
    }
}
