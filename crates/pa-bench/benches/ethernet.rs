//! Runs the network-speed comparison (§5's Ethernet remark).
fn main() {
    pa_bench::banner("§5/§1 — network speed and the value of masking");
    let e = pa_sim::experiments::ethernet::run();
    println!("{}", e.render());
}
