//! Regenerates Figure 5 (RTT vs offered round trips/s, two GC policies).
fn main() {
    pa_bench::banner("Figure 5 — round-trip latency vs round-trips/second");
    let f = pa_sim::experiments::fig5::run();
    println!("{}", f.render());
}
