//! Regenerates the headline comparison (PA vs no-PA baselines).
fn main() {
    pa_bench::banner("§1/§7 — headline: PA vs layered baselines");
    let h = pa_sim::experiments::headline::run();
    println!("{}", h.render());
}
