//! Regenerates the §5 layer-scaling measurement (window stacked twice).
fn main() {
    pa_bench::banner("§5 — per-layer overhead (window layer stacked 1-3×)");
    let r = pa_sim::experiments::layer_scaling::run();
    println!("{}", r.render());
}
