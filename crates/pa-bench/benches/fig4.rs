//! Regenerates Figure 4 (round-trip execution breakdown).
fn main() {
    pa_bench::banner("Figure 4 — round-trip execution breakdown");
    let f = pa_sim::experiments::fig4::run();
    println!("{}", f.render());
}
