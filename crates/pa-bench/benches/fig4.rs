//! Regenerates Figure 4 (round-trip execution breakdown) and runs the
//! regression gate: emits `BENCH_fig4.json` and compares it against
//! the committed baseline (the EXPERIMENTS.md E2 anchors).
fn main() {
    pa_bench::banner("Figure 4 — round-trip execution breakdown");
    let f = pa_sim::experiments::fig4::run();
    println!("{}", f.render());

    let mut report = pa_bench::BenchReport::new("fig4");
    report
        .push(
            "typical_rtt_us",
            f.typical_rtt / 1e3,
            pa_bench::Better::Lower,
        )
        .push(
            "saturated_rtt_us",
            f.saturated_rtt / 1e3,
            pa_bench::Better::Lower,
        )
        .push(
            "saturated_worst_us",
            f.saturated_worst / 1e3,
            pa_bench::Better::Lower,
        )
        .push(
            "saturated_rate_rt_per_sec",
            f.saturated_rate,
            pa_bench::Better::Higher,
        );
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
