//! Saturation throughput of the batched pipeline (PR 9's tentpole
//! gate): open-loop offered load through a [`BurstPipeline`] at burst
//! sizes 1/8/32/64, batched+threaded vs the seed per-packet engine.
//!
//! Wall-clock msg/s and p99 latencies are hardware-dependent and carry
//! loose baseline tolerances; the *hardware-independent* rows gate
//! tightly:
//!
//! - `batched_vs_unbatched_ratio` — burst-32 batched throughput over
//!   the burst-1 inline engine. The committed baseline's tolerance
//!   encodes the acceptance floor (≥ 1.3×).
//! - `burst1_identical` — 1.0 iff a burst-1 pipeline with inline posts
//!   produced wire bytes and counters identical to the seed per-packet
//!   engine (tolerance 0: any divergence fails).
//! - `batching_factor_burst32` — frames per wire flush, deterministic
//!   in virtual time (packing, §3.4).

use pa_bench::{BenchReport, Better};
use pa_sim::{per_packet_reference, BurstPipeline, PipelineConfig, PipelineReport};
use std::time::Instant;

/// Messages offered per arm (rounds = TOTAL / burst).
const TOTAL_MSGS: u64 = 32_768;

struct Arm {
    report: PipelineReport,
    msgs_per_sec: f64,
}

fn run_arm(burst: usize, threaded: bool, total_msgs: u64) -> Arm {
    let rounds = (total_msgs / burst as u64).max(1);
    let cfg = PipelineConfig::bench(rounds, burst, threaded);
    let mut p = BurstPipeline::new(cfg);
    let t0 = Instant::now();
    for _ in 0..rounds {
        p.step();
    }
    let report = p.finish();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.completed, report.offered,
        "open loop must drain completely at quiescence"
    );
    Arm {
        msgs_per_sec: report.completed as f64 / dt,
        report,
    }
}

fn main() {
    pa_bench::banner("pa-pipeline — saturation throughput, batched vs per-packet");

    // Warm the allocator, the pools and the thread machinery off the
    // record.
    let _ = run_arm(32, true, 2_048);
    let _ = run_arm(1, false, 2_048);

    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "arm", "msgs/s", "p50 µs", "p99 µs", "frames/flush", "queued"
    );
    let mut arms: Vec<(String, usize, Arm)> = Vec::new();
    let unbatched = run_arm(1, false, TOTAL_MSGS);
    print_arm("per-packet (burst 1)", &unbatched);
    for burst in [8usize, 32, 64] {
        let arm = run_arm(burst, true, TOTAL_MSGS);
        print_arm(&format!("batched (burst {burst})"), &arm);
        arms.push((format!("burst{burst}"), burst, arm));
    }

    // The identity gate: burst=1 inline pipeline == seed per-packet
    // engine, bytes and counters.
    let ident_cfg = PipelineConfig {
        capture_frames: true,
        ..PipelineConfig::per_packet(64)
    };
    let pipeline_run = BurstPipeline::run(ident_cfg.clone());
    let (ref_frames, ref_a, ref_b) = per_packet_reference(&ident_cfg);
    let identical = pipeline_run.frames == ref_frames
        && pipeline_run.stats_a == ref_a
        && pipeline_run.stats_b == ref_b;
    println!(
        "burst=1 identity vs seed engine: {} ({} frames compared)",
        if identical { "IDENTICAL" } else { "DIVERGED" },
        ref_frames.len()
    );

    let burst32 = &arms.iter().find(|(n, _, _)| n == "burst32").unwrap().2;
    let ratio = burst32.msgs_per_sec / unbatched.msgs_per_sec;
    println!("batched(32) vs per-packet ratio: {ratio:.2}x (floor 1.3x)");

    let mut report = BenchReport::new("throughput");
    // Wall-clock rows: loose tolerances, hardware-dependent.
    report.push_tol(
        "msgs_per_sec_burst1",
        unbatched.msgs_per_sec,
        Better::Higher,
        3.0,
    );
    for (name, _, arm) in &arms {
        report.push_tol(
            &format!("msgs_per_sec_{name}"),
            arm.msgs_per_sec,
            Better::Higher,
            3.0,
        );
    }
    report.push_tol(
        "p99_latency_us_burst32",
        burst32.report.latency_quantile(0.99) as f64 / 1_000.0,
        Better::Lower,
        5.0,
    );
    // Hardware-independent rows: tight tolerances.
    report.push_tol(
        "batched_vs_unbatched_ratio",
        ratio,
        Better::Higher,
        ratio_tolerance(ratio),
    );
    report.push_tol(
        "batching_factor_burst32",
        burst32.report.batching_factor(),
        Better::Higher,
        0.01,
    );
    report.push_tol(
        "burst1_identical",
        if identical { 1.0 } else { 0.0 },
        Better::Higher,
        0.0,
    );

    if !identical {
        eprintln!("FAIL: burst=1 pipeline diverged from the seed per-packet engine");
        std::process::exit(1);
    }
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}

/// The tolerance that makes the committed baseline's ratio row gate at
/// the 1.3× acceptance floor: a current ratio below 1.3 regresses no
/// matter what this machine measured at baseline time.
fn ratio_tolerance(baseline_ratio: f64) -> f64 {
    if baseline_ratio <= 1.3 {
        return 0.0;
    }
    (1.0 - 1.3 / baseline_ratio) * 0.999
}

fn print_arm(label: &str, arm: &Arm) {
    println!(
        "{:<22} {:>12.0} {:>10.1} {:>10.1} {:>10.2} {:>10}",
        label,
        arm.msgs_per_sec,
        arm.report.latency_quantile(0.50) as f64 / 1_000.0,
        arm.report.latency_quantile(0.99) as f64 / 1_000.0,
        arm.report.batching_factor(),
        arm.report.queued_sends,
    );
}
