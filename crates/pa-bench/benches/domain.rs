//! Telemetry-domain overhead: what thread-ownership costs per record.
//!
//! The multi-core design claims per-thread [`TelemetryDomain`] shards
//! make cross-thread telemetry free *where it counts*: the owner-thread
//! `record_value()` is a plain counter bump plus a sketch bucket
//! increment — no atomics, no locks, no sharing — so it must price
//! within a sliver of recording into a bare single-threaded
//! [`QuantileSketch`]. The hardware-independent ratio row gates that
//! claim at ≤ 1.15× in CI; the raw ns rows carry loose tolerances and
//! only track the machine.
//!
//! `snapshot_collect_ns` prices the *coordinator* side — advance the
//! epoch, publish four live domains, collect and merge the frozen
//! views — the cost a supervisor pays per scrape, not a hot-path cost.

use pa_bench::{BenchReport, Better};
use pa_obs::{QuantileSketch, SketchConfig, SnapshotCoordinator, TelemetryDomain};
use std::hint::black_box;
use std::time::Instant;

const BATCH: u64 = 64 * 1024;

/// Spread values across sketch buckets the way real latencies do.
#[inline]
fn value(i: u64) -> u64 {
    (i.wrapping_mul(2_654_435_761)) % 1_000_000 + 1
}

/// Both record arms, interleaved batch by batch so scheduler noise on
/// a busy (or single-core) machine hits both the same — the *ratio* is
/// the gated row and must not depend on which arm ran first.
fn bench_record_pair(domain: &mut TelemetryDomain) -> (f64, f64) {
    let mut sketch = QuantileSketch::new(SketchConfig::default_scope());
    let mut i = 0u64;
    // Warm both arms until their sketch shapes are settled.
    let warm_until = Instant::now() + std::time::Duration::from_millis(20);
    while Instant::now() < warm_until {
        i += 1;
        sketch.record(black_box(value(i)));
        domain.record_value(black_box(value(i)));
    }
    let mut best_single = f64::MAX;
    let mut best_domain = f64::MAX;
    for _ in 0..16 {
        let t = Instant::now();
        for _ in 0..BATCH {
            i += 1;
            sketch.record(black_box(value(i)));
        }
        best_single = best_single.min(t.elapsed().as_nanos() as f64 / BATCH as f64);
        let t = Instant::now();
        for _ in 0..BATCH {
            i += 1;
            domain.record_value(black_box(value(i)));
        }
        best_domain = best_domain.min(t.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    black_box(sketch);
    println!(
        "{:<44} {best_single:>8.1} ns/record",
        "sketch/single_thread"
    );
    println!("{:<44} {best_domain:>8.1} ns/record", "domain/owner_thread");
    (best_single, best_domain)
}

/// One full scrape: advance the epoch, publish every live domain,
/// collect the epoch-consistent merged snapshot.
fn bench_collect(coord: &mut SnapshotCoordinator, domains: &mut [TelemetryDomain]) -> f64 {
    let scrape = |coord: &mut SnapshotCoordinator, domains: &mut [TelemetryDomain]| {
        let epoch = coord.advance();
        for d in domains.iter_mut() {
            d.publish();
        }
        black_box(coord.collect(epoch));
    };
    for _ in 0..64 {
        scrape(coord, domains);
    }
    const SCRAPES: u32 = 512;
    let mut best = f64::MAX;
    for _ in 0..8 {
        let t = Instant::now();
        for _ in 0..SCRAPES {
            scrape(coord, domains);
        }
        best = best.min(t.elapsed().as_nanos() as f64 / SCRAPES as f64);
    }
    println!(
        "{:<44} {best:>8.0} ns/scrape ({} domains)",
        "coordinator/advance+publish+collect",
        domains.len()
    );
    best
}

fn main() {
    println!("telemetry-domain overhead (owner-thread record vs bare sketch)");
    println!("{}", "-".repeat(100));

    let mut coord = SnapshotCoordinator::new(SketchConfig::default_scope());
    let mut domains: Vec<TelemetryDomain> =
        (0..4).map(|k| coord.domain(&format!("d{k}"))).collect();
    // Realistic shard content so publish/collect clone real state.
    for (k, d) in domains.iter_mut().enumerate() {
        for i in 0..4096u64 {
            d.record_value(value(i * 4 + k as u64));
        }
        d.add_stat("conn", "frames_in", 1 + k as u64);
        d.add_stat("conn", "frames_out", 1 + k as u64);
    }
    let (single, domain) = bench_record_pair(&mut domains[0]);
    let collect = bench_collect(&mut coord, &mut domains);

    let ratio = domain / single;
    println!("{:<44} {ratio:>8.3}", "domain_vs_single_ratio");

    // Raw ns rows track the machine (loose tol); the ratio row is the
    // hardware-independent gate: thread-owned recording must stay
    // within 1.15x of the bare sketch. Authoritative tolerances live
    // in the committed baseline.
    let mut report = BenchReport::new("domain");
    report
        .push_tol("record_single_ns", single, Better::Lower, 1.5)
        .push_tol("record_domain_ns", domain, Better::Lower, 1.5)
        .push_tol("domain_vs_single_ratio", ratio, Better::Lower, 0.15)
        .push_tol("snapshot_collect_ns", collect, Better::Lower, 1.5);
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
