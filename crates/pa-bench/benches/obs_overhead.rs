//! Telemetry overhead: the pa-scope plane against the bare hot path.
//!
//! The scale-ready observability plane records one sketch sample plus
//! one reservoir offer per completed operation. The claim: that costs
//! one logarithm and a couple of array writes — the hot path with
//! telemetry on stays within a few percent of telemetry off, and the
//! ratio (hardware-independent) is the row CI gates tightly.
//!
//! Arms, all on the paper 4-layer stack, echo round trips (2 sends +
//! 2 delivers per trip), measured like `micro.rs`'s hot-ops: only the
//! critical-path spans are timed, the deferred drain stays untimed.
//!
//! - `hot_op_off_ns` — no telemetry at all (the shipping default);
//! - `hot_op_scope_ns` — a [`pa_obs::ScopePlane`] records every round
//!   trip's latency (client side) with an exemplar offer;
//! - `scope_record_ns` — the plane's record path alone, microbenched;
//! - `scope_on_vs_off_ratio` — the gated row: on/off, ~1.0 expected.

use pa_bench::{BenchReport, Better};
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_obs::{LatencyHisto, ScopeConfig, ScopePlane, XrayTag};
use pa_stack::StackSpec;
use pa_wire::EndpointAddr;
use std::hint::black_box;
use std::time::Instant;

fn echo_pair() -> (Connection, Connection) {
    let mk = |local: u64, peer: u64| {
        Connection::new(
            StackSpec::paper().build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(local, 1),
                EndpointAddr::from_parts(peer, 1),
                local,
            ),
        )
        .unwrap()
    };
    (mk(30, 31), mk(31, 30))
}

fn echo_round_trip(a: &mut Connection, b: &mut Connection) {
    a.send(black_box(&[7u8; 8]));
    while let Some(f) = a.poll_transmit() {
        b.deliver_frame(f);
    }
    while let Some(m) = b.poll_delivery() {
        b.send(m.as_slice());
        b.recycle(m);
    }
    while let Some(f) = b.poll_transmit() {
        a.deliver_frame(f);
    }
    while let Some(m) = a.poll_delivery() {
        a.recycle(m);
    }
    a.process_pending();
    b.process_pending();
}

/// Hot-op cost per operation (4 per round trip), deferred drain
/// untimed, batch-trimmed like `micro.rs`. When `plane` is set, the
/// timed region additionally records the trip's latency into it — the
/// telemetry cost rides exactly where it would in production.
fn bench_hot_ops(name: &str, mut plane: Option<(&mut ScopePlane, pa_obs::ScopeKey)>) -> f64 {
    let (mut a, mut b) = echo_pair();
    for _ in 0..256 {
        echo_round_trip(&mut a, &mut b);
    }
    // Shared calibration helper — the same one that de-biases the
    // engine's cycle meters.
    let span_overhead = pa_obs::timer::span_overhead();
    const BATCH: u64 = 256;
    let mut histo = LatencyHisto::new();
    let mut batches = Vec::with_capacity(40);
    let mut trip = 0u64;
    for _ in 0..40 {
        let mut hot = std::time::Duration::ZERO;
        for _ in 0..BATCH {
            let t = Instant::now();
            a.send(black_box(&[7u8; 8]));
            let f = a.poll_transmit().expect("request frame");
            b.deliver_frame(f);
            let m = b.poll_delivery().expect("request delivered");
            b.send(black_box(m.as_slice()));
            let fr = b.poll_transmit().expect("echo frame");
            a.deliver_frame(fr);
            if let Some((plane, key)) = plane.as_mut() {
                // One sample per completed trip: latency value (the
                // running trip count keeps values spread across
                // buckets), virtual timestamp, journey id, tag.
                trip += 1;
                plane.record(*key, 100_000 + trip % 4096, trip, trip, XrayTag::none());
            }
            hot += t.elapsed();
            b.recycle(m);
            if let Some(m) = a.poll_delivery() {
                a.recycle(m);
            }
            a.process_pending();
            b.process_pending();
        }
        let hot = hot.saturating_sub(span_overhead * BATCH as u32);
        let per_op = hot.as_nanos() as u64 / (BATCH * 4);
        histo.record(per_op);
        batches.push(per_op);
    }
    let s = histo.summary();
    let best = *batches.iter().min().expect("40 batches");
    let kept: Vec<u64> = batches.into_iter().filter(|&v| v <= best * 2).collect();
    let trimmed = kept.iter().sum::<u64>() as f64 / kept.len() as f64;
    println!(
        "{name:<44} {trimmed:>8.0} ns/op   (min {best} / p99 {}; {}/{} batches)",
        s.p99,
        kept.len(),
        s.count
    );
    trimmed
}

/// The plane's record path alone: one key_of logarithm, three keyed
/// bucket increments, one reservoir offer.
fn bench_record_alone(plane: &mut ScopePlane, key: pa_obs::ScopeKey) -> f64 {
    let warm_until = Instant::now() + std::time::Duration::from_millis(20);
    let mut i = 0u64;
    while Instant::now() < warm_until {
        i += 1;
        plane.record(key, 50_000 + i % 8192, i, i, XrayTag::none());
    }
    const BATCH: u64 = 64 * 1024;
    let mut best = f64::MAX;
    for _ in 0..8 {
        let t = Instant::now();
        for _ in 0..BATCH {
            i += 1;
            plane.record(key, 50_000 + i % 8192, i, i, XrayTag::none());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / BATCH as f64);
    }
    println!("{:<44} {best:>8.1} ns/op", "scope_plane/record");
    best
}

fn main() {
    println!("telemetry overhead (ns per hot operation; drain untimed)");
    println!("{}", "-".repeat(100));
    let off = bench_hot_ops("hot_ops/telemetry_off", None);
    let mut plane = ScopePlane::new(ScopeConfig::default());
    let key = plane.register("bench", "bench/conn0");
    let on = bench_hot_ops("hot_ops/scope_plane_on", Some((&mut plane, key)));
    let record = bench_record_alone(&mut plane, key);
    println!(
        "scope plane after run: {} records, {} bytes (cap {})",
        plane.records(),
        plane.mem_bytes(),
        plane.config().byte_cap
    );

    // Raw ns rows track the machine and carry loose tolerances; the
    // on/off ratio is hardware-independent and gates tightly. The
    // authoritative tolerances live in the committed baseline file.
    let mut report = BenchReport::new("obs_overhead");
    report
        .push_tol("hot_op_off_ns", off, Better::Lower, 1.5)
        .push_tol("hot_op_scope_ns", on, Better::Lower, 1.5)
        .push_tol("scope_record_ns", record, Better::Lower, 1.5)
        .push_tol("scope_on_vs_off_ratio", on / off, Better::Lower, 0.15);
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
