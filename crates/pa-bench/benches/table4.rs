//! Regenerates Table 4 (basic performance) and runs the regression
//! gate: emits `BENCH_table4.json` and compares it against the
//! committed baseline (the EXPERIMENTS.md E1 anchors).
fn main() {
    pa_bench::banner("Table 4 — basic performance of the stack with the PA");
    let t = pa_sim::experiments::table4::run();
    println!("{}", t.render());

    let mut report = pa_bench::BenchReport::new("table4");
    report
        .push("one_way_us", t.one_way_ns / 1e3, pa_bench::Better::Lower)
        .push("msgs_per_sec", t.msgs_per_sec, pa_bench::Better::Higher)
        .push(
            "roundtrips_per_sec",
            t.roundtrips_per_sec,
            pa_bench::Better::Higher,
        )
        .push(
            "bandwidth_mb_per_sec",
            t.bandwidth_bytes_per_sec / 1e6,
            pa_bench::Better::Higher,
        );
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
