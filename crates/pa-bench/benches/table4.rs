//! Regenerates Table 4 (basic performance).
fn main() {
    pa_bench::banner("Table 4 — basic performance of the stack with the PA");
    let t = pa_sim::experiments::table4::run();
    println!("{}", t.render());
}
