//! Regenerates the §2 header-overhead accounting.
fn main() {
    pa_bench::banner("§2 — header overhead: packed vs traditional, cookie vs ident");
    let h = pa_sim::experiments::headers::run();
    println!("{}", h.render());
}
