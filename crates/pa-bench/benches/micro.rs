//! Criterion microbenchmarks: real Rust-native costs of the PA
//! mechanisms. These are *this implementation on this machine* — the
//! interesting output is the relative shape (packed vs padded, compiled
//! vs interpreted, fast vs slow path), mirroring the ablation knobs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pa_buf::{ByteOrder, Msg};
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_filter::{CompiledProgram, DigestKind, Frame, Op, ProgramBuilder};
use pa_stack::StackSpec;
use pa_wire::{Class, EndpointAddr, LayoutBuilder, LayoutMode, Preamble};

fn bench_header_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("header_access");
    for mode in [LayoutMode::Packed, LayoutMode::Traditional] {
        let mut b = LayoutBuilder::new();
        b.begin_layer("w");
        let seq = b.add_field(Class::Protocol, "seq", 32, None).unwrap();
        let ty = b.add_field(Class::Protocol, "mtype", 2, None).unwrap();
        let ack = b.add_field(Class::Gossip, "ack", 32, None).unwrap();
        let layout = b.compile(mode).unwrap();
        let mut proto = vec![0u8; layout.class_len(Class::Protocol)];
        let mut gossip = vec![0u8; layout.class_len(Class::Gossip)];
        g.bench_function(format!("{mode:?}_write_read_3_fields"), |bench| {
            bench.iter(|| {
                layout.write_field(seq, &mut proto, ByteOrder::Big, black_box(12345));
                layout.write_field(ty, &mut proto, ByteOrder::Big, black_box(1));
                layout.write_field(ack, &mut gossip, ByteOrder::Big, black_box(99));
                let a = layout.read_field(seq, &proto, ByteOrder::Big);
                let b = layout.read_field(ty, &proto, ByteOrder::Big);
                let c = layout.read_field(ack, &gossip, ByteOrder::Big);
                black_box(a + b + c)
            })
        });
    }
    g.finish();
}

fn bench_layout_compile(c: &mut Criterion) {
    c.bench_function("layout_compile_paper_stack", |bench| {
        bench.iter(|| {
            let mut b = LayoutBuilder::new();
            for i in 0..4 {
                b.begin_layer(&format!("l{i}"));
                b.add_field(Class::Protocol, "a", 32, None).unwrap();
                b.add_field(Class::Protocol, "b", 2, None).unwrap();
                b.add_field(Class::Message, "c", 16, None).unwrap();
                b.add_field(Class::Gossip, "d", 32, None).unwrap();
            }
            black_box(b.compile(LayoutMode::Packed).unwrap())
        })
    });
}

fn filter_fixture() -> (pa_wire::CompiledLayout, pa_filter::Program) {
    let mut b = LayoutBuilder::new();
    b.begin_layer("ck");
    let len_f = b.add_field(Class::Message, "len", 16, None).unwrap();
    let ck_f = b.add_field(Class::Message, "ck", 16, None).unwrap();
    let layout = b.compile(LayoutMode::Packed).unwrap();
    let mut pb = ProgramBuilder::new();
    pb.extend(vec![
        Op::PushField(len_f),
        Op::PushSize,
        Op::Ne,
        Op::Abort(1),
        Op::PushField(ck_f),
        Op::Digest(DigestKind::InternetChecksum),
        Op::Ne,
        Op::Abort(2),
        Op::Return(0),
    ]);
    (layout, pb.build().unwrap())
}

fn bench_filter_backends(c: &mut Criterion) {
    let (layout, program) = filter_fixture();
    let compiled = CompiledProgram::compile(&program, &layout);
    let make_msg = || {
        let mut m = Msg::from_payload(&[7u8; 64]);
        m.push_front_zeroed(layout.class_len(Class::Message));
        m
    };
    let mut g = c.benchmark_group("packet_filter");
    g.bench_function("interpreted", |bench| {
        let mut m = make_msg();
        bench.iter(|| {
            let mut f = Frame::new(&mut m, &layout, ByteOrder::Big);
            black_box(pa_filter::run(&program, &mut f))
        })
    });
    g.bench_function("pre_resolved", |bench| {
        let mut m = make_msg();
        bench.iter(|| black_box(compiled.run(program.slots(), &mut m, ByteOrder::Big)))
    });
    g.finish();
}

fn paper_conn(config: PaConfig, seed: u64) -> Connection {
    Connection::new(
        StackSpec::paper().build(),
        config,
        ConnectionParams::new(
            EndpointAddr::from_parts(seed, 1),
            EndpointAddr::from_parts(seed + 1, 1),
            seed,
        ),
    )
    .unwrap()
}

fn bench_send_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("send_path");
    g.bench_function("fast_path", |bench| {
        let mut conn = paper_conn(PaConfig::paper_default(), 1);
        bench.iter(|| {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
            conn.process_pending();
        })
    });
    g.bench_function("layered_slow_path", |bench| {
        let mut conn = paper_conn(
            PaConfig { predict: false, lazy_post: false, ..PaConfig::paper_default() },
            3,
        );
        bench.iter(|| {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
        })
    });
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    c.bench_function("engine_roundtrip_fast", |bench| {
        let mk = |local: u64, peer: u64| {
            Connection::new(
                StackSpec::paper().build(),
                PaConfig::paper_default(),
                ConnectionParams::new(
                    EndpointAddr::from_parts(local, 1),
                    EndpointAddr::from_parts(peer, 1),
                    local,
                ),
            )
            .unwrap()
        };
        let mut a = mk(10, 11);
        let mut b = mk(11, 10);
        bench.iter(|| {
            a.send(&[1u8; 8]);
            while let Some(f) = a.poll_transmit() {
                b.deliver_frame(f);
            }
            while b.poll_delivery().is_some() {}
            while let Some(f) = b.poll_transmit() {
                a.deliver_frame(f);
            }
            a.process_pending();
            b.process_pending();
        })
    });
}

fn bench_packing(c: &mut Criterion) {
    let msgs: Vec<Msg> = (0..64).map(|i| Msg::from_payload(&[i as u8; 8])).collect();
    let mut g = c.benchmark_group("packing");
    g.bench_function("pack_64x8B", |bench| {
        bench.iter(|| black_box(pa_core::packing::pack(black_box(&msgs))))
    });
    let packed = pa_core::packing::pack(&msgs);
    g.bench_function("unpack_64x8B", |bench| {
        bench.iter(|| {
            let mut m = packed.clone();
            let info = pa_core::PackInfo::pop_from(&mut m).unwrap();
            black_box(pa_core::packing::unpack(&info, m).unwrap())
        })
    });
    g.finish();
}

fn bench_preamble(c: &mut Criterion) {
    let p = Preamble::common(pa_wire::Cookie::from_raw(0x1234_5678), ByteOrder::Big);
    c.bench_function("preamble_encode_decode", |bench| {
        bench.iter(|| {
            let e = black_box(&p).encode();
            black_box(Preamble::decode(&e).unwrap())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_header_access,
        bench_layout_compile,
        bench_filter_backends,
        bench_send_paths,
        bench_roundtrip,
        bench_packing,
        bench_preamble
);
criterion_main!(micro);
