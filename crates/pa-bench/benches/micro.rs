//! Microbenchmarks: real Rust-native costs of the PA mechanisms. These
//! are *this implementation on this machine* — the interesting output
//! is the relative shape (packed vs padded, compiled vs interpreted,
//! fast vs slow path), mirroring the ablation knobs.
//!
//! Hand-rolled harness (`harness = false`, no external deps): each case
//! is warmed up, then timed over enough iterations to fill ~200 ms, and
//! reported as ns/op with the pa-obs log2 histogram supplying
//! p50/p90/p99 across timing batches.

use pa_bench::{BenchReport, Better};
use pa_buf::{ByteOrder, Msg};
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_filter::{CompiledProgram, DigestKind, Frame, FusedProgram, Op, ProgramBuilder};
use pa_obs::LatencyHisto;
use pa_stack::StackSpec;
use pa_wire::{Class, EndpointAddr, LayoutBuilder, LayoutMode, Preamble};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` in batches, prints `name: <ns/op> (p50/p99 across
/// batches)`, and returns the mean ns/op for report emission.
fn bench(name: &str, mut f: impl FnMut()) -> f64 {
    // Warm-up: ~20 ms.
    let warm_until = Instant::now() + std::time::Duration::from_millis(20);
    while Instant::now() < warm_until {
        f();
    }
    // Calibrate a batch to ~1 ms.
    let t0 = Instant::now();
    let mut probe_iters = 0u64;
    while t0.elapsed() < std::time::Duration::from_millis(5) {
        f();
        probe_iters += 1;
    }
    let per = (t0.elapsed().as_nanos() as u64 / probe_iters.max(1)).max(1);
    let batch = (1_000_000 / per).clamp(1, 1_000_000);
    // Measure ~40 batches.
    let mut histo = LatencyHisto::new();
    for _ in 0..40 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        histo.record(t.elapsed().as_nanos() as u64 / batch);
    }
    let s = histo.summary();
    println!(
        "{name:<44} {:>8.0} ns/op   (p50 {} / p99 {} over {} batches of {})",
        s.mean, s.p50, s.p99, s.count, batch
    );
    s.mean
}

fn bench_header_access() {
    for mode in [LayoutMode::Packed, LayoutMode::Traditional] {
        let mut b = LayoutBuilder::new();
        b.begin_layer("w");
        let seq = b.add_field(Class::Protocol, "seq", 32, None).unwrap();
        let ty = b.add_field(Class::Protocol, "mtype", 2, None).unwrap();
        let ack = b.add_field(Class::Gossip, "ack", 32, None).unwrap();
        let layout = b.compile(mode).unwrap();
        let mut proto = vec![0u8; layout.class_len(Class::Protocol)];
        let mut gossip = vec![0u8; layout.class_len(Class::Gossip)];
        bench(
            &format!("header_access/{mode:?}_write_read_3_fields"),
            || {
                layout.write_field(seq, &mut proto, ByteOrder::Big, black_box(12345));
                layout.write_field(ty, &mut proto, ByteOrder::Big, black_box(1));
                layout.write_field(ack, &mut gossip, ByteOrder::Big, black_box(99));
                let a = layout.read_field(seq, &proto, ByteOrder::Big);
                let b = layout.read_field(ty, &proto, ByteOrder::Big);
                let c = layout.read_field(ack, &gossip, ByteOrder::Big);
                black_box(a + b + c);
            },
        );
    }
}

fn bench_layout_compile() {
    bench("layout_compile_paper_stack", || {
        let mut b = LayoutBuilder::new();
        for i in 0..4 {
            b.begin_layer(&format!("l{i}"));
            b.add_field(Class::Protocol, "a", 32, None).unwrap();
            b.add_field(Class::Protocol, "b", 2, None).unwrap();
            b.add_field(Class::Message, "c", 16, None).unwrap();
            b.add_field(Class::Gossip, "d", 32, None).unwrap();
        }
        black_box(b.compile(LayoutMode::Packed).unwrap());
    });
}

fn filter_fixture() -> (pa_wire::CompiledLayout, pa_filter::Program) {
    let mut b = LayoutBuilder::new();
    b.begin_layer("ck");
    let len_f = b.add_field(Class::Message, "len", 16, None).unwrap();
    let ck_f = b.add_field(Class::Message, "ck", 16, None).unwrap();
    let layout = b.compile(LayoutMode::Packed).unwrap();
    let mut pb = ProgramBuilder::new();
    pb.extend(vec![
        Op::PushField(len_f),
        Op::PushSize,
        Op::Ne,
        Op::Abort(1),
        Op::PushField(ck_f),
        Op::Digest(DigestKind::InternetChecksum),
        Op::Ne,
        Op::Abort(2),
        Op::Return(0),
    ]);
    (layout, pb.build().unwrap())
}

fn bench_filter_backends() -> f64 {
    let (layout, program) = filter_fixture();
    let compiled = CompiledProgram::compile(&program, &layout);
    let fused = FusedProgram::fuse(&program, &layout, ByteOrder::Big);
    let make_msg = || {
        let mut m = Msg::from_payload(&[7u8; 64]);
        m.push_front_zeroed(layout.class_len(Class::Message));
        m
    };
    {
        let mut m = make_msg();
        bench("packet_filter/interpreted", || {
            let mut f = Frame::new(&mut m, &layout, ByteOrder::Big);
            black_box(pa_filter::run(&program, &mut f));
        });
    }
    {
        let mut m = make_msg();
        bench("packet_filter/pre_resolved", || {
            black_box(compiled.run(program.slots(), &mut m, ByteOrder::Big));
        });
    }
    {
        let mut m = make_msg();
        bench("packet_filter/fused", || {
            black_box(fused.run(program.slots(), &mut m));
        })
    }
}

fn paper_conn(config: PaConfig, seed: u64) -> Connection {
    Connection::new(
        StackSpec::paper().build(),
        config,
        ConnectionParams::new(
            EndpointAddr::from_parts(seed, 1),
            EndpointAddr::from_parts(seed + 1, 1),
            seed,
        ),
    )
    .unwrap()
}

fn bench_send_paths() {
    {
        let mut conn = paper_conn(PaConfig::paper_default(), 1);
        bench("send_path/fast_path", || {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
            conn.process_pending();
        });
    }
    {
        let mut conn = paper_conn(
            PaConfig {
                predict: false,
                lazy_post: false,
                ..PaConfig::paper_default()
            },
            3,
        );
        bench("send_path/layered_slow_path", || {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
        });
    }
}

/// A warm peer pair for hot-path measurements.
fn echo_pair(config: PaConfig) -> (Connection, Connection) {
    let mk = |local: u64, peer: u64| {
        Connection::new(
            StackSpec::paper().build(),
            config,
            ConnectionParams::new(
                EndpointAddr::from_parts(local, 1),
                EndpointAddr::from_parts(peer, 1),
                local,
            ),
        )
        .unwrap()
    };
    (mk(20, 21), mk(21, 20))
}

/// One request/echo round trip — two fast sends + two fast deliveries
/// with host-side recycling, then the deferred post drain. This is the
/// native wall-clock shape of the PA's steady state: window credit
/// piggybacks on the echo, so no pure acks and no retransmissions.
fn echo_round_trip(a: &mut Connection, b: &mut Connection) {
    a.send(black_box(&[7u8; 8]));
    while let Some(f) = a.poll_transmit() {
        b.deliver_frame(f);
    }
    while let Some(m) = b.poll_delivery() {
        b.send(m.as_slice());
        b.recycle(m);
    }
    while let Some(f) = b.poll_transmit() {
        a.deliver_frame(f);
    }
    while let Some(m) = a.poll_delivery() {
        a.recycle(m);
    }
    a.process_pending();
    b.process_pending();
}

/// The headline rows of this PR: the native fast path with pooled
/// recycling + fused filters, against the pre-recycling allocating arm
/// (`pooling: false` — fresh `Msg` per send, cloned frame images, the
/// code path as it was before explicit recycling landed). Returns
/// `(pooled_fused, pooled_interpreted, allocating)` mean ns per round
/// trip (4 hot operations each), whole-RTT including the deferred
/// drain.
fn bench_hot_path() -> (f64, f64, f64) {
    let pooled_fused = {
        let (mut a, mut b) = echo_pair(PaConfig::accelerated());
        bench("hot_path/echo_rtt_pooled_fused", || {
            echo_round_trip(&mut a, &mut b);
        })
    };
    let pooled_interp = {
        let (mut a, mut b) = echo_pair(PaConfig::paper_default());
        bench("hot_path/echo_rtt_pooled_interpreted", || {
            echo_round_trip(&mut a, &mut b);
        })
    };
    let allocating = {
        let cfg = PaConfig {
            pooling: false,
            ..PaConfig::paper_default()
        };
        let (mut a, mut b) = echo_pair(cfg);
        bench("hot_path/echo_rtt_prepr_allocating", || {
            echo_round_trip(&mut a, &mut b);
        })
    };
    (pooled_fused, pooled_interp, allocating)
}

/// Hot operations only: times the four critical-path calls (two sends,
/// two delivers) and leaves recycling and `process_pending` untimed —
/// the deferred work is exactly what the PA masks (§3.1), so it does
/// not belong in the critical-path number. Mirrors the measurement
/// windows of `tests/hotpath_alloc.rs`. Two `Instant` spans per round
/// trip (~50 ns overhead, identical across arms).
fn bench_hot_ops(name: &str, config: PaConfig) -> f64 {
    let (mut a, mut b) = echo_pair(config);
    for _ in 0..256 {
        echo_round_trip(&mut a, &mut b);
    }
    // Timer calibration: an empty span still counts roughly one clock
    // read. Both arms pay it identically, which *compresses* their
    // ratio, so it is measured here and subtracted from every batch —
    // the comparison should be code vs code, not clock vs clock. The
    // same helper de-biases the engine's cycle meters.
    let span_overhead = pa_obs::timer::span_overhead();
    const BATCH: u64 = 256;
    let mut histo = LatencyHisto::new();
    let mut batches = Vec::with_capacity(40);
    for _ in 0..40 {
        let mut hot = std::time::Duration::ZERO;
        for _ in 0..BATCH {
            // Request: hot send + hot deliver.
            let t = Instant::now();
            a.send(black_box(&[7u8; 8]));
            let f = a.poll_transmit().expect("request frame");
            b.deliver_frame(f);
            hot += t.elapsed();
            let m = b.poll_delivery().expect("request delivered");
            // Echo: hot send + hot deliver.
            let t = Instant::now();
            b.send(black_box(m.as_slice()));
            let f = b.poll_transmit().expect("echo frame");
            a.deliver_frame(f);
            hot += t.elapsed();
            b.recycle(m);
            if let Some(m) = a.poll_delivery() {
                a.recycle(m);
            }
            // Deferred drain, off the measured path.
            a.process_pending();
            b.process_pending();
        }
        // Per hot *operation*: 4 per round trip, 2 timed spans per
        // round trip whose clock cost is subtracted.
        let hot = hot.saturating_sub(span_overhead * (2 * BATCH as u32));
        let per_op = hot.as_nanos() as u64 / (BATCH * 4);
        histo.record(per_op);
        batches.push(per_op);
    }
    let s = histo.summary();
    // Trimmed mean: a shared box occasionally preempts a whole batch
    // (orders-of-magnitude spikes); batches beyond 2x the fastest are
    // scheduler noise, not the code, and are discarded. Genuine
    // allocator variance (slow-path mallocs at 1.1-1.5x) stays in —
    // amortized allocation cost is exactly what the allocating arm is
    // here to exhibit.
    let best = *batches.iter().min().expect("40 batches");
    let kept: Vec<u64> = batches.into_iter().filter(|&b| b <= best * 2).collect();
    let trimmed = kept.iter().sum::<u64>() as f64 / kept.len() as f64;
    println!(
        "{name:<44} {trimmed:>8.0} ns/op   (min {best} / p99 {}; {}/{} batches of {})",
        s.p99,
        kept.len(),
        s.count,
        BATCH * 4
    );
    trimmed
}

/// The acceptance-criterion rows: per-hot-operation cost, pooled+fused
/// against the pre-PR allocating+interpreted arm. Returns
/// `(pooled_fused, pooled_interpreted, allocating)` ns per hot op.
fn bench_hot_ops_all() -> (f64, f64, f64) {
    let pooled_fused = bench_hot_ops("hot_ops/pooled_fused", PaConfig::accelerated());
    let pooled_interp = bench_hot_ops("hot_ops/pooled_interpreted", PaConfig::paper_default());
    let allocating = bench_hot_ops(
        "hot_ops/prepr_allocating",
        PaConfig {
            pooling: false,
            ..PaConfig::paper_default()
        },
    );
    (pooled_fused, pooled_interp, allocating)
}

fn bench_roundtrip() {
    let mk = |local: u64, peer: u64| {
        Connection::new(
            StackSpec::paper().build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(local, 1),
                EndpointAddr::from_parts(peer, 1),
                local,
            ),
        )
        .unwrap()
    };
    let mut a = mk(10, 11);
    let mut b = mk(11, 10);
    bench("engine_roundtrip_fast", || {
        a.send(&[1u8; 8]);
        while let Some(f) = a.poll_transmit() {
            b.deliver_frame(f);
        }
        while b.poll_delivery().is_some() {}
        while let Some(f) = b.poll_transmit() {
            a.deliver_frame(f);
        }
        a.process_pending();
        b.process_pending();
    });
}

fn bench_packing() {
    let msgs: Vec<Msg> = (0..64).map(|i| Msg::from_payload(&[i as u8; 8])).collect();
    bench("packing/pack_64x8B", || {
        black_box(pa_core::packing::pack(black_box(&msgs)));
    });
    let packed = pa_core::packing::pack(&msgs);
    bench("packing/unpack_64x8B", || {
        let mut m = packed.clone();
        let info = pa_core::PackInfo::pop_from(&mut m).unwrap();
        black_box(pa_core::packing::unpack(&info, m).unwrap());
    });
}

fn bench_preamble() {
    let p = Preamble::common(pa_wire::Cookie::from_raw(0x1234_5678), ByteOrder::Big);
    bench("preamble_encode_decode", || {
        let e = black_box(&p).encode();
        black_box(Preamble::decode(&e).unwrap());
    });
}

fn main() {
    println!("microbenchmarks (ns/op; hand-rolled harness, log2-bucket percentiles)");
    println!("{}", "-".repeat(100));
    bench_header_access();
    bench_layout_compile();
    let filter_fused_ns = bench_filter_backends();
    bench_send_paths();
    let _rtt = bench_hot_path();
    let (pooled_fused, pooled_interp, allocating) = bench_hot_ops_all();
    bench_roundtrip();
    bench_packing();
    bench_preamble();

    // Report: per-hot-operation cost (a round trip is 2 sends + 2
    // delivers; deferred drain untimed) plus the headline ratio — the
    // pooled+fused fast path against the pre-recycling allocating arm.
    // The ratio is the robust metric: it cancels machine speed, so the
    // committed baseline survives CI hardware variance better than raw
    // nanoseconds do.
    // Raw ns rows carry a loose per-metric tolerance (they track the
    // machine, not the code); the speedup ratio and the comparison arms
    // gate tightly because ratios are hardware-independent. The
    // tolerances attached here are informational — the ones the CI
    // comparator honors live in the committed baseline file.
    let mut report = BenchReport::new("micro");
    report
        .push_tol("hot_op_pooled_fused_ns", pooled_fused, Better::Lower, 1.5)
        .push_tol("hot_op_pooled_interp_ns", pooled_interp, Better::Lower, 1.5)
        .push_tol("hot_op_allocating_ns", allocating, Better::Lower, 1.5)
        .push_tol(
            "pooled_vs_allocating_speedup",
            allocating / pooled_fused,
            Better::Higher,
            0.25,
        )
        .push_tol("filter_fused_ns", filter_fused_ns, Better::Lower, 1.5);
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
