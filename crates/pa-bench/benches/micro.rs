//! Microbenchmarks: real Rust-native costs of the PA mechanisms. These
//! are *this implementation on this machine* — the interesting output
//! is the relative shape (packed vs padded, compiled vs interpreted,
//! fast vs slow path), mirroring the ablation knobs.
//!
//! Hand-rolled harness (`harness = false`, no external deps): each case
//! is warmed up, then timed over enough iterations to fill ~200 ms, and
//! reported as ns/op with the pa-obs log2 histogram supplying
//! p50/p90/p99 across timing batches.

use pa_buf::{ByteOrder, Msg};
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_filter::{CompiledProgram, DigestKind, Frame, Op, ProgramBuilder};
use pa_obs::LatencyHisto;
use pa_stack::StackSpec;
use pa_wire::{Class, EndpointAddr, LayoutBuilder, LayoutMode, Preamble};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` in batches and prints `name: <ns/op> (p50/p99 across batches)`.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up: ~20 ms.
    let warm_until = Instant::now() + std::time::Duration::from_millis(20);
    while Instant::now() < warm_until {
        f();
    }
    // Calibrate a batch to ~1 ms.
    let t0 = Instant::now();
    let mut probe_iters = 0u64;
    while t0.elapsed() < std::time::Duration::from_millis(5) {
        f();
        probe_iters += 1;
    }
    let per = (t0.elapsed().as_nanos() as u64 / probe_iters.max(1)).max(1);
    let batch = (1_000_000 / per).clamp(1, 1_000_000);
    // Measure ~40 batches.
    let mut histo = LatencyHisto::new();
    for _ in 0..40 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        histo.record(t.elapsed().as_nanos() as u64 / batch);
    }
    let s = histo.summary();
    println!(
        "{name:<44} {:>8.0} ns/op   (p50 {} / p99 {} over {} batches of {})",
        s.mean, s.p50, s.p99, s.count, batch
    );
}

fn bench_header_access() {
    for mode in [LayoutMode::Packed, LayoutMode::Traditional] {
        let mut b = LayoutBuilder::new();
        b.begin_layer("w");
        let seq = b.add_field(Class::Protocol, "seq", 32, None).unwrap();
        let ty = b.add_field(Class::Protocol, "mtype", 2, None).unwrap();
        let ack = b.add_field(Class::Gossip, "ack", 32, None).unwrap();
        let layout = b.compile(mode).unwrap();
        let mut proto = vec![0u8; layout.class_len(Class::Protocol)];
        let mut gossip = vec![0u8; layout.class_len(Class::Gossip)];
        bench(
            &format!("header_access/{mode:?}_write_read_3_fields"),
            || {
                layout.write_field(seq, &mut proto, ByteOrder::Big, black_box(12345));
                layout.write_field(ty, &mut proto, ByteOrder::Big, black_box(1));
                layout.write_field(ack, &mut gossip, ByteOrder::Big, black_box(99));
                let a = layout.read_field(seq, &proto, ByteOrder::Big);
                let b = layout.read_field(ty, &proto, ByteOrder::Big);
                let c = layout.read_field(ack, &gossip, ByteOrder::Big);
                black_box(a + b + c);
            },
        );
    }
}

fn bench_layout_compile() {
    bench("layout_compile_paper_stack", || {
        let mut b = LayoutBuilder::new();
        for i in 0..4 {
            b.begin_layer(&format!("l{i}"));
            b.add_field(Class::Protocol, "a", 32, None).unwrap();
            b.add_field(Class::Protocol, "b", 2, None).unwrap();
            b.add_field(Class::Message, "c", 16, None).unwrap();
            b.add_field(Class::Gossip, "d", 32, None).unwrap();
        }
        black_box(b.compile(LayoutMode::Packed).unwrap());
    });
}

fn filter_fixture() -> (pa_wire::CompiledLayout, pa_filter::Program) {
    let mut b = LayoutBuilder::new();
    b.begin_layer("ck");
    let len_f = b.add_field(Class::Message, "len", 16, None).unwrap();
    let ck_f = b.add_field(Class::Message, "ck", 16, None).unwrap();
    let layout = b.compile(LayoutMode::Packed).unwrap();
    let mut pb = ProgramBuilder::new();
    pb.extend(vec![
        Op::PushField(len_f),
        Op::PushSize,
        Op::Ne,
        Op::Abort(1),
        Op::PushField(ck_f),
        Op::Digest(DigestKind::InternetChecksum),
        Op::Ne,
        Op::Abort(2),
        Op::Return(0),
    ]);
    (layout, pb.build().unwrap())
}

fn bench_filter_backends() {
    let (layout, program) = filter_fixture();
    let compiled = CompiledProgram::compile(&program, &layout);
    let make_msg = || {
        let mut m = Msg::from_payload(&[7u8; 64]);
        m.push_front_zeroed(layout.class_len(Class::Message));
        m
    };
    {
        let mut m = make_msg();
        bench("packet_filter/interpreted", || {
            let mut f = Frame::new(&mut m, &layout, ByteOrder::Big);
            black_box(pa_filter::run(&program, &mut f));
        });
    }
    {
        let mut m = make_msg();
        bench("packet_filter/pre_resolved", || {
            black_box(compiled.run(program.slots(), &mut m, ByteOrder::Big));
        });
    }
}

fn paper_conn(config: PaConfig, seed: u64) -> Connection {
    Connection::new(
        StackSpec::paper().build(),
        config,
        ConnectionParams::new(
            EndpointAddr::from_parts(seed, 1),
            EndpointAddr::from_parts(seed + 1, 1),
            seed,
        ),
    )
    .unwrap()
}

fn bench_send_paths() {
    {
        let mut conn = paper_conn(PaConfig::paper_default(), 1);
        bench("send_path/fast_path", || {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
            conn.process_pending();
        });
    }
    {
        let mut conn = paper_conn(
            PaConfig {
                predict: false,
                lazy_post: false,
                ..PaConfig::paper_default()
            },
            3,
        );
        bench("send_path/layered_slow_path", || {
            conn.send(black_box(&[7u8; 8]));
            while conn.poll_transmit().is_some() {}
        });
    }
}

fn bench_roundtrip() {
    let mk = |local: u64, peer: u64| {
        Connection::new(
            StackSpec::paper().build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(local, 1),
                EndpointAddr::from_parts(peer, 1),
                local,
            ),
        )
        .unwrap()
    };
    let mut a = mk(10, 11);
    let mut b = mk(11, 10);
    bench("engine_roundtrip_fast", || {
        a.send(&[1u8; 8]);
        while let Some(f) = a.poll_transmit() {
            b.deliver_frame(f);
        }
        while b.poll_delivery().is_some() {}
        while let Some(f) = b.poll_transmit() {
            a.deliver_frame(f);
        }
        a.process_pending();
        b.process_pending();
    });
}

fn bench_packing() {
    let msgs: Vec<Msg> = (0..64).map(|i| Msg::from_payload(&[i as u8; 8])).collect();
    bench("packing/pack_64x8B", || {
        black_box(pa_core::packing::pack(black_box(&msgs)));
    });
    let packed = pa_core::packing::pack(&msgs);
    bench("packing/unpack_64x8B", || {
        let mut m = packed.clone();
        let info = pa_core::PackInfo::pop_from(&mut m).unwrap();
        black_box(pa_core::packing::unpack(&info, m).unwrap());
    });
}

fn bench_preamble() {
    let p = Preamble::common(pa_wire::Cookie::from_raw(0x1234_5678), ByteOrder::Big);
    bench("preamble_encode_decode", || {
        let e = black_box(&p).encode();
        black_box(Preamble::decode(&e).unwrap());
    });
}

fn main() {
    println!("microbenchmarks (ns/op; hand-rolled harness, log2-bucket percentiles)");
    println!("{}", "-".repeat(100));
    bench_header_access();
    bench_layout_compile();
    bench_filter_backends();
    bench_send_paths();
    bench_roundtrip();
    bench_packing();
    bench_preamble();
}
