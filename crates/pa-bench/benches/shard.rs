//! Sharded-demux scaling: what a shard front costs per frame, and that
//! the cost stays flat as the shard count grows.
//!
//! The sharded endpoint buys million-connection scale by splitting the
//! cookie table: `shard_of(cookie)` is one SplitMix64 finalizer plus a
//! mask, then the frame takes exactly the same one-probe demux inside
//! its shard that the single endpoint takes. So the per-frame claim is
//! twofold and both halves gate in CI as hardware-independent ratios:
//!
//! - **front overhead** — routing through a 1-shard front must price
//!   within a small constant of the bare [`Endpoint`] (the front adds
//!   one preamble peek and one hash mix, nothing O(conns)),
//! - **flat scaling** — 64 shards must not cost more per frame than 1
//!   shard on the same connection population (the probe is per-shard;
//!   nothing on the fast path is O(shards)).
//!
//! The raw ns rows carry loose tolerances and only track the machine.
//! Workload: an established population sending small cookie-only
//! frames in a *shuffled* sweep (a sequential sweep hands the 1-shard
//! arm prefetcher luck on its connection slab and fakes a scaling gap)
//! through per-shard pools ([`ingest_wire`] in, [`recycle_delivery`]
//! out), drained every 64 frames — the recycle loop at steady state.
//!
//! [`ingest_wire`]: pa_core::ShardedEndpoint::ingest_wire
//! [`recycle_delivery`]: pa_core::ShardedEndpoint::recycle_delivery

use pa_bench::{BenchReport, Better};
use pa_buf::MsgPool;
use pa_core::conn::{Connection, ConnectionParams, DeliverOutcome};
use pa_core::endpoint::{Delivery, Endpoint};
use pa_core::layer::NullLayer;
use pa_core::shard::{ShardDelivery, ShardedEndpoint};
use pa_core::PaConfig;
use pa_wire::EndpointAddr;
use std::hint::black_box;
use std::time::Instant;

const CONNS: usize = 1024;
const DRAIN_EVERY: usize = 64;
const REPS: usize = 24;

fn conn(local: u64, peer: u64, seed: u64) -> Connection {
    Connection::new(
        vec![Box::new(NullLayer)],
        PaConfig::paper_default(),
        ConnectionParams::new(
            EndpointAddr::from_parts(local, 1),
            EndpointAddr::from_parts(peer, 1),
            seed,
        ),
    )
    .expect("single-layer stack builds")
}

/// Builds an established client fleet: returns the clients' first
/// (ident-carrying) frames and one steady cookie-only frame each.
fn client_frames() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut idents = Vec::with_capacity(CONNS);
    let mut steady = Vec::with_capacity(CONNS);
    for i in 0..CONNS as u64 {
        let mut c = conn(100 + i, 1, 2 * i + 1);
        c.send(b"establish");
        idents.push(c.poll_transmit().expect("first frame").to_wire());
        c.process_pending();
        c.send(b"steady-state frame payload bytes");
        steady.push(c.poll_transmit().expect("steady frame").to_wire());
        c.process_pending();
    }
    (idents, steady)
}

fn server_conns() -> impl Iterator<Item = Connection> {
    (0..CONNS as u64).map(|i| conn(1, 100 + i, 2 * i + 2))
}

/// Steady-state per-frame cost through the bare endpoint (no front):
/// pool take, demux, drain, recycle — the same loop shape the sharded
/// arms run, minus the shard front.
fn bench_endpoint(idents: &[Vec<u8>], steady: &[Vec<u8>]) -> f64 {
    let mut ep = Endpoint::new();
    let mut pool = MsgPool::with_defaults();
    for c in server_conns() {
        ep.add_connection(c);
    }
    for f in idents {
        let out = ep.from_network(pool.take_with(f));
        assert!(!matches!(out, DeliverOutcome::Dropped(_)), "{out:?}");
    }
    let mut scratch: Vec<Delivery> = Vec::with_capacity(DRAIN_EVERY);
    let mut run = |timed: bool| -> f64 {
        let t = Instant::now();
        for (n, f) in steady.iter().enumerate() {
            let out = ep.from_network(pool.take_with(f));
            debug_assert!(!matches!(out, DeliverOutcome::Dropped(_)));
            if (n + 1) % DRAIN_EVERY == 0 {
                while ep.poll_delivery_burst(DRAIN_EVERY, &mut scratch) > 0 {
                    for d in scratch.drain(..) {
                        pool.put(black_box(d).msg);
                    }
                }
            }
        }
        if timed {
            t.elapsed().as_nanos() as f64 / steady.len() as f64
        } else {
            0.0
        }
    };
    run(false);
    let mut best = f64::MAX;
    for _ in 0..REPS {
        best = best.min(run(true));
    }
    best
}

/// The same loop through a sharded front with `shards` shards.
fn bench_sharded(shards: usize, idents: &[Vec<u8>], steady: &[Vec<u8>]) -> f64 {
    let mut ep = ShardedEndpoint::new(shards);
    for c in server_conns() {
        ep.add_connection(c);
    }
    for f in idents {
        let out = ep.ingest_wire(f);
        assert!(!matches!(out, DeliverOutcome::Dropped(_)), "{out:?}");
    }
    let mut scratch: Vec<ShardDelivery> = Vec::with_capacity(DRAIN_EVERY);
    let mut run = |timed: bool| -> f64 {
        let t = Instant::now();
        for (n, f) in steady.iter().enumerate() {
            let out = ep.ingest_wire(f);
            debug_assert!(!matches!(out, DeliverOutcome::Dropped(_)));
            if (n + 1) % DRAIN_EVERY == 0 {
                ep.drain_deliveries(&mut scratch);
                for d in scratch.drain(..) {
                    ep.recycle_delivery(black_box(d));
                }
            }
        }
        if timed {
            t.elapsed().as_nanos() as f64 / steady.len() as f64
        } else {
            0.0
        }
    };
    run(false);
    let mut best = f64::MAX;
    for _ in 0..REPS {
        best = best.min(run(true));
    }
    assert!(ep.demux_balanced(), "bench broke the conservation law");
    best
}

fn main() {
    println!("sharded demux scaling ({CONNS} connections, steady cookie frames)");
    println!("{}", "-".repeat(100));

    let (idents, mut steady) = client_frames();
    // Fixed pseudo-random sweep order: every arm pays the same
    // cache-cold connection access, none gets sequential-slab luck.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in (1..steady.len()).rev() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        steady.swap(i, (x % (i as u64 + 1)) as usize);
    }
    let bare = bench_endpoint(&idents, &steady);
    println!("{:<44} {bare:>8.1} ns/frame", "endpoint/bare");
    let mut by_shards = Vec::new();
    for shards in [1usize, 8, 64] {
        let ns = bench_sharded(shards, &idents, &steady);
        println!("{:<44} {ns:>8.1} ns/frame", format!("sharded/{shards}"));
        by_shards.push(ns);
    }

    let front_ratio = by_shards[0] / bare;
    let scaling_ratio = by_shards[2] / by_shards[0];
    println!(
        "{:<44} {front_ratio:>8.3}",
        "front_overhead_ratio (1 shard / bare)"
    );
    println!(
        "{:<44} {scaling_ratio:>8.3}",
        "shard_scaling_ratio (64 / 1 shards)"
    );

    // Raw ns rows track the machine (loose tol); the two ratio rows
    // are the hardware-independent gates: the front must stay within a
    // small constant of the bare endpoint, and 64 shards must cost no
    // more per frame than 1. Authoritative tolerances live in the
    // committed baseline.
    let mut report = BenchReport::new("shard");
    report
        .push_tol("demux_bare_ns", bare, Better::Lower, 1.5)
        .push_tol("demux_shard1_ns", by_shards[0], Better::Lower, 1.5)
        .push_tol("demux_shard8_ns", by_shards[1], Better::Lower, 1.5)
        .push_tol("demux_shard64_ns", by_shards[2], Better::Lower, 1.5)
        .push_tol("front_overhead_ratio", front_ratio, Better::Lower, 0.35)
        .push_tol("shard_scaling_ratio", scaling_ratio, Better::Lower, 0.25);
    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
