//! The masking ledger, benchmarked: how much protocol work the PA
//! keeps off the critical path, and whether the leak detector notices
//! when it stops doing so.
//!
//! Every row here is computed in *virtual* time (the pa-sim cost
//! model), so the numbers are deterministic across machines and the
//! tolerances can be tight — this is the hardware-independent masking
//! gate the CI bench-smoke runs.
//!
//! Arms:
//! - **fastpath** — the paper's standard configuration, closed-loop
//!   round trips: pre phases never run, every post phase is deferred.
//!   The masked fraction must at least match the share the paper's §5
//!   breakdown moves off-path (post ≥ pre).
//! - **slowpath** — prediction off: every operation pays its pre
//!   phases on-path. The per-layer on-path p50/p99 come from this
//!   run's critpath plane.
//! - **forced leak** — [`SimConfig::forced_leak`]: lazy post off, so
//!   post phases run synchronously. The detector must charge that
//!   work as leaked and the masking ratio must collapse.
//!
//! Cycle conservation (`MaskingLedger::conserves`) is asserted for
//! every arm; a violation fails the bench outright.

use pa_bench::{BenchReport, Better};
use pa_sim::{AppBehavior, SimConfig, TwoNodeSim};

const TRIPS: u64 = 200;
const HORIZON: u64 = 400_000_000;

/// Runs `TRIPS` closed-loop round trips under `cfg` with the critpath
/// plane attached and returns the sim at quiescence.
fn run(cfg: &SimConfig) -> TwoNodeSim {
    let mut sim = TwoNodeSim::new(cfg);
    sim.attach_critpath(pa_obs::ScopeConfig::default(), 1_000_000);
    sim.set_behavior(0, AppBehavior::CloseLoop);
    sim.arm_closed_loop(TRIPS, 8, 0);
    sim.run_until(HORIZON);
    let now = sim.now();
    sim.force_critpath_sample(now);
    sim
}

fn conservation_gate(name: &str, sim: &TwoNodeSim) {
    for node in 0..2 {
        let ml = sim.masking_ledger(node);
        let report = sim.xray_report(node);
        if !ml.conserves(&report.phases) {
            eprintln!("FAIL: {name}: masking ledger does not conserve on node{node}");
            eprintln!("{}", ml.render());
            std::process::exit(1);
        }
    }
}

fn main() {
    println!("masking ratio and leak detection (virtual time; deterministic)");
    println!("{}", "-".repeat(100));

    // Fast path: the shipping configuration.
    let fast = run(&SimConfig::paper());
    conservation_gate("fastpath", &fast);
    let fast_ml = fast.masking_ledger_all();
    println!(
        "fastpath : ratio {:.4}  leaked {:.4}  ({} trips)",
        fast_ml.masking_ratio(),
        fast_ml.leaked_share(),
        fast.round_trips
    );

    // Slow path: prediction off, every pre phase on-path.
    let mut slow_cfg = SimConfig::paper();
    slow_cfg.pa.predict = false;
    let slow = run(&slow_cfg);
    conservation_gate("slowpath", &slow);
    let slow_ml = slow.masking_ledger_all();
    println!(
        "slowpath : ratio {:.4}  leaked {:.4}",
        slow_ml.masking_ratio(),
        slow_ml.leaked_share()
    );

    // Forced leak: post phases pinned to the critical path.
    let forced = run(&SimConfig::forced_leak());
    conservation_gate("forced", &forced);
    let forced_ml = forced.masking_ledger_all();
    println!(
        "forced   : ratio {:.4}  leaked {:.4}  top {:?}",
        forced_ml.masking_ratio(),
        forced_ml.leaked_share(),
        forced_ml
            .top_leaked()
            .first()
            .map(|(l, p, ns, _)| (l.clone(), p.label(), *ns))
    );

    let mut report = BenchReport::new("masking");
    report
        .push_tol(
            "mask_ratio_fastpath",
            fast_ml.masking_ratio(),
            Better::Higher,
            0.02,
        )
        .push_tol(
            "leaked_share_fastpath",
            fast_ml.leaked_share(),
            Better::Lower,
            0.02,
        )
        .push_tol(
            "mask_ratio_slowpath",
            slow_ml.masking_ratio(),
            Better::Higher,
            0.02,
        )
        .push_tol(
            "mask_ratio_forced",
            forced_ml.masking_ratio(),
            Better::Lower,
            0.05,
        )
        .push_tol(
            "leaked_share_forced",
            forced_ml.leaked_share(),
            Better::Higher,
            0.02,
        );

    // Per-layer on-path cost, from the slow-path run's critpath plane
    // (the fast path has no on-path layer work to sample — that is the
    // point). Virtual time: exact across machines.
    let plane = slow.critpath_plane().expect("attached");
    let mut onpath: Vec<(String, u64, u64)> = plane
        .endpoints()
        .filter_map(|(name, series)| {
            let layer = name.strip_prefix("onpath/")?;
            let s = series.sketch().summary();
            (s.count > 0).then(|| (layer.to_string(), s.p50, s.p99))
        })
        .collect();
    onpath.sort();
    for (layer, p50, p99) in &onpath {
        println!("on-path {layer:>10}: p50 {p50} ns  p99 {p99} ns");
        report
            .push_tol(
                &format!("onpath_p50_{layer}_ns"),
                *p50 as f64,
                Better::Lower,
                0.05,
            )
            .push_tol(
                &format!("onpath_p99_{layer}_ns"),
                *p99 as f64,
                Better::Lower,
                0.05,
            );
    }

    if !pa_bench::emit_and_compare(&report) {
        std::process::exit(1);
    }
}
