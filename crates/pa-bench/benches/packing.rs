//! Regenerates the §3.4 packing / streaming measurements.
fn main() {
    pa_bench::banner("§3.4/§5 — message packing: streaming and bandwidth");
    let p = pa_sim::experiments::packing::run();
    println!("{}", p.render());
}
