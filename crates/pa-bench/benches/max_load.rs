//! Runs the §6 maximum-load analysis (client and CPU scaling).
fn main() {
    pa_bench::banner("§6 — maximum load: one server, N clients, M CPUs");
    let m = pa_sim::experiments::max_load::run();
    println!("{}", m.render());
}
