//! Runs the A1 ablation (each PA mechanism toggled individually).
fn main() {
    pa_bench::banner("A1 — ablation: one PA mechanism at a time");
    let a = pa_sim::experiments::ablation::run();
    println!("{}", a.render());
}
