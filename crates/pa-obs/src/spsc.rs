//! A bounded, wait-free single-producer/single-consumer channel.
//!
//! This is the only cross-thread transport in the workspace: telemetry
//! domains ship [`crate::domain::DomainEvent`]s over it, and the
//! post-drain worker ships whole `Connection`s (as boxed jobs) over a
//! second ring. Both uses share the same requirements:
//!
//! - **wait-free on both ends**: [`Producer::push`] and
//!   [`Consumer::pop`] complete in a bounded number of steps — no
//!   locks, no CAS loops, no blocking. A full ring *refuses* the push
//!   (returning the value) and counts the refusal; it never spins and
//!   never drops silently;
//! - **fixed capacity**: the slot array is allocated once at
//!   construction and never grows, so a steady-state producer performs
//!   zero heap allocations per push;
//! - **cached positions**: each side keeps a local copy of the other
//!   side's index and refreshes it only when the ring looks full/empty,
//!   so the common case touches one shared atomic, not two.
//!
//! Memory ordering is the classic Lamport queue protocol: the producer
//! publishes a slot with a `Release` store of `tail`; the consumer
//! acquires it with an `Acquire` load, and vice versa for `head`. The
//! slot array itself is `UnsafeCell<MaybeUninit<T>>` — this module is
//! the reason pa-obs does not `forbid(unsafe_code)` (every other crate
//! in the workspace does). The exhaustive-interleaving model in
//! `tests/concurrency_model.rs` checks the index protocol; the unit
//! tests here exercise the real implementation across real threads.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared counters of one channel, readable from either end (and from
/// a telemetry collector holding a clone of the ends' stats handle).
#[derive(Debug, Default)]
struct Counts {
    pushed: AtomicU64,
    popped: AtomicU64,
    refused: AtomicU64,
}

/// A point-in-time copy of a channel's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Values successfully enqueued.
    pub pushed: u64,
    /// Values successfully dequeued.
    pub popped: u64,
    /// Pushes refused because the ring was full (the value was handed
    /// back to the producer, not lost — but the *attempt* is counted
    /// so backpressure is visible in a snapshot).
    pub refused: u64,
}

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: usize,
    /// Next slot to read (consumer-owned; producer reads it).
    head: AtomicUsize,
    /// Next slot to write (producer-owned; consumer reads it).
    tail: AtomicUsize,
    counts: Counts,
}

// SAFETY: the head/tail protocol hands each slot to exactly one side
// at a time — the producer writes a slot only while `tail - head <
// capacity` proves the consumer is not reading it, and the consumer
// reads a slot only after the producer's Release store of `tail`
// published it. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self` proves it); drain the
        // initialized slots so queued values are not leaked.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = self.buf[i % self.capacity].get();
            // SAFETY: slots in [head, tail) were written and not read.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The sending end. `Send` but not `Sync`/`Clone`: exactly one thread
/// owns it at a time.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of the consumer's head, refreshed on apparent full.
    cached_head: usize,
}

/// The receiving end. `Send` but not `Sync`/`Clone`.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of the producer's tail, refreshed on apparent empty.
    cached_tail: usize,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// Creates a bounded SPSC channel with room for `capacity` values
/// (clamped to ≥ 1). The slot array is allocated here, once.
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        capacity,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        counts: Counts::default(),
    });
    (
        Producer {
            inner: inner.clone(),
            cached_head: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Enqueues `v`, or hands it back if the ring is full. Wait-free:
    /// at most two shared loads, one slot write, one shared store.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        if tail - self.cached_head >= inner.capacity {
            self.cached_head = inner.head.load(Ordering::Acquire);
            if tail - self.cached_head >= inner.capacity {
                inner.counts.refused.fetch_add(1, Ordering::Relaxed);
                return Err(v);
            }
        }
        let slot = inner.buf[tail % inner.capacity].get();
        // SAFETY: `tail - head < capacity` proves the consumer has
        // finished with this slot; only this producer writes slots.
        unsafe { (*slot).write(v) };
        inner.tail.store(tail + 1, Ordering::Release);
        inner.counts.pushed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Values currently in flight (pushed, not yet popped). Advisory.
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        inner.tail.load(Ordering::Relaxed) - inner.head.load(Ordering::Relaxed)
    }

    /// True if no value is in flight. Advisory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// True once the consumer end has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }

    /// Traffic counters (shared with the consumer end).
    pub fn stats(&self) -> ChannelStats {
        stats_of(&self.inner)
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest value, or `None` if the ring is empty.
    /// Wait-free: at most two shared loads, one slot read, one store.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let slot = inner.buf[head % inner.capacity].get();
        // SAFETY: `head < tail` (Acquire) proves the producer's write
        // of this slot happened-before; only this consumer reads it.
        let v = unsafe { (*slot).assume_init_read() };
        inner.head.store(head + 1, Ordering::Release);
        inner.counts.popped.fetch_add(1, Ordering::Relaxed);
        Some(v)
    }

    /// Values currently in flight. Advisory.
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        inner.tail.load(Ordering::Relaxed) - inner.head.load(Ordering::Relaxed)
    }

    /// True if no value is in flight. Advisory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// True once the producer end has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }

    /// Traffic counters (shared with the producer end).
    pub fn stats(&self) -> ChannelStats {
        stats_of(&self.inner)
    }
}

fn stats_of<T>(inner: &Inner<T>) -> ChannelStats {
    ChannelStats {
        pushed: inner.counts.pushed.load(Ordering::Relaxed),
        popped: inner.counts.popped.load(Ordering::Relaxed),
        refused: inner.counts.refused.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = channel::<u64>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        let s = tx.stats();
        assert_eq!((s.pushed, s.popped, s.refused), (8, 8, 0));
    }

    #[test]
    fn full_ring_refuses_and_counts() {
        let (mut tx, mut rx) = channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(3), "value handed back, not lost");
        assert_eq!(tx.stats().refused, 1);
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let (mut tx, mut rx) = channel::<u8>(0);
        tx.push(9).unwrap();
        assert_eq!(tx.push(10), Err(10));
        assert_eq!(rx.pop(), Some(9));
    }

    #[test]
    fn queued_values_drop_with_the_channel() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = channel::<Token>(4);
        tx.push(Token).unwrap();
        tx.push(Token).unwrap();
        tx.push(Token).unwrap();
        drop(rx.pop()); // one dropped by the consumer
        drop(tx);
        drop(rx); // two still queued, dropped by the ring
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn disconnect_is_visible() {
        let (tx, rx) = channel::<u8>(1);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = channel::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut refusals = 0u64;
            for i in 0..N {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    refusals += 1;
                    std::thread::yield_now();
                }
            }
            refusals
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "FIFO order violated");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        let refusals = producer.join().unwrap();
        let s = rx.stats();
        assert_eq!(s.pushed, N);
        assert_eq!(s.popped, N);
        assert_eq!(s.refused, refusals);
    }

    #[test]
    fn boxed_payloads_cross_threads() {
        let (mut tx, mut rx) = channel::<Box<Vec<u8>>>(4);
        let t = std::thread::spawn(move || {
            for i in 0..32u8 {
                let mut v = Box::new(vec![i; 16]);
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut got = 0u8;
        while got < 32 {
            if let Some(b) = rx.pop() {
                assert_eq!(*b, vec![got; 16]);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
    }
}
