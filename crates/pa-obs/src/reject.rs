//! The structured reject taxonomy for adversarial wire input.
//!
//! The PA's premise makes every byte that steers the fast path
//! attacker-controllable: the 8-byte preamble picks the connection, the
//! predicted header decides fast vs slow, and the packing header drives
//! unpack loops. A hardened ingest therefore needs more than a boolean
//! "dropped" — every rejected frame must name *why* it was refused, the
//! counts must reconcile exactly with the coarse drop ledger
//! (`delivery_balanced()` stays intact under attack), and the taxonomy
//! must be shared by every layer that touches wire bytes: the network
//! interface (datagram-level), the endpoint demux (cookie-level), the
//! connection entry (header-level), and the stack (sequence-level).
//!
//! - [`RejectReason`] — the closed vocabulary. Each variant carries its
//!   stable label, wire code, and the coarse [`RejectBucket`] it rolls
//!   up into.
//! - [`RejectBucket`] — which coarse `ConnStats` drop counter (or
//!   netif/send ledger) a reason reconciles against.
//! - [`RejectLedger`] — a `Copy`, allocation-free per-reason counter
//!   array. Bumped on reject paths only; the clean fast path never
//!   touches it.

use std::fmt;

/// Why a wire input was refused. The single vocabulary used by
/// `Connection::deliver_frame`, the `Endpoint`/`Router` demux, the
/// network interfaces, and the fuzzer's invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Frame shorter than the 8-byte preamble (§2.2).
    TruncatedPreamble,
    /// Preamble advertises a connection identification the frame is too
    /// short to carry.
    TruncatedIdent,
    /// Connection identification present but naming other endpoints.
    ForeignIdent,
    /// Cookie not recognized and no connection identification present
    /// (§2.2: "it is dropped").
    UnknownCookie,
    /// Cookie was valid for this connection once but has been replaced;
    /// replayed old-cookie frames are refused, not routed.
    StaleCookie,
    /// The reserved all-zero cookie on a frame claiming cookie-only
    /// routing — a forgery, never a legitimate sender.
    ZeroCookie,
    /// A cookie-only frame tried to flip the sender's advertised byte
    /// order mid-stream. Honoring it would re-encode the delivery
    /// prediction and re-fuse the filter on an attacker's say-so, so
    /// order changes are only honored alongside a full connection
    /// identification.
    ByteOrderConflict,
    /// Frame too short for the negotiated class headers (protocol +
    /// message + gossip), or too short for a header read inside the
    /// engine.
    ShortFrame,
    /// The packing header (§3.4) failed to decode: unknown kind, count
    /// of zero, or a piece table longer than the bytes that carry it.
    MalformedPackInfo,
    /// The packing header decoded but promises a body length different
    /// from the bytes actually present.
    LengthMismatch,
    /// A sequence number at or below the delivery cursor: a duplicate
    /// or replayed frame refused by the window layer.
    ReplayedSeq,
    /// Datagram shorter than a preamble at the network interface —
    /// nothing to route by.
    TruncatedDatagram,
    /// Datagram larger than the interface's receive buffer; delivering
    /// it would have silently truncated the frame into garbage.
    OversizedDatagram,
    /// The send-side packet filter refused a frame outright.
    FilterReject,
    /// An identified frame carried a cookie that is already bound to a
    /// *different* live connection. Honoring it would hijack that
    /// connection's cookie route (squat its demux entry, retire its
    /// real cookie as stale) on the say-so of replayable public bytes,
    /// so the binding is refused. Legitimate rebinds (peer restart)
    /// always arrive with a fresh, unbound cookie.
    CookieConflict,
}

/// Which coarse ledger a [`RejectReason`] rolls up into. The coarse
/// counters (`ConnStats::drops_*`) predate the taxonomy and the
/// `delivery_balanced()` invariant is written against them, so every
/// fine-grained reason reconciles through its bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectBucket {
    /// `ConnStats::drops_unknown_cookie` — demux-level refusals.
    Cookie,
    /// `ConnStats::drops_malformed` — structurally bad frames.
    Malformed,
    /// `ConnStats::drops_by_layer` — a layer's pre-deliver verdict
    /// (rides *within* a slow delivery; not an entry drop).
    Layer,
    /// `ConnStats::drops_send_rejected` — send-side refusals.
    Send,
    /// Counted at the network interface; the frame never reached a
    /// connection, so no `ConnStats` counter moves.
    Netif,
}

impl RejectReason {
    /// Every reason, in [`RejectReason::index`] order.
    pub const ALL: [RejectReason; 15] = [
        RejectReason::TruncatedPreamble,
        RejectReason::TruncatedIdent,
        RejectReason::ForeignIdent,
        RejectReason::UnknownCookie,
        RejectReason::StaleCookie,
        RejectReason::ZeroCookie,
        RejectReason::ByteOrderConflict,
        RejectReason::ShortFrame,
        RejectReason::MalformedPackInfo,
        RejectReason::LengthMismatch,
        RejectReason::ReplayedSeq,
        RejectReason::TruncatedDatagram,
        RejectReason::OversizedDatagram,
        RejectReason::FilterReject,
        RejectReason::CookieConflict,
    ];

    /// Number of reasons (the [`RejectLedger`] array length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable position in [`RejectReason::ALL`] (ledger index and xray
    /// tag operand).
    pub fn index(self) -> usize {
        match self {
            RejectReason::TruncatedPreamble => 0,
            RejectReason::TruncatedIdent => 1,
            RejectReason::ForeignIdent => 2,
            RejectReason::UnknownCookie => 3,
            RejectReason::StaleCookie => 4,
            RejectReason::ZeroCookie => 5,
            RejectReason::ByteOrderConflict => 6,
            RejectReason::ShortFrame => 7,
            RejectReason::MalformedPackInfo => 8,
            RejectReason::LengthMismatch => 9,
            RejectReason::ReplayedSeq => 10,
            RejectReason::TruncatedDatagram => 11,
            RejectReason::OversizedDatagram => 12,
            RejectReason::FilterReject => 13,
            RejectReason::CookieConflict => 14,
        }
    }

    /// The reason at `index`, if in range (xray tag decode).
    pub fn from_index(index: usize) -> Option<RejectReason> {
        Self::ALL.get(index).copied()
    }

    /// Short stable label (metrics names use `reject_<label>` with `-`
    /// mapped by the caller as needed).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::TruncatedPreamble => "truncated-preamble",
            RejectReason::TruncatedIdent => "truncated-ident",
            RejectReason::ForeignIdent => "foreign-ident",
            RejectReason::UnknownCookie => "unknown-cookie",
            RejectReason::StaleCookie => "stale-cookie",
            RejectReason::ZeroCookie => "zero-cookie",
            RejectReason::ByteOrderConflict => "byte-order-conflict",
            RejectReason::ShortFrame => "short-frame",
            RejectReason::MalformedPackInfo => "malformed-pack-info",
            RejectReason::LengthMismatch => "length-mismatch",
            RejectReason::ReplayedSeq => "replayed-seq",
            RejectReason::TruncatedDatagram => "truncated-datagram",
            RejectReason::OversizedDatagram => "oversized-datagram",
            RejectReason::FilterReject => "filter-reject",
            RejectReason::CookieConflict => "cookie-conflict",
        }
    }

    /// The coarse ledger this reason reconciles against.
    pub fn bucket(self) -> RejectBucket {
        match self {
            RejectReason::ForeignIdent
            | RejectReason::UnknownCookie
            | RejectReason::StaleCookie
            | RejectReason::ZeroCookie
            | RejectReason::CookieConflict => RejectBucket::Cookie,
            RejectReason::TruncatedPreamble
            | RejectReason::TruncatedIdent
            | RejectReason::ByteOrderConflict
            | RejectReason::ShortFrame
            | RejectReason::MalformedPackInfo
            | RejectReason::LengthMismatch => RejectBucket::Malformed,
            RejectReason::ReplayedSeq => RejectBucket::Layer,
            RejectReason::TruncatedDatagram | RejectReason::OversizedDatagram => {
                RejectBucket::Netif
            }
            RejectReason::FilterReject => RejectBucket::Send,
        }
    }

    /// True if this reason is a *receive-entry* reject: the frame
    /// reached `deliver_frame`/`handle_routed` and was refused before
    /// (or instead of) counting a delivery. Exactly these reasons
    /// participate in `delivery_balanced()`.
    pub fn is_entry(self) -> bool {
        matches!(
            self.bucket(),
            RejectBucket::Cookie | RejectBucket::Malformed
        )
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-reason reject counters: a fixed `Copy` array, allocation-free,
/// bumped only on reject paths. One ledger lives in each `ConnStats`,
/// one in the endpoint demux, and one per network interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectLedger {
    counts: [u64; RejectReason::COUNT],
}

impl RejectLedger {
    /// An empty ledger.
    pub fn new() -> RejectLedger {
        RejectLedger::default()
    }

    /// Counts one rejection.
    #[inline]
    pub fn bump(&mut self, reason: RejectReason) {
        self.counts[reason.index()] += 1;
    }

    /// The count for `reason`.
    #[inline]
    pub fn get(&self, reason: RejectReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total rejections across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total rejections rolling up into `bucket`.
    pub fn bucket_total(&self, bucket: RejectBucket) -> u64 {
        RejectReason::ALL
            .iter()
            .filter(|r| r.bucket() == bucket)
            .map(|&r| self.get(r))
            .sum()
    }

    /// Total receive-entry rejections (the ones `delivery_balanced()`
    /// accounts for).
    pub fn entry_total(&self) -> u64 {
        self.bucket_total(RejectBucket::Cookie) + self.bucket_total(RejectBucket::Malformed)
    }

    /// `(reason, count)` for every reason, in index order (including
    /// zeros — callers filter).
    pub fn iter(&self) -> impl Iterator<Item = (RejectReason, u64)> + '_ {
        RejectReason::ALL.iter().map(move |&r| (r, self.get(r)))
    }

    /// Folds another ledger in (endpoint-level aggregation).
    pub fn merge(&mut self, other: &RejectLedger) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
    }

    /// True if nothing has been rejected.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The growth since `earlier` (a copy of this ledger taken before
    /// some window of work), per reason, saturating. Brackets around
    /// disjoint windows partition the source ledger exactly — the
    /// contract telemetry-domain shards ride on.
    pub fn delta(&self, earlier: &RejectLedger) -> RejectLedger {
        let mut d = RejectLedger::new();
        for (i, slot) in d.counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        d
    }

    /// Records every nonzero reason under `scope` as
    /// `reject_<label>` in a metrics snapshot.
    pub fn record_into(&self, snapshot: &mut crate::MetricsSnapshot, scope: &str) {
        for (reason, count) in self.iter() {
            if count != 0 {
                snapshot.record(scope, reason.metric_name(), count);
            }
        }
    }
}

impl RejectReason {
    /// Stable metrics name: `reject_<label>` with dashes flattened to
    /// underscores, as a `'static` string (snapshot keys borrow).
    pub fn metric_name(self) -> &'static str {
        match self {
            RejectReason::TruncatedPreamble => "reject_truncated_preamble",
            RejectReason::TruncatedIdent => "reject_truncated_ident",
            RejectReason::ForeignIdent => "reject_foreign_ident",
            RejectReason::UnknownCookie => "reject_unknown_cookie",
            RejectReason::StaleCookie => "reject_stale_cookie",
            RejectReason::ZeroCookie => "reject_zero_cookie",
            RejectReason::ByteOrderConflict => "reject_byte_order_conflict",
            RejectReason::ShortFrame => "reject_short_frame",
            RejectReason::MalformedPackInfo => "reject_malformed_pack_info",
            RejectReason::LengthMismatch => "reject_length_mismatch",
            RejectReason::ReplayedSeq => "reject_replayed_seq",
            RejectReason::TruncatedDatagram => "reject_truncated_datagram",
            RejectReason::OversizedDatagram => "reject_oversized_datagram",
            RejectReason::FilterReject => "reject_filter_reject",
            RejectReason::CookieConflict => "reject_cookie_conflict",
        }
    }
}

impl fmt::Display for RejectLedger {
    /// Nonzero reasons only, one per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (reason, count) in self.iter() {
            if count != 0 {
                writeln!(f, "  {:<26} {count:>10}", reason.label())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_total_roundtrip() {
        for (i, &r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "{r}");
            assert_eq!(RejectReason::from_index(i), Some(r));
        }
        assert_eq!(RejectReason::from_index(RejectReason::COUNT), None);
    }

    #[test]
    fn labels_and_metric_names_are_unique() {
        for (i, a) in RejectReason::ALL.iter().enumerate() {
            for b in &RejectReason::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
                assert_ne!(a.metric_name(), b.metric_name());
            }
            assert_eq!(
                a.metric_name(),
                format!("reject_{}", a.label().replace('-', "_"))
            );
        }
    }

    #[test]
    fn ledger_buckets_reconcile() {
        let mut l = RejectLedger::new();
        l.bump(RejectReason::UnknownCookie);
        l.bump(RejectReason::UnknownCookie);
        l.bump(RejectReason::StaleCookie);
        l.bump(RejectReason::TruncatedPreamble);
        l.bump(RejectReason::ReplayedSeq);
        l.bump(RejectReason::OversizedDatagram);
        assert_eq!(l.total(), 6);
        assert_eq!(l.bucket_total(RejectBucket::Cookie), 3);
        assert_eq!(l.bucket_total(RejectBucket::Malformed), 1);
        assert_eq!(l.bucket_total(RejectBucket::Layer), 1);
        assert_eq!(l.bucket_total(RejectBucket::Netif), 1);
        assert_eq!(l.entry_total(), 4);
        assert_eq!(l.get(RejectReason::UnknownCookie), 2);

        let mut m = RejectLedger::new();
        m.bump(RejectReason::StaleCookie);
        m.merge(&l);
        assert_eq!(m.get(RejectReason::StaleCookie), 2);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn entry_reasons_split_into_the_two_balanced_buckets() {
        for r in RejectReason::ALL {
            let entry = matches!(r.bucket(), RejectBucket::Cookie | RejectBucket::Malformed);
            assert_eq!(r.is_entry(), entry, "{r}");
        }
    }

    #[test]
    fn ledger_renders_nonzero_rows_only() {
        let mut l = RejectLedger::new();
        l.bump(RejectReason::ZeroCookie);
        let text = l.to_string();
        assert!(text.contains("zero-cookie"), "{text}");
        assert!(!text.contains("stale-cookie"), "{text}");
    }

    #[test]
    fn delta_brackets_partition_the_ledger() {
        let mut l = RejectLedger::new();
        let cp0 = l;
        l.bump(RejectReason::UnknownCookie);
        l.bump(RejectReason::ShortFrame);
        let cp1 = l;
        l.bump(RejectReason::UnknownCookie);
        let d1 = cp1.delta(&cp0);
        let d2 = l.delta(&cp1);
        assert_eq!(d1.total(), 2);
        assert_eq!(d2.get(RejectReason::UnknownCookie), 1);
        assert_eq!(d2.total(), 1);
        let mut merged = RejectLedger::new();
        merged.merge(&d1);
        merged.merge(&d2);
        assert_eq!(merged, l, "disjoint brackets re-merge exactly");
    }

    #[test]
    fn record_into_uses_metric_names() {
        let mut l = RejectLedger::new();
        l.bump(RejectReason::MalformedPackInfo);
        let mut snap = crate::MetricsSnapshot::new(0);
        l.record_into(&mut snap, "conn0");
        assert_eq!(snap.get("conn0", "reject_malformed_pack_info"), Some(1));
        assert_eq!(snap.len(), 1, "zero rows omitted");
    }
}
