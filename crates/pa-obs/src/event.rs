//! The structured trace-event taxonomy.
//!
//! Every per-message decision the Protocol Accelerator makes — fast
//! path, slow path with a concrete cause, queueing, filter rejection,
//! prediction mismatch, drop — is one fixed-size, `Copy`,
//! allocation-free [`TraceEvent`]. Field references are carried as
//! `(class, index)` pairs ([`FieldRef`]) and resolved to names only at
//! render time, so emitting an event never touches the heap.

use crate::xray::DisableReason;
use std::fmt;

/// Logical nanoseconds (the hosts' virtual clocks).
pub type Nanos = u64;

/// A layout field identified positionally: `(class, index)`.
///
/// Mirrors `pa_wire::Field` without depending on it (pa-obs sits below
/// every other crate). Render with a resolver that knows the layout's
/// declared names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The header class ordinal (0 = conn-id, 1 = protocol, 2 =
    /// message, 3 = gossip — `pa_wire::Class` order).
    pub class: u8,
    /// Field index within the class, in declaration order.
    pub index: u16,
}

impl FieldRef {
    /// A field reference from raw ordinals.
    pub fn new(class: u8, index: u16) -> FieldRef {
        FieldRef { class, index }
    }
}

/// Which engine invariant broke (kept as a fieldless enum so
/// [`TraceEvent`] stays inside its 32-byte budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// `Prediction::enable()` without a matching `disable()`: the
    /// counter would have gone negative and was saturated instead.
    EnableUnderflow,
}

impl Invariant {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::EnableUnderflow => "enable-underflow",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why an operation missed the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowCause {
    /// The packet filter refused the frame (send: predicted frame
    /// failed the send filter; deliver: delivery filter verdict ≠ PASS).
    FilterReject,
    /// The incoming protocol header did not match the predicted one.
    PredictMiss,
    /// A layer's disable counter held the predicted header unusable.
    PredictDisabled,
    /// Prediction is switched off in the configuration (baseline runs).
    PredictOff,
}

impl SlowCause {
    /// Short stable label (used by renderers and JSON export).
    pub fn label(self) -> &'static str {
        match self {
            SlowCause::FilterReject => "filter-reject",
            SlowCause::PredictMiss => "predict-miss",
            SlowCause::PredictDisabled => "predict-disabled",
            SlowCause::PredictOff => "predict-off",
        }
    }
}

/// Why a frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Cookie not recognized and no connection identification present.
    UnknownCookie,
    /// Connection identification present but for another connection.
    ForeignIdent,
    /// Truncated headers, bad packing, or an unparseable preamble.
    Malformed,
    /// A layer's pre-deliver verdict dropped it (named layer).
    ByLayer(&'static str),
    /// The send filter refused a slow-path frame outright.
    FilterRefused,
}

impl DropCause {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::UnknownCookie => "unknown-cookie",
            DropCause::ForeignIdent => "foreign-ident",
            DropCause::Malformed => "malformed",
            DropCause::ByLayer(_) => "by-layer",
            DropCause::FilterRefused => "filter-refused",
        }
    }
}

/// One structured observation from inside the Protocol Accelerator.
///
/// The taxonomy covers both directions: `FastSend`/`SlowSend` for the
/// send path, `FastDeliver`/`SlowDeliver` for the delivery path, and
/// the diagnostic events (`PredictMiss`, `FilterReject`) that explain
/// *why* a slow event happened — a slow-path operation is always
/// preceded by its cause event in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A send left on the fast path: predicted headers + filter, no
    /// layer entered.
    FastSend,
    /// A send ran the layered pre-send traversal.
    SlowSend {
        /// Why the fast path was missed.
        cause: SlowCause,
    },
    /// A send was parked in the backlog.
    Queued {
        /// The layer whose disable counter (or pending post-work)
        /// blocked the send path.
        disable_layer: &'static str,
    },
    /// A frame was delivered on the fast path.
    FastDeliver {
        /// Application messages unpacked from the frame.
        msgs: u32,
    },
    /// A frame went through the layered pre-deliver traversal.
    SlowDeliver {
        /// Why the fast path was missed.
        cause: SlowCause,
    },
    /// The incoming protocol header differed from the prediction.
    PredictMiss {
        /// First mismatching field.
        field: FieldRef,
        /// Predicted value.
        expected: u64,
        /// Observed value.
        got: u64,
    },
    /// A packet filter rejected a frame.
    FilterReject {
        /// Program counter of the deciding instruction.
        pc: u16,
        /// Mnemonic of the deciding instruction.
        op: &'static str,
    },
    /// A frame was dropped.
    Drop {
        /// Why.
        reason: DropCause,
    },
    /// A backlog drain emitted queued messages.
    BacklogDrain {
        /// Frames produced by the drain.
        frames: u32,
        /// Application messages drained.
        msgs: u32,
    },
    /// A layer emitted a control message (ack, retransmission, probe).
    Control {
        /// The emitting layer.
        layer: &'static str,
    },
    /// A frame left the sender carrying an in-band trace context (the
    /// `trace_ctx` Message-class field): one hop of a cross-endpoint
    /// journey begins.
    JourneySend {
        /// The journey id stamped into the frame (origin tag in the
        /// high 32 bits, per-origin sequence in the low 32).
        journey: u64,
        /// Hop counter as written on the wire (0 at the origin).
        hop: u8,
    },
    /// A frame carrying a trace context arrived and was read back out
    /// of the Message class by the receiver: the hop completes.
    JourneyDeliver {
        /// The journey id read from the frame.
        journey: u64,
        /// Hop counter as read off the wire.
        hop: u8,
    },
    /// A layer disabled a predicted header, with attribution (§3.2's
    /// counter bump, named).
    Disable {
        /// The disabling layer.
        layer: &'static str,
        /// Why the fast path is being held shut.
        reason: DisableReason,
        /// True for the send prediction, false for the receive one.
        send: bool,
    },
    /// A layer re-enabled a predicted header it had disabled.
    Enable {
        /// The enabling layer.
        layer: &'static str,
        /// The reason whose hold is released.
        reason: DisableReason,
        /// True for the send prediction, false for the receive one.
        send: bool,
    },
    /// An engine invariant was violated but survived (e.g. `enable()`
    /// without a matching `disable()`, saturated instead of panicking).
    InvariantViolation {
        /// The layer at fault (`"pa"` when unattributable).
        layer: &'static str,
        /// Which invariant broke.
        what: Invariant,
    },
}

impl TraceEvent {
    /// Short stable kind label (renderers, JSON, counting probes).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FastSend => "fast-send",
            TraceEvent::SlowSend { .. } => "slow-send",
            TraceEvent::Queued { .. } => "queued",
            TraceEvent::FastDeliver { .. } => "fast-deliver",
            TraceEvent::SlowDeliver { .. } => "slow-deliver",
            TraceEvent::PredictMiss { .. } => "predict-miss",
            TraceEvent::FilterReject { .. } => "filter-reject",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::BacklogDrain { .. } => "backlog-drain",
            TraceEvent::Control { .. } => "control",
            TraceEvent::JourneySend { .. } => "journey-send",
            TraceEvent::JourneyDeliver { .. } => "journey-deliver",
            TraceEvent::Disable { .. } => "disable",
            TraceEvent::Enable { .. } => "enable",
            TraceEvent::InvariantViolation { .. } => "invariant-violation",
        }
    }

    /// The journey id carried by this event, if it is a journey event.
    pub fn journey(&self) -> Option<u64> {
        match *self {
            TraceEvent::JourneySend { journey, .. }
            | TraceEvent::JourneyDeliver { journey, .. } => Some(journey),
            _ => None,
        }
    }

    /// Renders the event with `resolve` supplying field names for
    /// [`FieldRef`]s (pass `|f| format!("{}/{}", f.class, f.index)` if
    /// no layout is at hand).
    pub fn render(&self, resolve: &dyn Fn(FieldRef) -> String) -> String {
        match *self {
            TraceEvent::FastSend => "fast-send".to_string(),
            TraceEvent::SlowSend { cause } => format!("slow-send cause={}", cause.label()),
            TraceEvent::Queued { disable_layer } => format!("queued by={disable_layer}"),
            TraceEvent::FastDeliver { msgs } => format!("fast-deliver msgs={msgs}"),
            TraceEvent::SlowDeliver { cause } => {
                format!("slow-deliver cause={}", cause.label())
            }
            TraceEvent::PredictMiss {
                field,
                expected,
                got,
            } => {
                format!(
                    "predict-miss field={} expected={expected} got={got}",
                    resolve(field)
                )
            }
            TraceEvent::FilterReject { pc, op } => format!("filter-reject pc={pc} op={op}"),
            TraceEvent::Drop { reason } => match reason {
                DropCause::ByLayer(layer) => format!("drop reason=by-layer({layer})"),
                other => format!("drop reason={}", other.label()),
            },
            TraceEvent::BacklogDrain { frames, msgs } => {
                format!("backlog-drain frames={frames} msgs={msgs}")
            }
            TraceEvent::Control { layer } => format!("control layer={layer}"),
            TraceEvent::JourneySend { journey, hop } => {
                format!(
                    "journey-send id={}:{} hop={hop}",
                    journey >> 32,
                    journey & 0xFFFF_FFFF
                )
            }
            TraceEvent::JourneyDeliver { journey, hop } => {
                format!(
                    "journey-deliver id={}:{} hop={hop}",
                    journey >> 32,
                    journey & 0xFFFF_FFFF
                )
            }
            TraceEvent::Disable {
                layer,
                reason,
                send,
            } => {
                let dir = if send { "send" } else { "recv" };
                format!("disable layer={layer} reason={reason} dir={dir}")
            }
            TraceEvent::Enable {
                layer,
                reason,
                send,
            } => {
                let dir = if send { "send" } else { "recv" };
                format!("enable layer={layer} reason={reason} dir={dir}")
            }
            TraceEvent::InvariantViolation { layer, what } => {
                format!("invariant-violation layer={layer} what={what}")
            }
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&|fr| format!("field[{}:{}]", fr.class, fr.index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_copy_and_small() {
        // Emitting must be cheap: the event is a plain value, no heap.
        assert!(
            std::mem::size_of::<TraceEvent>() <= 32,
            "{}",
            std::mem::size_of::<TraceEvent>()
        );
        let e = TraceEvent::PredictMiss {
            field: FieldRef::new(1, 0),
            expected: 4,
            got: 7,
        };
        let e2 = e; // Copy
        assert_eq!(e, e2);
    }

    #[test]
    fn render_resolves_fields() {
        let e = TraceEvent::PredictMiss {
            field: FieldRef::new(1, 2),
            expected: 10,
            got: 11,
        };
        let s = e.render(&|f| format!("proto.{}", f.index));
        assert_eq!(s, "predict-miss field=proto.2 expected=10 got=11");
    }

    #[test]
    fn journey_events_expose_their_id() {
        let id = (9u64 << 32) | 42;
        let e = TraceEvent::JourneySend {
            journey: id,
            hop: 0,
        };
        assert_eq!(e.journey(), Some(id));
        assert_eq!(TraceEvent::FastSend.journey(), None);
        assert!(e.to_string().contains("id=9:42"), "{e}");
    }

    #[test]
    fn display_covers_every_kind() {
        let events = [
            TraceEvent::FastSend,
            TraceEvent::SlowSend {
                cause: SlowCause::FilterReject,
            },
            TraceEvent::Queued {
                disable_layer: "window",
            },
            TraceEvent::FastDeliver { msgs: 3 },
            TraceEvent::SlowDeliver {
                cause: SlowCause::PredictMiss,
            },
            TraceEvent::PredictMiss {
                field: FieldRef::new(1, 0),
                expected: 1,
                got: 2,
            },
            TraceEvent::FilterReject { pc: 4, op: "abort" },
            TraceEvent::Drop {
                reason: DropCause::ByLayer("window"),
            },
            TraceEvent::BacklogDrain { frames: 1, msgs: 4 },
            TraceEvent::Control { layer: "window" },
            TraceEvent::JourneySend {
                journey: (3 << 32) | 7,
                hop: 0,
            },
            TraceEvent::JourneyDeliver {
                journey: (3 << 32) | 7,
                hop: 0,
            },
            TraceEvent::Disable {
                layer: "window",
                reason: DisableReason::FullWindow,
                send: true,
            },
            TraceEvent::Enable {
                layer: "window",
                reason: DisableReason::FullWindow,
                send: true,
            },
            TraceEvent::InvariantViolation {
                layer: "window",
                what: Invariant::EnableUnderflow,
            },
        ];
        for e in events {
            let s = e.to_string();
            assert!(s.starts_with(e.kind()), "{s} vs {}", e.kind());
        }
    }
}
