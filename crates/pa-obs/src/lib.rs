//! # pa-obs — observability for the Protocol Accelerator
//!
//! The whole point of the PA is *which path* a message takes — fast,
//! slow, or queued — so this crate makes that decision observable at
//! zero cost when tracing is off:
//!
//! - [`TraceEvent`] — the structured event taxonomy (fast/slow
//!   send/deliver with causes, queueing, prediction misses, filter
//!   rejections, drops, backlog drains, control traffic);
//! - [`ProbeSink`] / [`Probe`] — the emission point. The default
//!   [`ProbeSink::Noop`] costs one branch and performs no allocation
//!   and no ring write;
//! - [`TraceRing`] — a fixed-capacity, allocation-free ring of
//!   [`TraceRecord`]s with logical timestamps and per-connection
//!   sequence numbers;
//! - [`JourneySet`] / [`Journey`] — cross-endpoint causal journeys:
//!   joins `JourneySend`/`JourneyDeliver` events from several rings by
//!   journey id into per-hop timelines with latency waterfalls;
//! - [`FlightRecorder`] / [`TimeSeries`] — the time-series flight
//!   recorder: virtual-time-cadenced sampling of [`MetricsSnapshot`]
//!   deltas into ring-buffered series, with Prometheus-text and
//!   JSON-lines exporters and an invariant-break [`Postmortem`] dump;
//! - [`LatencyHisto`] — mergeable log2-bucketed (HDR-style) latency
//!   histograms with p50/p90/p99/max export;
//! - [`MetricsSnapshot`] — the unified `(scope, name) → value`
//!   registry with delta-since-last-snapshot, a text table, and JSON
//!   lines;
//! - [`PathTag`] — the per-frame path annotation used by the
//!   annotated-pcap capture mode;
//! - [`xray`] — fast-path explainability: attributed disable tokens
//!   ([`DisableReason`]), per-(layer, cause) slow-path [`Attribution`]
//!   multisets, prediction-miss forensics ([`MissTable`]), per-layer
//!   pre/post [`PhaseMeter`]s, the 4-byte [`XrayTag`] pcap annotation,
//!   and the [`XrayReport`] diagnosis engine;
//! - [`reject`] — the hostile-wire reject taxonomy: [`RejectReason`]
//!   (why an input byte sequence was refused), [`RejectBucket`] (which
//!   coarse drop counter it reconciles against), and the `Copy`
//!   per-reason [`RejectLedger`] shared by connections, the endpoint
//!   demux, and the network interfaces;
//! - [`rng`] — the workspace's dependency-free seedable PRNG
//!   ([`rng::SplitMix64`]), shared by cookies, fault injection, GC
//!   jitter, and randomized tests;
//! - [`sketch`] — mergeable log-bucketed quantile sketches
//!   ([`QuantileSketch`]): fixed-size windows, α-bounded relative
//!   error, and a canonical form that makes merge exactly associative
//!   and commutative — roll-up reconciliation is plain `==`;
//! - [`exemplar`] — seeded per-octave Algorithm-R reservoirs
//!   ([`ExemplarSet`]) attaching concrete `(value, at, journey,
//!   XrayTag)` samples to the slow bands of a sketch;
//! - [`scope`] — the aggregate telemetry plane ([`ScopePlane`]):
//!   per-conn → per-endpoint → cluster sketch roll-up under a hard
//!   byte cap, with counted overflow/denial instead of silent loss,
//!   top-N ranking, and a Prometheus exposition with OpenMetrics
//!   exemplar annotations;
//! - [`watchdog`] — the virtual-time health sampler ([`Watchdog`]):
//!   stall, delivery-ledger, SLO-burn, and mask-leak detection feeding
//!   [`FlightRecorder`] postmortems;
//! - [`critpath`] — critical-path masking analysis: every measured
//!   cycle attributed to exactly one of {on-path, masked, leaked}
//!   ([`MaskingLedger`], with exact conservation against the
//!   [`PhaseMeter`]s), per-message causal DAGs ([`CritDag`]) with
//!   critical-path extraction, the `(layer, phase, cause)`
//!   [`LeakLedger`], and a Chrome/Perfetto trace-event exporter
//!   ([`perfetto_trace`] / [`validate_trace_json`]);
//! - [`timer`] — the shared `Instant` span-overhead calibration used
//!   by both the bench harness and the cycle meters;
//! - [`spsc`] — the bounded wait-free single-producer/single-consumer
//!   ring ([`spsc::channel`]) that carries telemetry events (and drain
//!   jobs) between threads without locks or silent loss;
//! - [`domain`] — wait-free multi-core telemetry: per-thread
//!   [`TelemetryDomain`]s with seqlock-published counters and frozen
//!   epoch views, and the [`SnapshotCoordinator`] that merges them
//!   into an epoch-consistent [`GlobalSnapshot`] on which the ledger
//!   invariants are asserted (never on a torn view).
//!
//! pa-obs sits below every other crate in the workspace and has no
//! dependencies, so any layer can emit events without cycles.

pub mod critpath;
pub mod domain;
pub mod event;
pub mod exemplar;
pub mod histo;
pub mod journey;
pub mod probe;
pub mod reject;
pub mod ring;
pub mod rng;
pub mod scope;
pub mod sketch;
pub mod snapshot;
pub mod spsc;
pub mod timer;
pub mod timeseries;
pub mod watchdog;
pub mod xray;

pub use critpath::{
    perfetto_trace, validate_trace_json, CritDag, CritNode, LeakCause, LeakEntry, LeakLedger,
    MaskDomain, MaskRow, MaskingLedger, WorkClass,
};
pub use domain::{
    price_meters, DomainCell, DomainCounter, DomainEvent, DomainEventKind, DomainView,
    GlobalSnapshot, SnapshotCoordinator, TelemetryDomain,
};
pub use event::{DropCause, FieldRef, Invariant, Nanos, SlowCause, TraceEvent};
pub use exemplar::{octave_of, Exemplar, ExemplarSet};
pub use histo::{HistoSummary, LatencyHisto};
pub use journey::{
    journey_id, journey_origin, journey_seq, render_journey_id, HopLeg, Journey, JourneySet,
};
pub use probe::{EventCounts, NoopProbe, Probe, ProbeSink};
pub use reject::{RejectBucket, RejectLedger, RejectReason};
pub use ring::{merge_timeline, TraceRecord, TraceRing};
pub use scope::{ScopeConfig, ScopeKey, ScopePlane, ScopeSeries};
pub use sketch::{QuantileSketch, SketchConfig, SketchSummary};
pub use snapshot::MetricsSnapshot;
pub use timeseries::{FlightRecorder, Postmortem, TimeSeries, DEFAULT_MAX_SERIES};
pub use watchdog::{WatchAlert, WatchInput, Watchdog, WatchdogConfig};
pub use xray::{
    AttrCause, AttrEntry, Attribution, DisableReason, Finding, HoldRow, MissEntry, MissRow,
    MissTable, Phase, PhaseMeter, PhaseRow, XrayOp, XrayReport, XrayTag, XrayTotals,
};

use std::fmt;

/// The path a captured frame took, for annotated pcap dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTag {
    /// Left or arrived via the fast path.
    Fast,
    /// Went through the layered traversal.
    Slow,
    /// Produced by a backlog drain (was queued first).
    Queued,
    /// Layer-generated control traffic.
    Control,
    /// Dropped by the receiver.
    Dropped,
    /// Lost or mutated in the network (fault injection).
    Faulted,
    /// Outcome not (yet) observed.
    Unknown,
}

impl PathTag {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            PathTag::Fast => "fast",
            PathTag::Slow => "slow",
            PathTag::Queued => "queued",
            PathTag::Control => "control",
            PathTag::Dropped => "dropped",
            PathTag::Faulted => "faulted",
            PathTag::Unknown => "?",
        }
    }
}

impl fmt::Display for PathTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_tags_render() {
        assert_eq!(PathTag::Fast.to_string(), "fast");
        assert_eq!(PathTag::Dropped.label(), "dropped");
    }
}
