//! Critical-path masking analysis — measuring what the paper claims.
//!
//! The paper's thesis is that layered protocol work can be *masked*:
//! pre phases run on the delivery critical path, post phases and
//! prediction refresh run off it. This module turns that claim into a
//! first-class, conserved metric. Every measured unit of work — a
//! [`PhaseMeter`] call, its cycle time, or its virtual-time price — is
//! attributed to exactly one of three classes:
//!
//! - **on-path** — pre-send / pre-deliver work a delivery had to wait
//!   on by design (the slow path the PA tries to bypass);
//! - **masked** — post phases and tick work that ran off the critical
//!   path, exactly as §3.1 intends;
//! - **leaked** — post-class work that a later operation *did* wait
//!   on: a backlog/post drain paid for by the next arrival, eager
//!   (synchronous) post processing, or a receive-side filter re-fuse.
//!
//! Conservation is exact and checked: per (layer, phase),
//! `on-path + masked + leaked == total`, in calls and in nanoseconds,
//! because the classes are a partition of the meters by construction —
//! the [`MaskingLedger`] only *reads* meters, it never re-measures.
//!
//! The same module reconstructs per-message causal DAGs ([`CritDag`])
//! from journey hops, extracts the critical (longest) path, and
//! exports Chrome/Perfetto trace-event JSON ([`perfetto_trace`]) so
//! any run can be opened in a trace viewer.

use std::fmt;

use crate::event::Nanos;
use crate::xray::{Phase, PhaseRow};

// ---------------------------------------------------------------------------
// Work classes and leak causes
// ---------------------------------------------------------------------------

/// The three exhaustive classes of measured protocol work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkClass {
    /// Pre-phase (critical-path-by-design) work.
    OnPath,
    /// Post/tick work that genuinely ran off the critical path.
    Masked,
    /// Post-class work a later operation had to wait on.
    Leaked,
}

impl WorkClass {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            WorkClass::OnPath => "on-path",
            WorkClass::Masked => "masked",
            WorkClass::Leaked => "leaked",
        }
    }
}

impl fmt::Display for WorkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why post-class work landed on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeakCause {
    /// Pending receive posts were drained synchronously by the next
    /// arrival — under saturation the next delivery pays for the
    /// previous frame's post-deliver phases.
    ArrivalDrain,
    /// Eager mode (`lazy_post` off): post phases and backlog drains
    /// run inline inside send/deliver/tick instead of being deferred.
    EagerPost,
    /// The receive-side filter was re-fused after learning the peer's
    /// layer order, stalling the delivery that triggered it.
    RecvRefuse,
}

impl LeakCause {
    /// Every cause, in display order.
    pub const ALL: [LeakCause; 3] = [
        LeakCause::ArrivalDrain,
        LeakCause::EagerPost,
        LeakCause::RecvRefuse,
    ];

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            LeakCause::ArrivalDrain => "arrival-drain",
            LeakCause::EagerPost => "eager-post",
            LeakCause::RecvRefuse => "recv-refuse",
        }
    }
}

impl fmt::Display for LeakCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// The leak ledger
// ---------------------------------------------------------------------------

/// One `(layer, phase, cause)` leak bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakEntry {
    /// The layer whose work leaked (`"pa"` for engine work like the
    /// receive re-fuse).
    pub layer: String,
    /// The phase that ran inside the leak scope.
    pub phase: Phase,
    /// Why it was on the critical path.
    pub cause: LeakCause,
    /// Leaked invocations.
    pub calls: u64,
    /// Measured wall-clock nanoseconds (0 without cycle metering).
    pub cycle_ns: u64,
}

/// The per-connection leak multiset: every phase invocation that ran
/// inside a critical-path leak scope, keyed `(layer, phase, cause)`.
/// Mergeable across connections for fleet-level aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeakLedger {
    /// The buckets, in first-bump order.
    pub entries: Vec<LeakEntry>,
}

impl LeakLedger {
    /// Charges `calls` invocations (and optionally measured time) to a
    /// `(layer, phase, cause)` bucket.
    pub fn bump(&mut self, layer: &str, phase: Phase, cause: LeakCause, calls: u64, cycle_ns: u64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.layer == layer && e.phase == phase && e.cause == cause)
        {
            e.calls += calls;
            e.cycle_ns += cycle_ns;
        } else {
            self.entries.push(LeakEntry {
                layer: layer.to_string(),
                phase,
                cause,
                calls,
                cycle_ns,
            });
        }
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &LeakLedger) {
        for e in &other.entries {
            self.bump(&e.layer, e.phase, e.cause, e.calls, e.cycle_ns);
        }
    }

    /// Total leaked invocations.
    pub fn total_calls(&self) -> u64 {
        self.entries.iter().map(|e| e.calls).sum()
    }

    /// Total leaked measured nanoseconds.
    pub fn total_cycle_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.cycle_ns).sum()
    }

    /// True if nothing ever leaked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buckets sorted worst-first: by measured time, then calls, then
    /// first-bump order (stable, so ties are deterministic).
    pub fn sorted(&self) -> Vec<LeakEntry> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| std::cmp::Reverse((e.cycle_ns, e.calls)));
        v
    }

    /// The worst bucket, if any leaked.
    pub fn top(&self) -> Option<LeakEntry> {
        self.sorted().into_iter().next()
    }
}

// ---------------------------------------------------------------------------
// The masking ledger
// ---------------------------------------------------------------------------

/// One `(layer, phase)` row of the masking ledger, with its work split
/// across the three classes. `on_path + masked + leaked` equals the
/// source meter's totals exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskRow {
    /// Layer name (`"pa"` for engine rows).
    pub layer: String,
    /// The phase (engine rows use the pre phase of their direction).
    pub phase: Phase,
    /// True for engine rows added by the host (fast-path op cost,
    /// re-fuse). Engine rows are *outside* the [`PhaseMeter`]
    /// conservation check — the meters never saw them.
    pub engine: bool,
    /// On-path invocations / nanoseconds.
    pub on_path_calls: u64,
    /// On-path nanoseconds.
    pub on_path_ns: u64,
    /// Masked invocations.
    pub masked_calls: u64,
    /// Masked nanoseconds.
    pub masked_ns: u64,
    /// Leaked invocations.
    pub leaked_calls: u64,
    /// Leaked nanoseconds.
    pub leaked_ns: u64,
}

impl MaskRow {
    fn total_ns(&self) -> u64 {
        self.on_path_ns + self.masked_ns + self.leaked_ns
    }

    fn total_calls(&self) -> u64 {
        self.on_path_calls + self.masked_calls + self.leaked_calls
    }
}

/// Which duration column of a [`PhaseRow`] a ledger reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskDomain {
    /// Virtual-time pricing (`virt_ns`) — deterministic, what the sims
    /// and benches gate on.
    Virtual,
    /// Measured wall-clock time (`cycle_ns`) — what a live host with
    /// cycle metering reports.
    Cycles,
}

impl MaskDomain {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            MaskDomain::Virtual => "virtual",
            MaskDomain::Cycles => "cycles",
        }
    }
}

/// The aggregate on-path/masked/leaked attribution for one scope,
/// derived from priced or cycle-metered [`PhaseRow`]s plus any engine
/// rows the host adds. The headline number is [`masking_ratio`]
/// (MaskingLedger::masking_ratio): masked work over total work.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskingLedger {
    /// Scope label (host / connection / cluster).
    pub scope: String,
    /// Which duration column the rows were built from.
    pub domain: MaskDomain,
    /// Per-(layer, phase) rows, meter rows first, engine rows after.
    pub rows: Vec<MaskRow>,
}

impl MaskingLedger {
    /// An empty ledger for incremental merging.
    pub fn empty(scope: &str, domain: MaskDomain) -> MaskingLedger {
        MaskingLedger {
            scope: scope.to_string(),
            domain,
            rows: Vec::new(),
        }
    }

    /// Builds the ledger from phase rows: pre phases are on-path, post
    /// and tick phases are masked, and each phase's leaked sub-counts
    /// are moved to the leaked class. The split partitions the meters,
    /// so conservation holds by construction.
    pub fn from_phases(scope: &str, phases: &[PhaseRow], domain: MaskDomain) -> MaskingLedger {
        let mut ledger = MaskingLedger::empty(scope, domain);
        for row in phases {
            for phase in Phase::ALL {
                let i = phase as usize;
                if row.calls[i] == 0 {
                    continue;
                }
                let ns = match domain {
                    MaskDomain::Virtual => row.virt_ns[i],
                    MaskDomain::Cycles => row.cycle_ns[i],
                };
                let leaked_ns = match domain {
                    MaskDomain::Virtual => row.leaked_virt_ns[i],
                    MaskDomain::Cycles => row.leaked_cycle_ns[i],
                };
                let leaked_calls = row.leaked_calls[i];
                let clean_calls = row.calls[i] - leaked_calls;
                let clean_ns = ns - leaked_ns;
                let mut mask = MaskRow {
                    layer: row.layer.clone(),
                    phase,
                    engine: false,
                    on_path_calls: 0,
                    on_path_ns: 0,
                    masked_calls: 0,
                    masked_ns: 0,
                    leaked_calls,
                    leaked_ns,
                };
                match phase {
                    Phase::PreSend | Phase::PreDeliver => {
                        mask.on_path_calls = clean_calls;
                        mask.on_path_ns = clean_ns;
                    }
                    Phase::PostSend | Phase::PostDeliver | Phase::Tick => {
                        mask.masked_calls = clean_calls;
                        mask.masked_ns = clean_ns;
                    }
                }
                ledger.push(mask);
            }
        }
        ledger
    }

    /// Adds an engine row (work the [`PhaseMeter`]s never saw: the
    /// fast-path op cost, a receive re-fuse). `phase` carries the
    /// direction; engine rows are excluded from [`conserves`]
    /// (MaskingLedger::conserves).
    pub fn push_engine(
        &mut self,
        label: &str,
        phase: Phase,
        class: WorkClass,
        calls: u64,
        ns: u64,
    ) {
        let mut row = MaskRow {
            layer: label.to_string(),
            phase,
            engine: true,
            on_path_calls: 0,
            on_path_ns: 0,
            masked_calls: 0,
            masked_ns: 0,
            leaked_calls: 0,
            leaked_ns: 0,
        };
        match class {
            WorkClass::OnPath => {
                row.on_path_calls = calls;
                row.on_path_ns = ns;
            }
            WorkClass::Masked => {
                row.masked_calls = calls;
                row.masked_ns = ns;
            }
            WorkClass::Leaked => {
                row.leaked_calls = calls;
                row.leaked_ns = ns;
            }
        }
        self.push(row);
    }

    fn push(&mut self, row: MaskRow) {
        if let Some(e) = self
            .rows
            .iter_mut()
            .find(|r| r.layer == row.layer && r.phase == row.phase && r.engine == row.engine)
        {
            e.on_path_calls += row.on_path_calls;
            e.on_path_ns += row.on_path_ns;
            e.masked_calls += row.masked_calls;
            e.masked_ns += row.masked_ns;
            e.leaked_calls += row.leaked_calls;
            e.leaked_ns += row.leaked_ns;
        } else {
            self.rows.push(row);
        }
    }

    /// Folds another ledger (same domain) into this one.
    pub fn merge(&mut self, other: &MaskingLedger) {
        debug_assert_eq!(self.domain, other.domain);
        for row in &other.rows {
            self.push(row.clone());
        }
    }

    /// Total on-path nanoseconds.
    pub fn on_path_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.on_path_ns).sum()
    }

    /// Total masked nanoseconds.
    pub fn masked_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.masked_ns).sum()
    }

    /// Total leaked nanoseconds.
    pub fn leaked_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.leaked_ns).sum()
    }

    /// Total nanoseconds across all classes.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.total_ns()).sum()
    }

    /// The headline metric: masked work / total work, in [0, 1].
    /// 0 when nothing was measured.
    pub fn masking_ratio(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.masked_ns() as f64 / total as f64
    }

    /// Leaked work / total work, in [0, 1].
    pub fn leaked_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.leaked_ns() as f64 / total as f64
    }

    /// [`masking_ratio`] (MaskingLedger::masking_ratio) in permille —
    /// the integer form the scope plane and watchdog consume.
    pub fn masked_permille(&self) -> u64 {
        (self.masking_ratio() * 1000.0).round() as u64
    }

    /// [`leaked_share`] (MaskingLedger::leaked_share) in permille.
    pub fn leak_permille(&self) -> u64 {
        (self.leaked_share() * 1000.0).round() as u64
    }

    /// The exact conservation check against the source meters: summed
    /// over the non-engine rows, `on-path + masked + leaked` must
    /// equal the phase table's totals — in calls *and* nanoseconds,
    /// with `==`, not a tolerance.
    pub fn conserves(&self, phases: &[PhaseRow]) -> bool {
        let (mut ns, mut calls) = (0u64, 0u64);
        for r in self.rows.iter().filter(|r| !r.engine) {
            ns += r.total_ns();
            calls += r.total_calls();
        }
        let (mut want_ns, mut want_calls) = (0u64, 0u64);
        for row in phases {
            for i in 0..5 {
                want_calls += row.calls[i];
                want_ns += match self.domain {
                    MaskDomain::Virtual => row.virt_ns[i],
                    MaskDomain::Cycles => row.cycle_ns[i],
                };
            }
        }
        ns == want_ns && calls == want_calls
    }

    /// Rows with leaked work, worst-first `(layer, phase, ns, calls)`.
    pub fn top_leaked(&self) -> Vec<(String, Phase, u64, u64)> {
        let mut v: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.leaked_calls > 0 || r.leaked_ns > 0)
            .map(|r| (r.layer.clone(), r.phase, r.leaked_ns, r.leaked_calls))
            .collect();
        v.sort_by_key(|(_, _, ns, calls)| std::cmp::Reverse((*ns, *calls)));
        v
    }

    /// Renders the ledger as a text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "masking ledger — {} ({} ns)\n",
            self.scope,
            self.domain.label()
        ));
        s.push_str(&format!(
            "  {:<12} {:<12} {:>14} {:>14} {:>14}\n",
            "layer", "phase", "on-path ns", "masked ns", "leaked ns"
        ));
        for r in &self.rows {
            if r.total_calls() == 0 && r.total_ns() == 0 {
                continue;
            }
            s.push_str(&format!(
                "  {:<12} {:<12} {:>14} {:>14} {:>14}\n",
                if r.engine {
                    format!("({})", r.layer)
                } else {
                    r.layer.clone()
                },
                r.phase.label(),
                r.on_path_ns,
                r.masked_ns,
                r.leaked_ns
            ));
        }
        s.push_str(&format!(
            "  total: on-path {} ns, masked {} ns, leaked {} ns — masking ratio {:.3}, leaked share {:.3}\n",
            self.on_path_ns(),
            self.masked_ns(),
            self.leaked_ns(),
            self.masking_ratio(),
            self.leaked_share()
        ));
        s
    }
}

// ---------------------------------------------------------------------------
// The causal DAG
// ---------------------------------------------------------------------------

/// One unit of work in a per-message causal DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritNode {
    /// Human label (`"send-pre@node0"`, `"post-send/checksum"`).
    pub label: String,
    /// Host index — the Perfetto process lane.
    pub host: u32,
    /// 0 = critical lane, 1 = deferred lane — the Perfetto thread.
    pub lane: u32,
    /// The work's class.
    pub class: WorkClass,
    /// Start, in virtual nanoseconds.
    pub start: Nanos,
    /// Duration, in nanoseconds.
    pub dur: Nanos,
}

/// A per-message causal DAG: nodes of work joined by happens-before
/// edges. On-path nodes chain send → wire → deliver (per hop); post
/// phases hang off their trigger as off-path successors; leak nodes
/// sit on the delivery chain itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CritDag {
    /// The work nodes.
    pub nodes: Vec<CritNode>,
    edges: Vec<(usize, usize)>,
}

impl CritDag {
    /// An empty DAG.
    pub fn new() -> CritDag {
        CritDag::default()
    }

    /// Adds a node; returns its index.
    pub fn node(&mut self, n: CritNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Adds a happens-before edge `from → to`.
    pub fn edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// The happens-before edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    fn indegrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes.len()];
        for &(_, to) in &self.edges {
            deg[to] += 1;
        }
        deg
    }

    /// Kahn's algorithm; `None` if the graph has a cycle.
    fn topo_order(&self) -> Option<Vec<usize>> {
        let mut deg = self.indegrees();
        // Process ready nodes in index order so the traversal (and
        // every tie-break downstream) is deterministic.
        let mut ready: Vec<usize> = (0..self.nodes.len()).filter(|&i| deg[i] == 0).collect();
        ready.sort_unstable_by_key(|&i| std::cmp::Reverse(i));
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            order.push(n);
            for &(from, to) in &self.edges {
                if from == n {
                    deg[to] -= 1;
                    if deg[to] == 0 {
                        // Keep the ready stack sorted (descending) so
                        // the smallest index pops next.
                        let pos = ready
                            .binary_search_by_key(&std::cmp::Reverse(to), |&i| std::cmp::Reverse(i))
                            .unwrap_or_else(|p| p);
                        ready.insert(pos, to);
                    }
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// True if the happens-before relation has no cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// The critical path: the heaviest chain of happens-before work,
    /// as node indices in causal order. Deterministic — ties prefer
    /// the lower node index. Empty if the graph is cyclic.
    pub fn critical_path(&self) -> Vec<usize> {
        let Some(order) = self.topo_order() else {
            return Vec::new();
        };
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let mut best: Vec<u64> = (0..n).map(|i| self.nodes[i].dur).collect();
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for &v in &order {
            for &(from, to) in &self.edges {
                if to == v {
                    let cand = best[from] + self.nodes[v].dur;
                    let better =
                        cand > best[v] || (cand == best[v] && pred[v].is_some_and(|p| from < p));
                    if better {
                        best[v] = cand;
                        pred[v] = Some(from);
                    }
                }
            }
        }
        let mut end = 0usize;
        for i in 1..n {
            if best[i] > best[end] {
                end = i;
            }
        }
        let mut path = vec![end];
        while let Some(p) = pred[*path.last().unwrap()] {
            path.push(p);
        }
        path.reverse();
        path
    }

    /// Total work on the critical path, in nanoseconds.
    pub fn critical_path_ns(&self) -> Nanos {
        self.critical_path()
            .iter()
            .map(|&i| self.nodes[i].dur)
            .sum()
    }

    /// Summed duration of nodes in `class`.
    pub fn class_ns(&self, class: WorkClass) -> Nanos {
        self.nodes
            .iter()
            .filter(|n| n.class == class)
            .map(|n| n.dur)
            .sum()
    }

    /// Leaked nodes that sit on the critical path — the smoking gun a
    /// leak report points at.
    pub fn leaks_on_path(&self) -> Vec<usize> {
        self.critical_path()
            .into_iter()
            .filter(|&i| self.nodes[i].class == WorkClass::Leaked)
            .collect()
    }

    /// Renders the DAG and its critical path as text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let path = self.critical_path();
        s.push_str(&format!(
            "causal dag: {} nodes, {} edges, critical path {} ns\n",
            self.nodes.len(),
            self.edges.len(),
            self.critical_path_ns()
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            let mark = if path.contains(&i) { "*" } else { " " };
            s.push_str(&format!(
                " {mark} [{i:>2}] {:<28} {:<8} host{} lane{}  t={:<10} dur={}\n",
                n.label,
                n.class.label(),
                n.host,
                n.lane,
                n.start,
                n.dur
            ));
        }
        s.push_str("  critical path: ");
        s.push_str(
            &path
                .iter()
                .map(|&i| self.nodes[i].label.clone())
                .collect::<Vec<_>>()
                .join(" -> "),
        );
        s.push('\n');
        s
    }
}

// ---------------------------------------------------------------------------
// Perfetto / Chrome trace-event export
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exports DAGs as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` open directly). Each node becomes a complete
/// (`"ph":"X"`) slice on its host's process track — lane 0 is the
/// critical lane, lane 1 the deferred lane — and each happens-before
/// edge becomes a flow arrow (`"ph":"s"`/`"f"`). Timestamps are
/// microseconds with nanosecond precision, per the spec.
pub fn perfetto_trace(dags: &[CritDag]) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut hosts: Vec<u32> = Vec::new();
    let mut extra_lanes: Vec<(u32, u32)> = Vec::new();
    let mut flow_id = 0u64;
    for dag in dags {
        for n in &dag.nodes {
            if !hosts.contains(&n.host) {
                hosts.push(n.host);
            }
            if n.lane >= 2 && !extra_lanes.contains(&(n.host, n.lane)) {
                extra_lanes.push((n.host, n.lane));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"class\":\"{}\"}}}}",
                json_escape(&n.label),
                n.class.label(),
                n.start as f64 / 1000.0,
                (n.dur.max(1)) as f64 / 1000.0,
                n.host,
                n.lane,
                n.class.label()
            ));
        }
        for &(from, to) in dag.edges() {
            let (a, b) = (&dag.nodes[from], &dag.nodes[to]);
            events.push(format!(
                "{{\"name\":\"hb\",\"cat\":\"edge\",\"ph\":\"s\",\"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                flow_id,
                (a.start + a.dur) as f64 / 1000.0,
                a.host,
                a.lane
            ));
            events.push(format!(
                "{{\"name\":\"hb\",\"cat\":\"edge\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}}}",
                flow_id,
                b.start as f64 / 1000.0,
                b.host,
                b.lane
            ));
            flow_id += 1;
        }
    }
    hosts.sort_unstable();
    for h in hosts {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{h},\"args\":{{\"name\":\"node{h}\"}}}}"
        ));
        for (tid, lane) in [(0, "critical path"), (1, "deferred (masked)")] {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{h},\"tid\":{tid},\"args\":{{\"name\":\"{lane}\"}}}}"
            ));
        }
    }
    // Lanes ≥ 2 are real OS threads (the post-drain worker and future
    // pa-shard cores) — name each one its own track.
    extra_lanes.sort_unstable();
    for (h, tid) in extra_lanes {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{h},\"tid\":{tid},\"args\":{{\"name\":\"drain thread {}\"}}}}",
            tid - 1
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

/// Structural well-formedness check for an exported trace: balanced
/// JSON (quotes, escapes, braces, brackets), a top-level object, and a
/// `traceEvents` array. Returns the event count. Hand-rolled — the
/// workspace has no JSON dependency, by design.
pub fn validate_trace_json(s: &str) -> Result<usize, String> {
    let trimmed = s.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("not a top-level JSON object".into());
    }
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut events = 0usize;
    let mut prev: [char; 4] = [' '; 4];
    for c in trimmed.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => stack.push(c),
                '}' if stack.pop() != Some('{') => return Err("unbalanced '}'".into()),
                ']' if stack.pop() != Some('[') => return Err("unbalanced ']'".into()),
                '}' | ']' => {}
                _ => {}
            }
        }
        // Count `"ph"` keys outside any value ambiguity: the exporter
        // always writes them as a 4-char sequence `"ph"`.
        if prev == ['"', 'p', 'h', '"'] && c == ':' {
            events += 1;
        }
        prev = [prev[1], prev[2], prev[3], c];
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed brackets", stack.len()));
    }
    if !trimmed.contains("\"traceEvents\"") {
        return Err("missing traceEvents array".into());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(label: &str, class: WorkClass, start: Nanos, dur: Nanos) -> CritNode {
        CritNode {
            label: label.into(),
            host: 0,
            lane: if class == WorkClass::Masked { 1 } else { 0 },
            class,
            start,
            dur,
        }
    }

    fn sample_dag() -> CritDag {
        let mut d = CritDag::new();
        let send = d.node(n("send", WorkClass::OnPath, 0, 25));
        let wire = d.node(n("wire", WorkClass::OnPath, 25, 30));
        let deliver = d.node(n("deliver", WorkClass::OnPath, 55, 25));
        let post_s = d.node(n("post-send", WorkClass::Masked, 25, 80));
        let post_d = d.node(n("post-deliver", WorkClass::Masked, 80, 50));
        d.edge(send, wire);
        d.edge(wire, deliver);
        d.edge(send, post_s);
        d.edge(deliver, post_d);
        d
    }

    #[test]
    fn dag_is_acyclic_and_path_is_the_heavy_chain() {
        let d = sample_dag();
        assert!(d.is_acyclic());
        // deliver → post-deliver outweighs the pure on-path chain:
        // 25+30+25+50 = 130 vs 25+80 = 105.
        let path = d.critical_path();
        let labels: Vec<&str> = path.iter().map(|&i| d.nodes[i].label.as_str()).collect();
        assert_eq!(labels, ["send", "wire", "deliver", "post-deliver"]);
        assert_eq!(d.critical_path_ns(), 130);
    }

    #[test]
    fn cycles_are_detected() {
        let mut d = sample_dag();
        d.edge(2, 0); // deliver → send: a cycle
        assert!(!d.is_acyclic());
        assert!(d.critical_path().is_empty());
    }

    #[test]
    fn leaks_on_path_are_reported() {
        let mut d = CritDag::new();
        let a = d.node(n("deliver#0", WorkClass::OnPath, 0, 25));
        let leak = d.node(n("drain", WorkClass::Leaked, 25, 130));
        let b = d.node(n("deliver#1", WorkClass::OnPath, 155, 25));
        d.edge(a, leak);
        d.edge(leak, b);
        assert_eq!(d.leaks_on_path(), vec![leak]);
    }

    #[test]
    fn critical_path_is_deterministic_on_ties() {
        // Two equal-weight parallel branches: the lower index wins.
        let mut d = CritDag::new();
        let s = d.node(n("s", WorkClass::OnPath, 0, 10));
        let a = d.node(n("a", WorkClass::OnPath, 10, 20));
        let b = d.node(n("b", WorkClass::OnPath, 10, 20));
        let t = d.node(n("t", WorkClass::OnPath, 30, 10));
        d.edge(s, a);
        d.edge(s, b);
        d.edge(a, t);
        d.edge(b, t);
        assert_eq!(d.critical_path(), vec![s, a, t]);
    }

    #[test]
    fn leak_ledger_merges_and_ranks() {
        let mut a = LeakLedger::default();
        a.bump(
            "window",
            Phase::PostDeliver,
            LeakCause::ArrivalDrain,
            3,
            300,
        );
        a.bump("checksum", Phase::PostSend, LeakCause::EagerPost, 1, 900);
        let mut b = LeakLedger::default();
        b.bump(
            "window",
            Phase::PostDeliver,
            LeakCause::ArrivalDrain,
            2,
            100,
        );
        a.merge(&b);
        assert_eq!(a.total_calls(), 6);
        assert_eq!(a.total_cycle_ns(), 1300);
        let top = a.top().unwrap();
        assert_eq!(
            (top.layer.as_str(), top.cause),
            ("checksum", LeakCause::EagerPost)
        );
    }

    fn priced_row(layer: &str, calls: [u64; 5], ns_per_call: u64) -> PhaseRow {
        let mut r = PhaseRow {
            layer: layer.into(),
            calls,
            ..Default::default()
        };
        for (i, c) in calls.iter().enumerate() {
            r.virt_ns[i] = c * ns_per_call;
        }
        r
    }

    #[test]
    fn masking_ledger_conserves_exactly() {
        let mut row = priced_row("window", [2, 10, 1, 10, 4], 1000);
        // 3 of the post-deliver calls leaked.
        row.leaked_calls[Phase::PostDeliver as usize] = 3;
        row.leaked_virt_ns[Phase::PostDeliver as usize] = 3000;
        let rows = vec![row];
        let ledger = MaskingLedger::from_phases("t", &rows, MaskDomain::Virtual);
        assert!(ledger.conserves(&rows));
        assert_eq!(ledger.on_path_ns(), 3000); // 2 pre-send + 1 pre-deliver
        assert_eq!(ledger.leaked_ns(), 3000);
        assert_eq!(ledger.masked_ns(), 21_000); // 10 + 7 + 4 ticks
        assert_eq!(ledger.total_ns(), 27_000);
        let top = ledger.top_leaked();
        assert_eq!(top[0].0, "window");
        assert_eq!(top[0].1, Phase::PostDeliver);
    }

    #[test]
    fn engine_rows_shift_the_ratio_but_not_conservation() {
        let rows = vec![priced_row("window", [0, 4, 0, 4, 0], 1000)];
        let mut ledger = MaskingLedger::from_phases("t", &rows, MaskDomain::Virtual);
        assert_eq!(ledger.masking_ratio(), 1.0);
        ledger.push_engine("pa/send", Phase::PreSend, WorkClass::OnPath, 4, 8000);
        assert!(
            ledger.conserves(&rows),
            "engine rows are outside the meter check"
        );
        assert!((ledger.masking_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_merge_is_additive() {
        let rows = vec![priced_row("frag", [1, 2, 1, 2, 0], 500)];
        let a = MaskingLedger::from_phases("a", &rows, MaskDomain::Virtual);
        let mut m = MaskingLedger::empty("sum", MaskDomain::Virtual);
        m.merge(&a);
        m.merge(&a);
        assert_eq!(m.total_ns(), 2 * a.total_ns());
        assert_eq!(m.rows.len(), a.rows.len());
    }

    #[test]
    fn perfetto_export_validates() {
        let d = sample_dag();
        let json = perfetto_trace(&[d]);
        let events = validate_trace_json(&json).expect("well-formed");
        // 5 slices + 4*2 flow halves + 1 process + 2 thread metadata.
        assert_eq!(events, 16);
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    }

    #[test]
    fn perfetto_names_drain_thread_lanes() {
        let mut d = CritDag::new();
        d.node(CritNode {
            label: "send-pre".into(),
            host: 0,
            lane: 0,
            class: WorkClass::OnPath,
            start: 0,
            dur: 10,
        });
        d.node(CritNode {
            label: "post-send/checksum".into(),
            host: 0,
            lane: 2,
            class: WorkClass::Masked,
            start: 20,
            dur: 10,
        });
        let json = perfetto_trace(&[d]);
        validate_trace_json(&json).expect("well-formed");
        assert!(
            json.contains("\"tid\":2,\"args\":{\"name\":\"drain thread 1\"}"),
            "{json}"
        );
        // The two fixed lanes keep their names.
        assert!(json.contains("\"name\":\"critical path\""), "{json}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_trace_json("not json").is_err());
        assert!(validate_trace_json("{\"traceEvents\":[}").is_err());
        assert!(validate_trace_json("{\"x\":[]}").is_err(), "no traceEvents");
        assert!(validate_trace_json("{\"traceEvents\":[\"unterminated]}").is_err());
    }
}
