//! Log2-bucketed latency histograms (HDR-style, `u64` buckets).
//!
//! A [`LatencyHisto`] records values (nanoseconds, by convention) into
//! 65 power-of-two buckets: bucket 0 holds exactly 0, bucket *b* holds
//! `[2^(b-1), 2^b)`. Recording is one `leading_zeros` + one add;
//! exact `min`/`max`/`sum` ride along so means and tails stay honest.
//! Histograms merge (for aggregating per-connection or per-node series)
//! and export p50/p90/p99/max summaries.

use std::fmt;

const BUCKETS: usize = 65;

/// A mergeable log2 histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> LatencyHisto {
        LatencyHisto {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Allocation-free, O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (0.0–1.0): the geometric midpoint of
    /// the bucket containing the q-th sample, clamped to the exact
    /// min/max. Bucket resolution bounds the error at 2× — the standard
    /// log2-histogram trade.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let rep = if b == 0 {
                    0
                } else {
                    // Midpoint of [2^(b-1), 2^b).
                    let lo = 1u64 << (b - 1);
                    lo + lo / 2
                };
                return rep.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// One-struct summary for tables and JSON.
    pub fn summary(&self) -> HistoSummary {
        HistoSummary {
            count: self.count,
            min: self.min(),
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max,
        }
    }
}

/// Exported percentile summary of a [`LatencyHisto`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median (bucket-resolution).
    pub p50: u64,
    /// 90th percentile (bucket-resolution).
    pub p90: u64,
    /// 99th percentile (bucket-resolution).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl fmt::Display for HistoSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.0} p50={} p90={} p99={} max={}",
            self.count, self.min, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LatencyHisto::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = LatencyHisto::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert!((h.mean() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_within_bucket_resolution() {
        let mut h = LatencyHisto::new();
        // 100 samples at ~1000 ns, 10 at ~100 µs.
        for _ in 0..100 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let p50 = h.p50();
        assert!((512..=2048).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((65_536..=131_072).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), h.quantile(0.999).max(h.quantile(1.0)));
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        let mut h = LatencyHisto::new();
        h.record(777);
        // min==max clamp makes every quantile exact.
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p99(), 777);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHisto::new();
        let mut b = LatencyHisto::new();
        let mut all = LatencyHisto::new();
        for v in [1u64, 5, 9, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 70_000, 2] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn summary_renders() {
        let mut h = LatencyHisto::new();
        h.record(25_000);
        let s = h.summary().to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p99=25000"), "{s}");
    }
}
