//! Wait-free multi-core telemetry domains.
//!
//! Everything pa-obs measures so far — counters, sketches, phase
//! meters, ledgers — is single-threaded by construction: one owner
//! mutates, the same owner reads. The moment a second thread appears
//! (ROADMAP's pa-shard and the off-core post drain), naive sharing
//! would either lock the hot path or tear the exact reconciliations
//! this repo gates on. A [`TelemetryDomain`] keeps the single-owner
//! discipline *per thread* and makes the cross-thread view explicit:
//!
//! - **hot-path writes are thread-owned**: every `bump`, sketch
//!   `record`, meter fold and stats fold goes to plain fields owned by
//!   the domain's thread — zero atomics, zero locks, zero allocation
//!   on the recording path;
//! - **publication is a seqlock snapshot**: [`TelemetryDomain::publish`]
//!   copies the POD counters into the domain's shared
//!   [`DomainCell`] under a seqlock-style sequence (odd = write in
//!   progress) and freezes the heavy state (meter shards, stats rows,
//!   sketch shard, ledger) into an epoch-stamped [`DomainView`] behind
//!   a mutex that is touched *only* at publish/collect time — never
//!   per record;
//! - **cross-thread events ride an SPSC ring**: journey/handoff/drain
//!   events go over a bounded wait-free [`crate::spsc`] channel; a
//!   full ring refuses (counted in
//!   [`DomainCounter::EventsRefused`]) rather than blocking the
//!   producing thread;
//! - **global snapshots are epoch-consistent**: a
//!   [`SnapshotCoordinator`] advances a shared epoch, each domain
//!   publishes a frozen view stamped with it, and
//!   [`SnapshotCoordinator::collect`] merges views only once every
//!   domain has reached the epoch (or retired). Ledger invariants —
//!   `delivery_balanced`, `rejects_reconcile`, masking conservation —
//!   are asserted on the merged [`GlobalSnapshot`], never on a torn
//!   intermediate.
//!
//! The merge story leans on PR 6's exactness: sketch shards merge with
//! the canonical-form `==` reconciliation, meter shards are *deltas*
//! that partition the source meters (each thread folds
//! `current − checkpoint` around its own work, so handoff boundaries
//! are consistent cuts), and per-domain [`MaskingLedger`]s merge into
//! one ledger that conserves exactly against the merged phase table.

use crate::critpath::MaskingLedger;
use crate::event::Nanos;
use crate::reject::{RejectBucket, RejectReason};
use crate::sketch::{QuantileSketch, SketchConfig};
use crate::snapshot::MetricsSnapshot;
use crate::spsc::{self, ChannelStats, Consumer, Producer};
use crate::xray::{Phase, PhaseMeter, PhaseRow};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What a cross-thread [`DomainEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainEventKind {
    /// A job (e.g. a connection's pending post work) was handed to
    /// another thread. `job` is the handoff sequence number.
    HandoffSent {
        /// Handoff sequence number (shared with the receiving side).
        job: u64,
    },
    /// The owning thread picked a handed-off job up.
    HandoffReceived {
        /// Handoff sequence number.
        job: u64,
    },
    /// A drain batch started.
    DrainStart {
        /// Handoff sequence number being drained.
        job: u64,
    },
    /// A drain batch finished.
    DrainDone {
        /// Handoff sequence number drained.
        job: u64,
        /// Post-send phases the batch executed.
        post_sends: u64,
        /// Post-deliver phases the batch executed.
        post_delivers: u64,
    },
    /// The domain published a view for `epoch`.
    Published {
        /// The epoch stamped on the published view.
        epoch: u64,
    },
}

/// One cross-thread telemetry event: fixed-size, `Copy`, cheap enough
/// for the wait-free ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainEvent {
    /// Logical time on the emitting thread.
    pub at: Nanos,
    /// The emitting domain's id.
    pub domain: u32,
    /// Per-domain emission sequence number (gap-free; a gap in the
    /// collected stream means the ring refused — cross-check
    /// [`DomainCounter::EventsRefused`]).
    pub seq: u64,
    /// What happened.
    pub kind: DomainEventKind,
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The POD counters every domain publishes through the seqlock. Fixed
/// slots so the shared cell is a flat atomic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainCounter {
    /// Telemetry record operations (sketch samples, meter folds).
    Records = 0,
    /// Jobs handed *out* to another domain's thread.
    HandoffsOut = 1,
    /// Jobs received from another domain's thread.
    HandoffsIn = 2,
    /// Drain batches executed (e.g. `process_pending` calls).
    DrainBatches = 3,
    /// Post-send phases executed on this domain's thread.
    PostSendPhases = 4,
    /// Post-deliver phases executed on this domain's thread.
    PostDeliverPhases = 5,
    /// Events successfully enqueued on the SPSC ring.
    EventsEmitted = 6,
    /// Events refused by a full SPSC ring (bounded, never blocking —
    /// the refusal is the accounting).
    EventsRefused = 7,
    /// Flight-recorder points dropped *by this domain's recorder* (the
    /// per-domain overflow accounting; the merged snapshot's global
    /// drop count is exactly the sum of these).
    RecorderDrops = 8,
    /// Views published.
    Publishes = 9,
    /// Wire bursts processed (one bump per batched ingest/flush cycle —
    /// `BurstFrames / Bursts` is the achieved batching factor).
    Bursts = 10,
    /// Frames carried by those bursts.
    BurstFrames = 11,
}

impl DomainCounter {
    /// All counters, in slot order.
    pub const ALL: [DomainCounter; 12] = [
        DomainCounter::Records,
        DomainCounter::HandoffsOut,
        DomainCounter::HandoffsIn,
        DomainCounter::DrainBatches,
        DomainCounter::PostSendPhases,
        DomainCounter::PostDeliverPhases,
        DomainCounter::EventsEmitted,
        DomainCounter::EventsRefused,
        DomainCounter::RecorderDrops,
        DomainCounter::Publishes,
        DomainCounter::Bursts,
        DomainCounter::BurstFrames,
    ];

    /// Number of counter slots.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric name.
    pub fn label(self) -> &'static str {
        match self {
            DomainCounter::Records => "records",
            DomainCounter::HandoffsOut => "handoffs_out",
            DomainCounter::HandoffsIn => "handoffs_in",
            DomainCounter::DrainBatches => "drain_batches",
            DomainCounter::PostSendPhases => "post_send_phases",
            DomainCounter::PostDeliverPhases => "post_deliver_phases",
            DomainCounter::EventsEmitted => "events_emitted",
            DomainCounter::EventsRefused => "events_refused",
            DomainCounter::RecorderDrops => "recorder_drops",
            DomainCounter::Publishes => "publishes",
            DomainCounter::Bursts => "bursts",
            DomainCounter::BurstFrames => "burst_frames",
        }
    }
}

// ---------------------------------------------------------------------------
// The shared cell
// ---------------------------------------------------------------------------

/// The cross-thread face of one domain: a seqlock-published counter
/// array plus the mutex-guarded frozen view. The owning thread writes;
/// any thread may read.
pub struct DomainCell {
    label: String,
    id: u32,
    /// Seqlock sequence: odd while the owner is writing the counters.
    seq: AtomicU64,
    counters: [AtomicU64; DomainCounter::COUNT],
    /// Epoch of the most recently published view.
    published_epoch: AtomicU64,
    /// Set by [`TelemetryDomain::retire`]: the view is final; collects
    /// stop waiting for newer epochs from this domain.
    retired: AtomicBool,
    view: Mutex<Option<DomainView>>,
}

impl DomainCell {
    fn new(label: &str, id: u32) -> DomainCell {
        DomainCell {
            label: label.to_string(),
            id,
            seq: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            published_epoch: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            view: Mutex::new(None),
        }
    }

    /// The domain's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The domain's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Epoch of the most recently published view (0 = none yet).
    pub fn published_epoch(&self) -> u64 {
        self.published_epoch.load(Ordering::Acquire)
    }

    /// True once the owner has retired the domain.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Torn-free live read of the published counters: the seqlock
    /// read protocol (retry while the sequence is odd or moved). The
    /// payload slots are atomics, so the racing loads are defined; the
    /// fences order them against the sequence checks. Readers may lag
    /// the owner's thread-local counters until its next flush — they
    /// can never observe a half-written set.
    pub fn read_counters(&self) -> [u64; DomainCounter::COUNT] {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let mut out = [0u64; DomainCounter::COUNT];
                for (slot, v) in self.counters.iter().zip(out.iter_mut()) {
                    *v = slot.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return out;
                }
            }
            // One writer, short critical section — but on a single
            // hardware thread a spin would starve the preempted
            // writer, so yield instead.
            std::thread::yield_now();
        }
    }

    /// One published counter.
    pub fn read_counter(&self, c: DomainCounter) -> u64 {
        self.read_counters()[c as usize]
    }

    /// A clone of the most recently published frozen view.
    pub fn view(&self) -> Option<DomainView> {
        self.view.lock().expect("domain view poisoned").clone()
    }
}

impl std::fmt::Debug for DomainCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainCell")
            .field("label", &self.label)
            .field("id", &self.id)
            .field("published_epoch", &self.published_epoch())
            .field("retired", &self.is_retired())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The frozen view
// ---------------------------------------------------------------------------

/// One domain's epoch-stamped frozen state: what
/// [`SnapshotCoordinator::collect`] merges. Built only at publish
/// time, cloned only at collect time.
#[derive(Debug, Clone)]
pub struct DomainView {
    /// The domain's id.
    pub domain: u32,
    /// The domain's label.
    pub label: String,
    /// Epoch this view was published for.
    pub epoch: u64,
    /// The owner's logical clock at publish.
    pub at: Nanos,
    /// The POD counters at publish.
    pub counters: [u64; DomainCounter::COUNT],
    /// Per-layer [`PhaseMeter`] *deltas* folded into this domain (the
    /// shard of the source meters this thread's work accounts for).
    pub meters: Vec<(String, PhaseMeter)>,
    /// Accumulated stats rows (e.g. `ConnStats` deltas folded around
    /// this thread's work), keyed `(scope, name)`.
    pub stats: MetricsSnapshot,
    /// This domain's sketch shard.
    pub sketch: QuantileSketch,
    /// This domain's masking-ledger shard, if the host built one.
    pub ledger: Option<MaskingLedger>,
}

impl DomainView {
    /// One counter.
    pub fn counter(&self, c: DomainCounter) -> u64 {
        self.counters[c as usize]
    }
}

// ---------------------------------------------------------------------------
// The owner handle
// ---------------------------------------------------------------------------

/// The thread-owned recording handle of one domain. `Send` (it moves
/// to its worker thread once) but deliberately not `Sync`/`Clone`:
/// exactly one thread records into a domain at a time — that is the
/// ownership rule that keeps the hot path free of atomics.
pub struct TelemetryDomain {
    cell: Arc<DomainCell>,
    epoch: Arc<AtomicU64>,
    counters: [u64; DomainCounter::COUNT],
    meters: Vec<(String, PhaseMeter)>,
    stats: MetricsSnapshot,
    sketch: QuantileSketch,
    ledger: Option<MaskingLedger>,
    events: Producer<DomainEvent>,
    event_seq: u64,
    last_published_epoch: u64,
    now: Nanos,
}

impl TelemetryDomain {
    /// The domain's id (stamped on events and views).
    pub fn id(&self) -> u32 {
        self.cell.id
    }

    /// The domain's label.
    pub fn label(&self) -> &str {
        &self.cell.label
    }

    /// The shared cell (for registering with dashboards).
    pub fn cell(&self) -> &Arc<DomainCell> {
        &self.cell
    }

    /// Sets the owner's logical clock (stamped on events and views).
    pub fn set_now(&mut self, now: Nanos) {
        self.now = now;
    }

    /// Increments a counter by 1. Thread-local; no atomics.
    #[inline]
    pub fn bump(&mut self, c: DomainCounter) {
        self.counters[c as usize] += 1;
    }

    /// Adds `n` to a counter. Thread-local; no atomics.
    #[inline]
    pub fn add(&mut self, c: DomainCounter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// The owner's live value of a counter (includes unpublished
    /// increments).
    pub fn get(&self, c: DomainCounter) -> u64 {
        self.counters[c as usize]
    }

    /// Records one value into the domain's sketch shard. One
    /// logarithm, one bucket bump — the same cost as a single-threaded
    /// [`QuantileSketch::record`], because it *is* one.
    #[inline]
    pub fn record_value(&mut self, v: u64) {
        self.counters[DomainCounter::Records as usize] += 1;
        self.sketch.record(v);
    }

    /// Folds a [`PhaseMeter`] *delta* into this domain's shard for
    /// `layer`. Callers bracket their own work:
    /// `let before = meter; …work…; domain.absorb_meter(layer,
    /// &meter.delta_since(&before))` — the deltas partition the source
    /// meter exactly, so merged conservation stays `==`.
    pub fn absorb_meter(&mut self, layer: &str, delta: &PhaseMeter) {
        if delta.total_calls() == 0 && delta.total_cycle_ns() == 0 {
            return;
        }
        self.counters[DomainCounter::Records as usize] += 1;
        self.counters[DomainCounter::PostSendPhases as usize] +=
            delta.calls[Phase::PostSend as usize];
        self.counters[DomainCounter::PostDeliverPhases as usize] +=
            delta.calls[Phase::PostDeliver as usize];
        if let Some((_, m)) = self.meters.iter_mut().find(|(n, _)| n == layer) {
            m.absorb(delta);
        } else {
            let mut m = PhaseMeter::default();
            m.absorb(delta);
            self.meters.push((layer.to_string(), m));
        }
    }

    /// Adds `value` to the `(scope, name)` stats row — the fold target
    /// for `ConnStats` deltas bracketing this thread's work.
    pub fn add_stat(&mut self, scope: &str, name: &str, value: u64) {
        if value != 0 {
            self.stats.add(scope, name, value);
        }
    }

    /// The meter shards folded into this domain so far, by layer.
    pub fn meters(&self) -> &[(String, PhaseMeter)] {
        &self.meters
    }

    /// The domain's masking-ledger shard, if one was merged in.
    pub fn ledger(&self) -> Option<&MaskingLedger> {
        self.ledger.as_ref()
    }

    /// Merges a masking-ledger shard into this domain's ledger.
    pub fn merge_ledger(&mut self, shard: &MaskingLedger) {
        match &mut self.ledger {
            Some(l) => l.merge(shard),
            None => self.ledger = Some(shard.clone()),
        }
    }

    /// Emits one cross-thread event on the domain's SPSC ring. Never
    /// blocks: a full ring refuses and the refusal is counted in
    /// [`DomainCounter::EventsRefused`]. Returns whether the event was
    /// enqueued.
    pub fn emit(&mut self, kind: DomainEventKind) -> bool {
        let ev = DomainEvent {
            at: self.now,
            domain: self.cell.id,
            seq: self.event_seq,
            kind,
        };
        self.event_seq += 1;
        match self.events.push(ev) {
            Ok(()) => {
                self.counters[DomainCounter::EventsEmitted as usize] += 1;
                true
            }
            Err(_) => {
                self.counters[DomainCounter::EventsRefused as usize] += 1;
                false
            }
        }
    }

    /// The event ring's traffic counters.
    pub fn event_stats(&self) -> ChannelStats {
        self.events.stats()
    }

    /// Flushes the POD counters into the shared cell under the seqlock
    /// write protocol (sequence odd → payload stores → sequence even).
    /// Cheap enough for a worker's idle loop; does not touch the heavy
    /// view.
    pub fn flush_counters(&self) {
        let cell = &*self.cell;
        let s = cell.seq.load(Ordering::Relaxed);
        cell.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (slot, &v) in cell.counters.iter().zip(self.counters.iter()) {
            slot.store(v, Ordering::Relaxed);
        }
        cell.seq.store(s + 2, Ordering::Release);
    }

    /// Publishes a frozen [`DomainView`] stamped with the *current*
    /// global epoch: flushes the counters, clones the heavy state into
    /// the cell's mutex (touched only here and at collect — never on
    /// the recording path), and emits a `Published` event.
    pub fn publish(&mut self) -> u64 {
        let epoch = self.epoch.load(Ordering::Acquire);
        self.counters[DomainCounter::Publishes as usize] += 1;
        self.flush_counters();
        let view = DomainView {
            domain: self.cell.id,
            label: self.cell.label.clone(),
            epoch,
            at: self.now,
            counters: self.counters,
            meters: self.meters.clone(),
            stats: self.stats.clone(),
            sketch: self.sketch.clone(),
            ledger: self.ledger.clone(),
        };
        *self.cell.view.lock().expect("domain view poisoned") = Some(view);
        self.cell.published_epoch.store(epoch, Ordering::Release);
        self.last_published_epoch = epoch;
        self.emit(DomainEventKind::Published { epoch });
        epoch
    }

    /// Publishes only if the global epoch has advanced past this
    /// domain's last publish — the call a worker makes once per idle
    /// loop so coordinated snapshots converge without the coordinator
    /// ever touching the worker's thread-local state.
    pub fn maybe_publish(&mut self) -> bool {
        if self.epoch.load(Ordering::Acquire) > self.last_published_epoch {
            self.publish();
            true
        } else {
            false
        }
    }

    /// Final publish + retired flag: collects stop waiting for newer
    /// epochs from this domain. Call on worker shutdown.
    pub fn retire(&mut self) {
        self.publish();
        self.cell.retired.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for TelemetryDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryDomain")
            .field("label", &self.cell.label)
            .field("id", &self.cell.id)
            .field("last_published_epoch", &self.last_published_epoch)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------------

/// Default capacity of a domain's event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Creates domains, advances the global epoch, drains the event rings,
/// and assembles epoch-consistent [`GlobalSnapshot`]s. Lives on the
/// coordinating thread (usually the main thread).
pub struct SnapshotCoordinator {
    epoch: Arc<AtomicU64>,
    sketch_config: SketchConfig,
    cells: Vec<Arc<DomainCell>>,
    consumers: Vec<Consumer<DomainEvent>>,
    event_log: Vec<DomainEvent>,
    next_id: u32,
}

impl SnapshotCoordinator {
    /// A coordinator whose domains share `sketch_config` (shards must
    /// agree on shape for the exact merge).
    pub fn new(sketch_config: SketchConfig) -> SnapshotCoordinator {
        SnapshotCoordinator {
            epoch: Arc::new(AtomicU64::new(0)),
            sketch_config,
            cells: Vec::new(),
            consumers: Vec::new(),
            event_log: Vec::new(),
            next_id: 0,
        }
    }

    /// Creates a new domain with the default event-ring capacity. The
    /// returned handle is the domain's single owner; move it to the
    /// thread that will record into it.
    pub fn domain(&mut self, label: &str) -> TelemetryDomain {
        self.domain_with_capacity(label, DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a new domain with an explicit event-ring capacity.
    pub fn domain_with_capacity(&mut self, label: &str, events: usize) -> TelemetryDomain {
        let id = self.next_id;
        self.next_id += 1;
        let cell = Arc::new(DomainCell::new(label, id));
        self.cells.push(cell.clone());
        let (tx, rx) = spsc::channel(events);
        self.consumers.push(rx);
        TelemetryDomain {
            cell,
            epoch: self.epoch.clone(),
            counters: [0; DomainCounter::COUNT],
            meters: Vec::new(),
            stats: MetricsSnapshot::new(0),
            sketch: QuantileSketch::new(self.sketch_config),
            ledger: None,
            events: tx,
            event_seq: 0,
            last_published_epoch: 0,
            now: 0,
        }
    }

    /// The registered domain cells, in creation order.
    pub fn cells(&self) -> &[Arc<DomainCell>] {
        &self.cells
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the global epoch and returns the new value. Owners
    /// observe it through [`TelemetryDomain::maybe_publish`].
    pub fn advance(&mut self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Drains every domain's event ring into the coordinator's log.
    /// Returns how many events arrived.
    pub fn drain_events(&mut self) -> usize {
        let mut n = 0;
        for rx in &mut self.consumers {
            while let Some(ev) = rx.pop() {
                self.event_log.push(ev);
                n += 1;
            }
        }
        n
    }

    /// The drained events, merged into one deterministic timeline
    /// ordered by `(at, domain, seq)`.
    pub fn events(&self) -> Vec<DomainEvent> {
        let mut all = self.event_log.clone();
        all.sort_by_key(|e| (e.at, e.domain, e.seq));
        all
    }

    /// Tries to assemble a snapshot for `epoch`: succeeds once every
    /// domain has published a view stamped `>= epoch` or retired.
    /// Never blocks; never returns a torn view.
    pub fn try_collect(&mut self, epoch: u64) -> Option<GlobalSnapshot> {
        for cell in &self.cells {
            if !cell.is_retired() && cell.published_epoch() < epoch {
                return None;
            }
        }
        self.drain_events();
        let domains: Vec<DomainView> = self.cells.iter().filter_map(|c| c.view()).collect();
        let at = domains.iter().map(|v| v.at).max().unwrap_or(0);
        Some(GlobalSnapshot {
            epoch,
            at,
            sketch_config: self.sketch_config,
            domains,
            events: self.events(),
        })
    }

    /// Advances the epoch and waits (yielding) until every domain has
    /// published for it, then merges. The calling thread must publish
    /// any domain *it* owns before calling this, and worker threads
    /// must call [`TelemetryDomain::maybe_publish`] in their idle
    /// loops — otherwise this never converges (there is deliberately
    /// no way to force-publish another thread's domain).
    pub fn collect(&mut self, epoch: u64) -> GlobalSnapshot {
        loop {
            if let Some(snap) = self.try_collect(epoch) {
                return snap;
            }
            self.drain_events();
            std::thread::yield_now();
        }
    }
}

impl std::fmt::Debug for SnapshotCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCoordinator")
            .field("epoch", &self.epoch())
            .field("domains", &self.cells.len())
            .field("events_drained", &self.event_log.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The merged snapshot
// ---------------------------------------------------------------------------

/// An epoch-consistent merge of every domain's frozen view. All the
/// cross-domain invariants are asserted here — on consistent cuts,
/// never on live state another thread is mutating.
#[derive(Debug, Clone)]
pub struct GlobalSnapshot {
    /// The epoch the views agree on (retired domains may be older —
    /// their state is final, which is consistent by definition).
    pub epoch: u64,
    /// Max of the views' logical clocks.
    pub at: Nanos,
    sketch_config: SketchConfig,
    /// The per-domain frozen views, in domain-id order of collection.
    pub domains: Vec<DomainView>,
    /// The merged cross-thread event timeline, ordered
    /// `(at, domain, seq)`.
    pub events: Vec<DomainEvent>,
}

impl GlobalSnapshot {
    /// Sum of one counter across domains.
    pub fn counter(&self, c: DomainCounter) -> u64 {
        self.domains.iter().map(|d| d.counters[c as usize]).sum()
    }

    /// The merged stats registry: every domain's rows summed per
    /// `(scope, name)` key.
    pub fn merged_stats(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new(self.at);
        for d in &self.domains {
            for (scope, name, v) in d.stats.iter() {
                out.add(scope, name, v);
            }
        }
        out
    }

    /// The merged per-layer phase meters: every domain's shard
    /// absorbed per layer name.
    pub fn merged_meters(&self) -> Vec<(String, PhaseMeter)> {
        let mut out: Vec<(String, PhaseMeter)> = Vec::new();
        for d in &self.domains {
            for (layer, m) in &d.meters {
                if let Some((_, acc)) = out.iter_mut().find(|(n, _)| n == layer) {
                    acc.absorb(m);
                } else {
                    let mut acc = PhaseMeter::default();
                    acc.absorb(m);
                    out.push((layer.clone(), acc));
                }
            }
        }
        out
    }

    /// The merged sketch: every shard folded with the exact
    /// canonical-form merge, so the result `==` the sketch a single
    /// thread would have built from the pooled samples.
    pub fn merged_sketch(&self) -> QuantileSketch {
        let mut out = QuantileSketch::new(self.sketch_config);
        for d in &self.domains {
            out.merge(&d.sketch);
        }
        out
    }

    /// The merged masking ledger, if any domain carried a shard.
    pub fn merged_ledger(&self) -> Option<MaskingLedger> {
        let mut it = self.domains.iter().filter_map(|d| d.ledger.as_ref());
        let first = it.next()?;
        let mut out = first.clone();
        out.scope = "merged".to_string();
        for shard in it {
            out.merge(shard);
        }
        Some(out)
    }

    /// Builds the merged phase table from [`merged_meters`]
    /// (GlobalSnapshot::merged_meters), pricing each `(layer, phase)`
    /// invocation with `price` (pass the cost model's `phase_cost`; a
    /// `|_, _| 0` prices nothing and leaves only cycle columns). The
    /// table a merged ledger's `conserves` runs against.
    pub fn phase_rows(&self, price: impl Fn(&str, Phase) -> u64) -> Vec<PhaseRow> {
        price_meters(&self.merged_meters(), price)
    }

    /// The delivery-accounting invariant on the *merged* rows for
    /// `scope`: `frames_in == fast_deliveries + slow_deliveries +
    /// drops_unknown_cookie + drops_malformed`. Meaningful only on a
    /// consistent cut, which is what this snapshot is.
    pub fn delivery_balanced(&self, scope: &str) -> bool {
        let s = self.merged_stats();
        let g = |name: &str| s.get(scope, name).unwrap_or(0);
        g("frames_in")
            == g("fast_deliveries")
                + g("slow_deliveries")
                + g("drops_unknown_cookie")
                + g("drops_malformed")
    }

    /// The fine-vs-coarse reject invariant on the merged rows for
    /// `scope` (mirrors `ConnStats::rejects_reconcile`, reconstructed
    /// from the `reject_*` metric rows).
    pub fn rejects_reconcile(&self, scope: &str) -> bool {
        let s = self.merged_stats();
        let g = |name: &str| s.get(scope, name).unwrap_or(0);
        let bucket = |b: RejectBucket| -> u64 {
            RejectReason::ALL
                .iter()
                .filter(|r| r.bucket() == b)
                .map(|r| g(r.metric_name()))
                .sum()
        };
        bucket(RejectBucket::Cookie) == g("drops_unknown_cookie")
            && bucket(RejectBucket::Malformed) == g("drops_malformed")
            && bucket(RejectBucket::Layer) <= g("drops_by_layer")
            && bucket(RejectBucket::Send) <= g("drops_send_rejected")
            && bucket(RejectBucket::Netif) == 0
    }

    /// The per-domain flight-recorder overflow accounting: the global
    /// drop count *is* the sum of the per-domain
    /// [`DomainCounter::RecorderDrops`] counters, and this checks each
    /// domain's `(scope, "points_dropped")` stats rows agree with its
    /// counter — so a racing shared counter can never hide a drop.
    pub fn recorder_drops_reconcile(&self) -> bool {
        self.domains.iter().all(|d| {
            let rows: u64 = d
                .stats
                .iter()
                .filter(|(_, name, _)| *name == "points_dropped")
                .map(|(_, _, v)| v)
                .sum();
            rows == d.counters[DomainCounter::RecorderDrops as usize]
        })
    }

    /// Total recorder drops across domains (the merged "global" drop
    /// count).
    pub fn recorder_drops(&self) -> u64 {
        self.counter(DomainCounter::RecorderDrops)
    }

    /// Events that never made it onto a ring (refused by a full ring
    /// and counted by the producing domain). 0 means the collected
    /// event timeline is complete.
    pub fn events_lost(&self) -> u64 {
        self.counter(DomainCounter::EventsRefused)
    }

    /// Renders the per-domain counter table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "global snapshot @ epoch {} ({} domains, {} events)",
            self.epoch,
            self.domains.len(),
            self.events.len()
        );
        for d in &self.domains {
            let _ = writeln!(s, "  domain {} ({}) @ {} ns", d.domain, d.label, d.at);
            for c in DomainCounter::ALL {
                let v = d.counters[c as usize];
                if v != 0 {
                    let _ = writeln!(s, "    {:<22} {:>10}", c.label(), v);
                }
            }
        }
        s
    }
}

/// Prices a set of per-layer meter shards into a phase table: each
/// `(layer, phase)` invocation costs `price(layer, phase)` virtual ns
/// (cycle columns pass through unpriced). Pricing is linear in calls,
/// so pricing per-domain delta shards and summing equals pricing the
/// summed meters — the identity that keeps merged masking-ledger
/// conservation an exact `==`. A thread builds its own ledger shard
/// with `MaskingLedger::from_phases(label, &price_meters(domain
/// .meters(), price), MaskDomain::Virtual)`.
pub fn price_meters(
    meters: &[(String, PhaseMeter)],
    price: impl Fn(&str, Phase) -> u64,
) -> Vec<PhaseRow> {
    meters
        .iter()
        .map(|(layer, m)| {
            let mut row = PhaseRow {
                layer: layer.clone(),
                calls: m.calls,
                cycle_ns: m.cycle_ns,
                leaked_calls: m.leaked_calls,
                leaked_cycle_ns: m.leaked_cycle_ns,
                ..Default::default()
            };
            for phase in Phase::ALL {
                let unit = price(layer, phase);
                let i = phase as usize;
                row.virt_ns[i] = row.calls[i] * unit;
                row.leaked_virt_ns[i] = row.leaked_calls[i] * unit;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::MaskDomain;

    fn coordinator() -> SnapshotCoordinator {
        SnapshotCoordinator::new(SketchConfig::default_scope())
    }

    #[test]
    fn counters_publish_through_the_seqlock() {
        let mut co = coordinator();
        let mut d = co.domain("main");
        d.bump(DomainCounter::Records);
        d.add(DomainCounter::HandoffsOut, 4);
        assert_eq!(co.cells()[0].read_counter(DomainCounter::Records), 0);
        d.flush_counters();
        assert_eq!(co.cells()[0].read_counter(DomainCounter::Records), 1);
        assert_eq!(co.cells()[0].read_counter(DomainCounter::HandoffsOut), 4);
    }

    #[test]
    fn collect_waits_for_the_epoch() {
        let mut co = coordinator();
        let mut d = co.domain("main");
        d.publish();
        let e = co.advance();
        assert!(co.try_collect(e).is_none(), "stale view must not collect");
        d.publish();
        let snap = co.try_collect(e).expect("published at epoch");
        assert_eq!(snap.epoch, e);
        assert_eq!(snap.domains.len(), 1);
    }

    #[test]
    fn retired_domains_stop_blocking_collects() {
        let mut co = coordinator();
        let mut a = co.domain("main");
        let mut b = co.domain("drain");
        b.bump(DomainCounter::DrainBatches);
        b.retire();
        let e = co.advance();
        a.publish();
        let snap = co.try_collect(e).expect("retired view is final");
        assert_eq!(snap.counter(DomainCounter::DrainBatches), 1);
    }

    #[test]
    fn merged_sketch_equals_pooled_sketch() {
        let mut co = coordinator();
        let mut a = co.domain("a");
        let mut b = co.domain("b");
        let mut pooled = QuantileSketch::new(SketchConfig::default_scope());
        for i in 0..500u64 {
            let v = 1_000 + i * 37;
            pooled.record(v);
            if i % 2 == 0 {
                a.record_value(v);
            } else {
                b.record_value(v);
            }
        }
        a.publish();
        b.publish();
        let snap = co.try_collect(0).unwrap();
        assert_eq!(snap.merged_sketch(), pooled, "exact shard merge");
        assert_eq!(snap.counter(DomainCounter::Records), 500);
    }

    #[test]
    fn meter_deltas_partition_and_merge_exactly() {
        let mut co = coordinator();
        let mut a = co.domain("pre");
        let mut b = co.domain("post");
        // One source meter mutated in two bracketed windows.
        let mut meter = PhaseMeter::default();
        let cp0 = meter;
        meter.record(Phase::PreSend, Some(100));
        meter.record(Phase::PreSend, Some(100));
        let cp1 = meter;
        a.absorb_meter("window", &meter.delta_since(&cp0));
        meter.record(Phase::PostSend, Some(300));
        b.absorb_meter("window", &meter.delta_since(&cp1));
        a.publish();
        b.publish();
        let snap = co.try_collect(0).unwrap();
        let merged = snap.merged_meters();
        assert_eq!(merged.len(), 1);
        let (_, m) = &merged[0];
        assert_eq!(m.calls, meter.calls, "deltas partition the source");
        assert_eq!(m.cycle_ns, meter.cycle_ns);
    }

    #[test]
    fn merged_ledger_conserves_against_merged_phase_rows() {
        let mut co = coordinator();
        let mut a = co.domain("pre");
        let mut b = co.domain("post");
        let price = |_: &str, p: Phase| match p {
            Phase::Tick => 0,
            _ => 1_000,
        };
        // Domain a did 3 pre-sends; domain b did 3 post-sends.
        let mut ma = PhaseMeter::default();
        for _ in 0..3 {
            ma.record(Phase::PreSend, None);
        }
        a.absorb_meter("window", &ma);
        let mut mb = PhaseMeter::default();
        for _ in 0..3 {
            mb.record(Phase::PostSend, None);
        }
        b.absorb_meter("window", &mb);
        // Each domain builds its ledger shard from its own priced rows.
        for (d, m) in [(&mut a, &ma), (&mut b, &mb)] {
            let mut row = PhaseRow {
                layer: "window".into(),
                calls: m.calls,
                ..Default::default()
            };
            for phase in Phase::ALL {
                row.virt_ns[phase as usize] = row.calls[phase as usize] * price("window", phase);
            }
            let shard = MaskingLedger::from_phases(d.label(), &[row], MaskDomain::Virtual);
            d.merge_ledger(&shard);
        }
        a.publish();
        b.publish();
        let snap = co.try_collect(0).unwrap();
        let ledger = snap.merged_ledger().expect("both shards present");
        let rows = snap.phase_rows(price);
        assert!(ledger.conserves(&rows), "merged == sum of shards");
        assert_eq!(ledger.on_path_ns(), 3_000);
        assert_eq!(ledger.masked_ns(), 3_000);
    }

    #[test]
    fn events_merge_into_one_timeline() {
        let mut co = coordinator();
        let mut a = co.domain("a");
        let mut b = co.domain("b");
        a.set_now(10);
        a.emit(DomainEventKind::HandoffSent { job: 1 });
        b.set_now(5);
        b.emit(DomainEventKind::HandoffReceived { job: 1 });
        a.set_now(20);
        a.emit(DomainEventKind::DrainStart { job: 1 });
        assert_eq!(co.drain_events(), 3);
        let evs = co.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at, 5, "ordered by (at, domain, seq)");
        assert_eq!(evs[2].kind, DomainEventKind::DrainStart { job: 1 });
    }

    #[test]
    fn full_event_ring_refuses_and_counts() {
        let mut co = coordinator();
        let mut d = co.domain_with_capacity("a", 2);
        assert!(d.emit(DomainEventKind::DrainStart { job: 0 }));
        assert!(d.emit(DomainEventKind::DrainStart { job: 1 }));
        assert!(!d.emit(DomainEventKind::DrainStart { job: 2 }));
        d.publish(); // publish() emits too; ring still full → refused
        let snap = co.try_collect(0).unwrap();
        assert_eq!(snap.counter(DomainCounter::EventsEmitted), 2);
        assert!(snap.events_lost() >= 1);
        assert_eq!(snap.events.len(), 2, "nothing below capacity lost");
    }

    #[test]
    fn delivery_and_reject_invariants_on_merged_rows() {
        let mut co = coordinator();
        let mut a = co.domain("a");
        let mut b = co.domain("b");
        // Split one balanced connection's counters across two domains:
        // each partial view alone would look unbalanced.
        a.add_stat("conn0", "frames_in", 10);
        a.add_stat("conn0", "fast_deliveries", 4);
        b.add_stat("conn0", "slow_deliveries", 4);
        b.add_stat("conn0", "drops_unknown_cookie", 1);
        b.add_stat("conn0", "drops_malformed", 1);
        a.add_stat("conn0", "reject_unknown_cookie", 1);
        b.add_stat("conn0", "reject_truncated_preamble", 1);
        a.publish();
        b.publish();
        let snap = co.try_collect(0).unwrap();
        assert!(snap.delivery_balanced("conn0"));
        assert!(snap.rejects_reconcile("conn0"));
        // A lone domain's view would not balance — the point of
        // asserting on the merged cut only.
        let partial = GlobalSnapshot {
            domains: vec![snap.domains[0].clone()],
            ..snap.clone()
        };
        assert!(!partial.delivery_balanced("conn0"));
    }

    #[test]
    fn recorder_drop_accounting_is_per_domain_and_sums() {
        let mut co = coordinator();
        let mut a = co.domain("a");
        let mut b = co.domain("b");
        a.add(DomainCounter::RecorderDrops, 3);
        a.add_stat("recorder/a", "points_dropped", 3);
        b.add(DomainCounter::RecorderDrops, 2);
        b.add_stat("recorder/b", "points_dropped", 2);
        a.publish();
        b.publish();
        let snap = co.try_collect(0).unwrap();
        assert_eq!(snap.recorder_drops(), 5, "global = sum of per-domain");
        assert!(snap.recorder_drops_reconcile());
        // A domain under-reporting its rows is caught.
        let mut bad = snap.clone();
        bad.domains[0].counters[DomainCounter::RecorderDrops as usize] += 1;
        assert!(!bad.recorder_drops_reconcile());
    }

    #[test]
    fn cross_thread_publish_collect_converges() {
        let mut co = coordinator();
        let mut main = co.domain("main");
        let mut worker = co.domain("worker");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_w = stop.clone();
        let t = std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop_w.load(Ordering::Acquire) {
                worker.bump(DomainCounter::DrainBatches);
                n += 1;
                worker.maybe_publish();
                std::thread::yield_now();
            }
            worker.retire();
            n
        });
        let e = co.advance();
        main.publish();
        let snap = co.collect(e);
        assert_eq!(snap.epoch, e);
        stop.store(true, Ordering::Release);
        let n = t.join().unwrap();
        // After retirement the final view carries every batch.
        let fin = co.try_collect(e).unwrap();
        assert_eq!(fin.counter(DomainCounter::DrainBatches), n);
    }

    #[test]
    fn render_lists_nonzero_counters() {
        let mut co = coordinator();
        let mut d = co.domain("drain");
        d.add(DomainCounter::DrainBatches, 7);
        d.publish();
        let snap = co.try_collect(0).unwrap();
        let s = snap.render();
        assert!(s.contains("drain_batches"), "{s}");
        assert!(s.contains("7"), "{s}");
        assert!(!s.contains("handoffs_in"), "zero rows omitted: {s}");
    }
}
