//! Shared timer-overhead calibration.
//!
//! Every wall-clock span in the workspace is measured the same way: an
//! `Instant::now()` before the work and an `elapsed()` after it. The
//! pair itself costs a few tens of nanoseconds, which is noise on a
//! millisecond bench row but a systematic bias on a short phase span.
//! The bench harness (pa-bench's `micro`) and the per-layer cycle
//! meters ([`crate::PhaseMeter`] via `Connection::enable_cycle_meter`)
//! must subtract the *same* calibrated overhead or their numbers stop
//! being comparable — so the calibration loop lives here, once.
//!
//! Calibration is itself a measurement: run it once per process (or
//! per bench) and reuse the result, do not re-run it per span.

use std::time::{Duration, Instant};

/// Calibration iterations. Large enough to average out scheduler
/// noise, small enough to finish in well under a millisecond.
pub const CALIBRATION_ROUNDS: u32 = 16 * 1024;

/// Measures the cost of one empty `Instant::now()` → `elapsed()` span,
/// averaged over [`CALIBRATION_ROUNDS`] back-to-back probes.
pub fn span_overhead() -> Duration {
    let mut d = Duration::ZERO;
    for _ in 0..CALIBRATION_ROUNDS {
        let t = Instant::now();
        d += t.elapsed();
    }
    d / CALIBRATION_ROUNDS
}

/// [`span_overhead`] in whole nanoseconds — the form the
/// [`crate::PhaseMeter`] bias field wants.
pub fn span_overhead_ns() -> u64 {
    span_overhead().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_small_and_sane() {
        let ns = span_overhead_ns();
        // An empty span is tens of nanoseconds on anything modern; a
        // microsecond would mean the clock itself is broken enough
        // that de-biasing is the least of our problems.
        assert!(ns < 100_000, "span overhead {ns} ns is implausible");
    }

    #[test]
    fn calibration_is_reusable() {
        // Two calibrations agree to within an order of magnitude —
        // i.e. the number is a property of the clock, not of the run.
        let a = span_overhead_ns().max(1);
        let b = span_overhead_ns().max(1);
        assert!(a / b < 50 && b / a < 50, "unstable calibration: {a} vs {b}");
    }
}
