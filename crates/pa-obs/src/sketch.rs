//! Mergeable log-bucketed quantile sketches (DDSketch-style).
//!
//! [`LatencyHisto`](crate::LatencyHisto) is exact but its log2 buckets
//! bound relative error at 2×, and the per-connection `Attribution`
//! multisets behind it assume one book per connection. Neither survives
//! the ROADMAP's high-cardinality items (pa-shard's 10⁶ connections,
//! 1000-member groups). [`QuantileSketch`] is the aggregate-path
//! replacement: a fixed-size, γ-log-bucketed sketch in the DDSketch
//! family (Masson, Rim & Lee, VLDB '19) whose merge is **exactly**
//! associative and commutative, so per-connection sketches roll up to
//! per-endpoint and cluster level in any order and always produce the
//! same bytes.
//!
//! ## Canonical form
//!
//! A value `v ≥ 1` lands in bucket `key(v) = ⌈log_γ v⌉` where
//! `γ = (1+α)/(1−α)` for a configured relative accuracy `α`; zero gets
//! its own exact counter. The sketch keeps a **contiguous window of at
//! most `max_buckets` keys anchored at the highest key seen**: when the
//! span overflows, everything below `hi − max_buckets + 1` collapses
//! into the window's lowest bucket and the [`collapsed`] counter says
//! how many samples lost their bucket. Because the anchor is the
//! maximum key of the *multiset* (not of any insertion order), the
//! final `(buckets, base_key, collapsed)` state is a pure function of
//! the recorded multiset — which is what makes merge associative,
//! commutative, and idempotent on empty, and lets the property tests
//! assert plain `==` over merge trees.
//!
//! ## Error model
//!
//! For any sample that kept its bucket, a reported quantile `v̂`
//! satisfies `|v̂ − v| ≤ α·v` against the true sample `v` at that rank.
//! Collapsed samples (see [`QuantileSketch::collapsed`]) surrender that
//! bound on the low tail only — they are never silently dropped, and
//! the exact `min`/`max`/`count`/`sum` ride along regardless.

use std::fmt;

/// Shape of a [`QuantileSketch`]: relative accuracy and memory bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Relative value accuracy α (0 < α < 1). Buckets grow by
    /// `γ = (1+α)/(1−α)`.
    pub alpha: f64,
    /// Hard cap on the contiguous bucket window (≥ 2). The window
    /// anchors at the largest sample, so what it bounds is the
    /// max/min *spread*: 512 buckets at α = 1% cover a ≈ 2.8×10⁴
    /// dynamic range before low outliers collapse into the lowest
    /// bucket (counted, never silent).
    pub max_buckets: usize,
}

impl SketchConfig {
    /// The pa-scope default: 1% relative accuracy, 512-bucket window
    /// (4 KiB of buckets per sketch, ≈ 2.8×10⁴ dynamic range).
    pub fn default_scope() -> SketchConfig {
        SketchConfig {
            alpha: 0.01,
            max_buckets: 512,
        }
    }

    /// The bucket growth factor γ.
    pub fn gamma(&self) -> f64 {
        (1.0 + self.alpha) / (1.0 - self.alpha)
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig::default_scope()
    }
}

/// A fixed-size mergeable quantile sketch over `u64` samples
/// (nanoseconds, by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma_ln: f64,
    max_buckets: usize,
    /// Contiguous counts for keys `base_key ..= base_key + len − 1`.
    buckets: Vec<u64>,
    /// Key of `buckets[0]`.
    base_key: i32,
    /// Exact count of zero-valued samples (key space covers `v ≥ 1`).
    zero: u64,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Samples currently resident in the lowest bucket whose true key
    /// is below the window — i.e. samples that lost their α bound.
    collapsed: u64,
}

impl QuantileSketch {
    /// An empty sketch with the given shape.
    pub fn new(cfg: SketchConfig) -> QuantileSketch {
        assert!(
            cfg.alpha > 0.0 && cfg.alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        assert!(cfg.max_buckets >= 2, "need at least two buckets");
        QuantileSketch {
            alpha: cfg.alpha,
            gamma_ln: cfg.gamma().ln(),
            max_buckets: cfg.max_buckets,
            buckets: Vec::new(),
            base_key: 0,
            zero: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            collapsed: 0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> SketchConfig {
        SketchConfig {
            alpha: self.alpha,
            max_buckets: self.max_buckets,
        }
    }

    /// The bucket key a value maps to (`⌈log_γ v⌉`; only defined for
    /// `v ≥ 1`). Exposed so a caller recording one value into several
    /// same-shape sketches (conn → endpoint → cluster roll-up) pays the
    /// logarithm once.
    #[inline]
    pub fn key_of(&self, v: u64) -> i32 {
        debug_assert!(v >= 1);
        // ceil with a tolerance nudge so exact powers of γ stay stable
        // across the fp ladder.
        ((v as f64).ln() / self.gamma_ln - 1e-9).ceil() as i32
    }

    /// Records one sample. O(1) amortized, allocation-free once the
    /// window is grown.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if v == 0 {
            self.zero += 1;
            self.observe_exact(v, 1);
            return;
        }
        let key = self.key_of(v);
        self.observe_exact(v, 1);
        self.insert_count(key, 1);
    }

    /// Records a sample whose key the caller already computed via
    /// [`QuantileSketch::key_of`] on a same-shape sketch.
    #[inline]
    pub fn record_keyed(&mut self, key: i32, v: u64) {
        if v == 0 {
            self.zero += 1;
            self.observe_exact(v, 1);
            return;
        }
        debug_assert_eq!(key, self.key_of(v));
        self.observe_exact(v, 1);
        self.insert_count(key, 1);
    }

    #[inline]
    fn observe_exact(&mut self, v: u64, n: u64) {
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds `n` samples at bucket `key`, maintaining the canonical
    /// window (contiguous, ≤ `max_buckets`, anchored at the highest
    /// key).
    fn insert_count(&mut self, key: i32, n: u64) {
        if self.buckets.is_empty() {
            self.base_key = key;
            self.reserve_total(1);
            self.buckets.push(n);
            return;
        }
        let hi = self.base_key + self.buckets.len() as i32 - 1;
        let m = self.max_buckets as i32;
        if key > hi {
            let lo_bound = key - (m - 1);
            if self.base_key >= lo_bound {
                // Extend upward without folding.
                let new_len = (key - self.base_key + 1) as usize;
                self.reserve_total(new_len);
                self.buckets.resize(new_len, 0);
                *self.buckets.last_mut().expect("nonempty") += n;
            } else {
                // The window slides: everything below `lo_bound` folds
                // into the new lowest bucket. Previously collapsed
                // samples already live in the (folding) lowest bucket,
                // so the counter becomes exactly the folded total —
                // order-independent by construction.
                let cut = (lo_bound - self.base_key) as usize;
                let folded: u64 = self.buckets[..cut.min(self.buckets.len())].iter().sum();
                let keep_from = cut.min(self.buckets.len());
                self.buckets.drain(..keep_from);
                if self.buckets.is_empty() {
                    self.buckets.push(0);
                }
                self.buckets[0] += folded;
                self.collapsed = folded;
                self.base_key = lo_bound;
                let new_len = (key - self.base_key + 1) as usize;
                self.reserve_total(new_len);
                self.buckets.resize(new_len, 0);
                *self.buckets.last_mut().expect("nonempty") += n;
            }
        } else if key >= self.base_key {
            self.buckets[(key - self.base_key) as usize] += n;
        } else {
            let lo_bound = hi - (m - 1);
            if key >= lo_bound {
                // Extend downward; still within the window.
                self.extend_down(key);
                self.buckets[0] += n;
            } else {
                // Below the window: clip into its lowest bucket.
                if self.base_key > lo_bound {
                    self.extend_down(lo_bound);
                }
                self.buckets[0] += n;
                self.collapsed += n;
            }
        }
    }

    fn extend_down(&mut self, new_base: i32) {
        let grow = (self.base_key - new_base) as usize;
        let new_len = self.buckets.len() + grow;
        self.reserve_total(new_len);
        self.buckets.resize(new_len, 0);
        self.buckets.rotate_right(grow);
        self.base_key = new_base;
    }

    /// Grows capacity exactly (never beyond `max_buckets`), keeping
    /// [`QuantileSketch::mem_bytes`] an honest bound.
    fn reserve_total(&mut self, want: usize) {
        debug_assert!(want <= self.max_buckets);
        if want > self.buckets.capacity() {
            let add = want - self.buckets.len();
            self.buckets.reserve_exact(add);
        }
    }

    /// Folds another same-shape sketch into this one. Exactly
    /// associative and commutative: any merge order over the same
    /// multiset of recorded samples yields `==` states.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.config(),
            other.config(),
            "merging differently-shaped sketches"
        );
        if other.count == 0 {
            return;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.buckets.is_empty() {
            return;
        }
        // Insert the highest bucket first so the window settles before
        // lower counts arrive (the result is canonical either way; this
        // just avoids folding twice).
        for (i, &n) in other.buckets.iter().enumerate().rev() {
            if n > 0 {
                self.insert_count(other.base_key + i as i32, n);
            }
        }
        // `other`'s already-collapsed samples: if its lowest bucket
        // survived inside our window they still carry their clipped
        // members (count them); if it fell below our window the insert
        // above already counted all of them via `collapsed += n`.
        if other.base_key >= self.base_key {
            self.collapsed += other.collapsed;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples currently resident in the lowest bucket whose true
    /// bucket fell below the window — the explicit "lost precision"
    /// counter. 0 means every quantile honors the α bound.
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Occupied window width in buckets.
    pub fn window_len(&self) -> usize {
        self.buckets.len()
    }

    /// Heap + inline footprint in bytes (capacity-accurate).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<QuantileSketch>() + self.buckets.capacity() * std::mem::size_of::<u64>()
    }

    /// Worst-case footprint for this shape, for budget admission.
    pub fn mem_bytes_cap(cfg: SketchConfig) -> usize {
        std::mem::size_of::<QuantileSketch>() + cfg.max_buckets * std::mem::size_of::<u64>()
    }

    /// The γ-midpoint representative value of bucket `key`, the point
    /// minimizing worst-case relative error over `(γ^(k−1), γ^k]`.
    pub fn value_of_key(&self, key: i32) -> u64 {
        let edge = (key as f64 * self.gamma_ln).exp();
        let gamma = self.gamma_ln.exp();
        let rep = edge * 2.0 / (1.0 + gamma);
        rep.round().max(1.0) as u64
    }

    /// The value at quantile `q` (0.0–1.0): the representative of the
    /// bucket containing the ⌈q·n⌉-th smallest sample, clamped to the
    /// exact min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        if target <= self.zero {
            return 0;
        }
        let mut cum = self.zero;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let rep = self.value_of_key(self.base_key + i as i32);
                return rep.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets, ascending, as `(upper-edge value, count)` —
    /// the export shape for Prometheus-style cumulative histograms.
    /// The zero bucket (if any) leads with edge 0.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.zero > 0 {
            out.push((0, self.zero));
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let key = self.base_key + i as i32;
                let edge = ((key as f64 * self.gamma_ln).exp()).round().max(1.0) as u64;
                out.push((edge, n));
            }
        }
        out
    }

    /// One-line summary for tables.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.count,
            min: self.min(),
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max,
            collapsed: self.collapsed,
        }
    }
}

/// Exported percentile summary of a [`QuantileSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median (α-resolution).
    pub p50: u64,
    /// 90th percentile (α-resolution).
    pub p90: u64,
    /// 99th percentile (α-resolution).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Samples that lost their α bound to window collapse.
    pub collapsed: u64,
}

impl fmt::Display for SketchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.0} p50={} p90={} p99={} max={}",
            self.count, self.min, self.mean, self.p50, self.p90, self.p99, self.max
        )?;
        if self.collapsed > 0 {
            write!(f, " collapsed={}", self.collapsed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SketchConfig {
        SketchConfig {
            alpha: 0.01,
            max_buckets: 8,
        }
    }

    #[test]
    fn empty_sketch_is_calm() {
        let s = QuantileSketch::new(SketchConfig::default_scope());
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.collapsed(), 0);
    }

    #[test]
    fn single_sample_is_exact() {
        let mut s = QuantileSketch::new(SketchConfig::default_scope());
        s.record(777);
        assert_eq!(s.p50(), 777, "min==max clamp makes quantiles exact");
        assert_eq!(s.p99(), 777);
        assert_eq!(s.sum(), 777);
    }

    #[test]
    fn quantiles_within_alpha() {
        let cfg = SketchConfig::default_scope();
        let mut s = QuantileSketch::new(cfg);
        for v in 1..=10_000u64 {
            s.record(v * 100);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = (q * 10_000.0f64).ceil() as u64 * 100;
            let est = s.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= cfg.alpha + 1e-6, "q={q}: est={est} exact={exact}");
        }
        assert_eq!(s.collapsed(), 0);
    }

    #[test]
    fn window_collapse_is_counted_not_silent() {
        let mut s = QuantileSketch::new(small());
        s.record(1);
        s.record(1 << 40); // forces the window far above key(1)
        assert_eq!(s.count(), 2);
        assert_eq!(s.collapsed(), 1);
        assert!(s.window_len() <= 8);
        // Exact extremes survive collapse.
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1 << 40);
    }

    #[test]
    fn collapse_is_order_independent() {
        let mut a = QuantileSketch::new(small());
        for v in [1u64, 7, 1 << 40, 900, 3] {
            a.record(v);
        }
        let mut b = QuantileSketch::new(small());
        for v in [900u64, 1 << 40, 3, 1, 7] {
            b.record(v);
        }
        assert_eq!(a, b, "canonical state must not depend on record order");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let cfg = small();
        let (mut a, mut b, mut all) = (
            QuantileSketch::new(cfg),
            QuantileSketch::new(cfg),
            QuantileSketch::new(cfg),
        );
        for v in [1u64, 5, 0, 1000, 1 << 30] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 70_000, 2, 1 << 20] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merge_is_idempotent_on_empty() {
        let cfg = SketchConfig::default_scope();
        let mut s = QuantileSketch::new(cfg);
        for v in [9u64, 42, 512] {
            s.record(v);
        }
        let snapshot = s.clone();
        s.merge(&QuantileSketch::new(cfg));
        assert_eq!(s, snapshot);
        let mut empty = QuantileSketch::new(cfg);
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn memory_stays_capped() {
        let cfg = small();
        let mut s = QuantileSketch::new(cfg);
        for v in [1u64, 1 << 10, 1 << 20, 1 << 30, 1 << 40, 1 << 50] {
            for _ in 0..100 {
                s.record(v);
            }
        }
        assert!(s.window_len() <= cfg.max_buckets);
        assert!(s.mem_bytes() <= QuantileSketch::mem_bytes_cap(cfg));
    }

    #[test]
    fn zero_samples_have_their_own_bucket() {
        let mut s = QuantileSketch::new(SketchConfig::default_scope());
        for _ in 0..10 {
            s.record(0);
        }
        s.record(100);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn bucket_counts_cover_every_sample() {
        let mut s = QuantileSketch::new(small());
        for v in [0u64, 1, 50, 50, 1 << 40] {
            s.record(v);
        }
        let total: u64 = s.bucket_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, s.count());
    }
}
