//! Cross-endpoint causal journeys.
//!
//! A *journey* is the life of one wire frame across endpoints: the
//! sender stamps a journey id (and hop counter) into the frame's
//! Message-specific header via the PA's own `add_field`/packet-filter
//! machinery, and both sides emit [`TraceEvent::JourneySend`] /
//! [`TraceEvent::JourneyDeliver`] into their [`TraceRing`]s. This
//! module joins those per-endpoint rings back into causal timelines:
//! for every journey id, the send event and the deliver event form one
//! *hop leg* with a measurable one-way latency.
//!
//! Journey ids are `(origin_tag << 32) | seq`: the origin tag is
//! derived from the sending connection (its cookie), so ids minted by
//! different connections never collide and reconstruction can never
//! pair a send from one connection with a deliver belonging to
//! another (see the pairing proptest in `tests/trace_journeys.rs`).

use crate::event::{Nanos, TraceEvent};
use crate::ring::{merge_timeline, TraceRing};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Composes a journey id from an origin tag and a per-origin sequence.
pub fn journey_id(origin: u32, seq: u32) -> u64 {
    ((origin as u64) << 32) | seq as u64
}

/// The origin tag of a journey id (high 32 bits).
pub fn journey_origin(id: u64) -> u32 {
    (id >> 32) as u32
}

/// The per-origin sequence of a journey id (low 32 bits).
pub fn journey_seq(id: u64) -> u32 {
    (id & 0xFFFF_FFFF) as u32
}

/// Renders a journey id as `origin:seq`.
pub fn render_journey_id(id: u64) -> String {
    format!("{}:{}", journey_origin(id), journey_seq(id))
}

/// One hop of a journey: a send event, optionally joined with the
/// deliver event observed at the far endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopLeg {
    /// Hop counter as stamped on the wire (0 at the origin).
    pub hop: u8,
    /// When the frame left the sender.
    pub sent_at: Nanos,
    /// Ring label (host id) of the sending connection.
    pub sent_conn: u32,
    /// When the frame was accepted by the receiver (`None`: lost, or
    /// the receive event fell off the receiver's ring).
    pub recv_at: Option<Nanos>,
    /// Ring label of the receiving connection.
    pub recv_conn: Option<u32>,
}

impl HopLeg {
    /// One-way latency of this hop, if the hop completed.
    pub fn latency(&self) -> Option<Nanos> {
        self.recv_at.map(|r| r.saturating_sub(self.sent_at))
    }

    /// True if both ends of the hop were observed.
    pub fn is_complete(&self) -> bool {
        self.recv_at.is_some()
    }
}

/// One reconstructed journey: every observed hop of one wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    /// The id stamped into the frame.
    pub id: u64,
    /// Hops in hop-counter order.
    pub hops: Vec<HopLeg>,
}

impl Journey {
    /// True if every hop has both a send and a deliver event.
    pub fn is_complete(&self) -> bool {
        !self.hops.is_empty() && self.hops.iter().all(|h| h.is_complete())
    }

    /// When the journey started (first hop's send).
    pub fn started_at(&self) -> Nanos {
        self.hops.first().map(|h| h.sent_at).unwrap_or(0)
    }

    /// End-to-end latency: last deliver − first send (complete only).
    pub fn total_latency(&self) -> Option<Nanos> {
        if !self.is_complete() {
            return None;
        }
        let first = self.hops.first()?.sent_at;
        let last = self.hops.iter().filter_map(|h| h.recv_at).max()?;
        Some(last.saturating_sub(first))
    }
}

/// All journeys reconstructed from a set of trace rings.
#[derive(Debug, Clone, Default)]
pub struct JourneySet {
    journeys: Vec<Journey>,
    /// Deliver events whose send was never observed (ring overflow,
    /// or a sender traced without a ring).
    pub orphan_delivers: u64,
}

impl JourneySet {
    /// Joins the journey events of `rings` into causal journeys.
    ///
    /// Events are taken from the deterministic merged timeline (ordered
    /// by `(at, conn, seq)`), so the result is independent of the order
    /// events were inserted into the rings, and of the order the rings
    /// are passed in.
    pub fn reconstruct(rings: &[&TraceRing]) -> JourneySet {
        let mut legs: BTreeMap<(u64, u8), HopLeg> = BTreeMap::new();
        let mut orphan_delivers = 0u64;
        for rec in merge_timeline(rings) {
            match rec.event {
                TraceEvent::JourneySend { journey, hop } => {
                    legs.entry((journey, hop)).or_insert(HopLeg {
                        hop,
                        sent_at: rec.at,
                        sent_conn: rec.conn,
                        recv_at: None,
                        recv_conn: None,
                    });
                }
                TraceEvent::JourneyDeliver { journey, hop } => {
                    match legs.get_mut(&(journey, hop)) {
                        // First deliver wins (wire duplicates arrive
                        // later in the merged order).
                        Some(leg) if leg.recv_at.is_none() => {
                            leg.recv_at = Some(rec.at);
                            leg.recv_conn = Some(rec.conn);
                        }
                        Some(_) => {}
                        None => orphan_delivers += 1,
                    }
                }
                _ => {}
            }
        }
        let mut by_id: BTreeMap<u64, Journey> = BTreeMap::new();
        for ((id, _), leg) in legs {
            by_id
                .entry(id)
                .or_insert_with(|| Journey {
                    id,
                    hops: Vec::new(),
                })
                .hops
                .push(leg);
        }
        let mut journeys: Vec<Journey> = by_id.into_values().collect();
        for j in &mut journeys {
            j.hops.sort_by_key(|h| h.hop);
        }
        journeys.sort_by_key(|j| (j.started_at(), j.id));
        JourneySet {
            journeys,
            orphan_delivers,
        }
    }

    /// The journeys, ordered by start time then id.
    pub fn journeys(&self) -> &[Journey] {
        &self.journeys
    }

    /// Looks a journey up by id.
    pub fn get(&self, id: u64) -> Option<&Journey> {
        self.journeys.iter().find(|j| j.id == id)
    }

    /// Number of journeys observed (complete or not).
    pub fn len(&self) -> usize {
        self.journeys.len()
    }

    /// True if no journeys were observed.
    pub fn is_empty(&self) -> bool {
        self.journeys.is_empty()
    }

    /// Number of journeys whose every hop completed.
    pub fn complete_count(&self) -> usize {
        self.journeys.iter().filter(|j| j.is_complete()).count()
    }

    /// Fraction of journeys that completed (1.0 when none observed).
    pub fn completeness(&self) -> f64 {
        if self.journeys.is_empty() {
            return 1.0;
        }
        self.complete_count() as f64 / self.journeys.len() as f64
    }

    /// Renders a per-hop latency waterfall: one line per hop, time
    /// offsets relative to the earliest send, with a proportional bar
    /// showing when within the run the hop was in flight.
    pub fn waterfall(&self) -> String {
        const WIDTH: usize = 40;
        let mut out = String::new();
        if self.journeys.is_empty() {
            out.push_str("(no journeys)\n");
            return out;
        }
        let t0 = self
            .journeys
            .iter()
            .map(|j| j.started_at())
            .min()
            .unwrap_or(0);
        let t1 = self
            .journeys
            .iter()
            .flat_map(|j| j.hops.iter())
            .map(|h| h.recv_at.unwrap_or(h.sent_at))
            .max()
            .unwrap_or(t0);
        let span = (t1 - t0).max(1);
        let _ = writeln!(
            out,
            "{:<12} {:>3} {:>5} {:>12} {:>12}  timeline ({} ns span)",
            "journey", "hop", "path", "sent@ns", "lat ns", span
        );
        for j in &self.journeys {
            for h in &j.hops {
                let path = match h.recv_conn {
                    Some(rc) => format!("{}→{}", h.sent_conn, rc),
                    None => format!("{}→?", h.sent_conn),
                };
                let lat = h
                    .latency()
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "lost".to_string());
                let s = ((h.sent_at - t0) as u128 * WIDTH as u128 / span as u128) as usize;
                let e = ((h.recv_at.unwrap_or(h.sent_at) - t0) as u128 * WIDTH as u128
                    / span as u128) as usize;
                let e = e.min(WIDTH.saturating_sub(1));
                let s = s.min(e);
                let mut bar = String::with_capacity(WIDTH + 2);
                bar.push('|');
                for i in 0..WIDTH {
                    bar.push(if i >= s && i <= e { '#' } else { '.' });
                }
                bar.push('|');
                let _ = writeln!(
                    out,
                    "{:<12} {:>3} {:>5} {:>12} {:>12}  {}",
                    render_journey_id(j.id),
                    h.hop,
                    path,
                    h.sent_at - t0,
                    lat,
                    bar
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with(conn: u32, events: &[(Nanos, TraceEvent)]) -> TraceRing {
        let mut r = TraceRing::new(64);
        r.set_conn(conn);
        for &(at, e) in events {
            r.push(at, e);
        }
        r
    }

    #[test]
    fn id_packs_and_unpacks() {
        let id = journey_id(7, 99);
        assert_eq!(journey_origin(id), 7);
        assert_eq!(journey_seq(id), 99);
        assert_eq!(render_journey_id(id), "7:99");
    }

    #[test]
    fn send_and_deliver_join_into_a_complete_hop() {
        let id = journey_id(1, 1);
        let a = ring_with(
            1,
            &[(
                100,
                TraceEvent::JourneySend {
                    journey: id,
                    hop: 0,
                },
            )],
        );
        let b = ring_with(
            2,
            &[(
                187,
                TraceEvent::JourneyDeliver {
                    journey: id,
                    hop: 0,
                },
            )],
        );
        let set = JourneySet::reconstruct(&[&a, &b]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.complete_count(), 1);
        let j = set.get(id).unwrap();
        assert!(j.is_complete());
        assert_eq!(j.hops[0].latency(), Some(87));
        assert_eq!(j.hops[0].sent_conn, 1);
        assert_eq!(j.hops[0].recv_conn, Some(2));
        assert_eq!(j.total_latency(), Some(87));
    }

    #[test]
    fn lost_frame_leaves_an_incomplete_journey() {
        let id = journey_id(1, 2);
        let a = ring_with(
            1,
            &[(
                100,
                TraceEvent::JourneySend {
                    journey: id,
                    hop: 0,
                },
            )],
        );
        let b = ring_with(2, &[]);
        let set = JourneySet::reconstruct(&[&a, &b]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.complete_count(), 0);
        assert!(set.get(id).unwrap().total_latency().is_none());
        assert!(set.completeness() < 1.0);
    }

    #[test]
    fn duplicate_deliver_keeps_the_first() {
        let id = journey_id(3, 4);
        let a = ring_with(
            1,
            &[(
                10,
                TraceEvent::JourneySend {
                    journey: id,
                    hop: 0,
                },
            )],
        );
        let b = ring_with(
            2,
            &[
                (
                    50,
                    TraceEvent::JourneyDeliver {
                        journey: id,
                        hop: 0,
                    },
                ),
                (
                    60,
                    TraceEvent::JourneyDeliver {
                        journey: id,
                        hop: 0,
                    },
                ),
            ],
        );
        let set = JourneySet::reconstruct(&[&a, &b]);
        assert_eq!(set.get(id).unwrap().hops[0].recv_at, Some(50));
    }

    #[test]
    fn orphan_deliver_is_counted_not_paired() {
        let id = journey_id(9, 9);
        let b = ring_with(
            2,
            &[(
                50,
                TraceEvent::JourneyDeliver {
                    journey: id,
                    hop: 0,
                },
            )],
        );
        let set = JourneySet::reconstruct(&[&b]);
        assert_eq!(set.len(), 0);
        assert_eq!(set.orphan_delivers, 1);
    }

    #[test]
    fn reconstruction_is_ring_order_independent() {
        let id1 = journey_id(1, 1);
        let id2 = journey_id(2, 1);
        let a = ring_with(
            1,
            &[
                (
                    10,
                    TraceEvent::JourneySend {
                        journey: id1,
                        hop: 0,
                    },
                ),
                (
                    95,
                    TraceEvent::JourneyDeliver {
                        journey: id2,
                        hop: 0,
                    },
                ),
            ],
        );
        let b = ring_with(
            2,
            &[
                (
                    12,
                    TraceEvent::JourneySend {
                        journey: id2,
                        hop: 0,
                    },
                ),
                (
                    97,
                    TraceEvent::JourneyDeliver {
                        journey: id1,
                        hop: 0,
                    },
                ),
            ],
        );
        let s1 = JourneySet::reconstruct(&[&a, &b]);
        let s2 = JourneySet::reconstruct(&[&b, &a]);
        assert_eq!(s1.journeys(), s2.journeys());
        assert_eq!(s1.complete_count(), 2);
    }

    #[test]
    fn waterfall_renders_one_line_per_hop() {
        let id1 = journey_id(1, 1);
        let id2 = journey_id(1, 2);
        let a = ring_with(
            1,
            &[
                (
                    0,
                    TraceEvent::JourneySend {
                        journey: id1,
                        hop: 0,
                    },
                ),
                (
                    200,
                    TraceEvent::JourneySend {
                        journey: id2,
                        hop: 0,
                    },
                ),
            ],
        );
        let b = ring_with(
            2,
            &[
                (
                    87,
                    TraceEvent::JourneyDeliver {
                        journey: id1,
                        hop: 0,
                    },
                ),
                (
                    287,
                    TraceEvent::JourneyDeliver {
                        journey: id2,
                        hop: 0,
                    },
                ),
            ],
        );
        let set = JourneySet::reconstruct(&[&a, &b]);
        let w = set.waterfall();
        assert_eq!(w.lines().count(), 3, "{w}");
        assert!(w.contains("1:1"), "{w}");
        assert!(w.contains("1→2"), "{w}");
        assert!(w.contains('#'), "{w}");
    }
}
