//! A tiny, dependency-free, seedable PRNG.
//!
//! The workspace must build and test with **no registry access**, so the
//! external `rand` crate is gone. Everything that needs randomness —
//! cookie draws, fault injection, GC pause jitter, randomized tests —
//! uses [`SplitMix64`] (Steele, Lea & Flood, OOPSLA '14: "Fast splittable
//! pseudorandom number generators"). SplitMix64 passes BigCrush, needs
//! 8 bytes of state, and one draw is a handful of shifts and multiplies;
//! that is plenty for a discrete-event simulator and far more than
//! plenty for 62-bit cookies.
//!
//! Determinism matters more than statistical perfection here: a failing
//! fault-injection test must reproduce exactly from its seed, so every
//! consumer owns its own generator and never shares state.

/// Anything that can produce uniform `u64`s.
///
/// Provided combinators derive bounded integers, floats, and coin flips
/// from the raw stream; implementors only supply [`Rng::next_u64`].
pub trait Rng {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value (upper half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform value in `[lo, hi]` (inclusive). Uses the widening
    /// multiply trick (Lemire) — bias is at most 2⁻⁶⁴ per draw.
    #[inline]
    fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        lo + ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    #[inline]
    fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.gen_range_inclusive(0, n as u64 - 1) as usize
    }
}

/// The SplitMix64 generator: 8 bytes of state, one multiply-xor-shift
/// chain per draw, full 2⁶⁴ period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Any seed (including 0) is fine — the output
    /// function scrambles the Weyl sequence, so nearby seeds diverge
    /// immediately.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 from the canonical C implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_by_seed() {
        let draws = |seed| {
            let mut r = SplitMix64::new(seed);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SplitMix64::new(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        let mut r = SplitMix64::new(2);
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        let mut r = SplitMix64::new(3);
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_is_roughly_uniform() {
        let mut r = SplitMix64::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.gen_range_inclusive(10, 19);
            assert!((10..=19).contains(&v));
            counts[(v - 10) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
