//! pa-xray: fast-path explainability.
//!
//! The paper's speedup rests on the common case staying common: §3.2's
//! per-layer disable counters and header prediction decide whether a
//! message takes the ~170 µs fast path or falls back to the full
//! stack. This module makes every slow-path excursion *attributable*:
//!
//! - [`DisableReason`] — the vocabulary a layer uses when it holds a
//!   predicted header shut (`FullWindow`, `FragPending`, …), so the
//!   disable counter is no longer an opaque `u32`;
//! - [`AttrCause`] / [`Attribution`] — the per-connection attributed
//!   multiset: every slow or queued send and every slow delivery is
//!   charged to exactly one `(layer, cause)` pair, and the per-op sums
//!   reconcile *exactly* with the `ConnStats` path counters;
//! - [`MissTable`] — prediction-miss forensics: per-`(layer, field)`
//!   mismatch counters with the last predicted/actual values;
//! - [`PhaseMeter`] / [`Phase`] — per-layer pre/post phase execution
//!   counters (and optional cycle meters), which a cost model prices
//!   into the paper's critical-path breakdown;
//! - [`XrayReport`] — the diagnosis engine: joins all of the above
//!   with the path counters into a ranked "why is this connection off
//!   the fast path" report;
//! - [`XrayTag`] — a 4-byte wire encoding of one attribution, carried
//!   in annotated pcap pseudo-headers so a capture shows *why* each
//!   slow frame went slow.
//!
//! Everything on the engine side is allocation-light: attribution
//! tables are small linear-scan vectors keyed by `'static` layer names
//! and `Copy` causes, bumped only on paths that already left the fast
//! path. Report construction allocates freely — it runs off-path.

use crate::event::FieldRef;
use crate::reject::RejectReason;
use crate::Nanos;
use std::fmt;

// ---------------------------------------------------------------------------
// Disable reasons
// ---------------------------------------------------------------------------

/// Why a layer disabled a predicted header (§3.2's counter, attributed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisableReason {
    /// The send window is full; sends would only be buffered.
    FullWindow,
    /// A fragment reassembly is in progress; the next frames carry
    /// fragment headers the prediction cannot match.
    FragPending,
    /// A heartbeat has been scheduled but its post-send has not yet
    /// confirmed it reached the wire.
    HeartbeatDue,
    /// The peer's cookie has not been confirmed yet; frames still need
    /// the full connection identification.
    CookieUnconfirmed,
    /// Out-of-order arrivals are being stashed; the next in-order
    /// header is not predictable.
    Reordering,
    /// A resynchronization (retransmission storm, epoch change) is in
    /// progress.
    Resync,
    /// A non-standard reason (kept payload-free so [`crate::TraceEvent`]
    /// stays within its 32-byte budget).
    Other,
    /// A legacy un-attributed `disable()` call (should not appear in an
    /// instrumented stack; its presence is itself a finding).
    Unattributed,
}

impl DisableReason {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            DisableReason::FullWindow => "full-window",
            DisableReason::FragPending => "frag-pending",
            DisableReason::HeartbeatDue => "heartbeat-due",
            DisableReason::CookieUnconfirmed => "cookie-unconfirmed",
            DisableReason::Reordering => "reordering",
            DisableReason::Resync => "resync",
            DisableReason::Other => "other",
            DisableReason::Unattributed => "unattributed",
        }
    }

    /// One-byte wire code (annotated pcap). `Other` folds to 250.
    pub fn code(self) -> u8 {
        match self {
            DisableReason::FullWindow => 1,
            DisableReason::FragPending => 2,
            DisableReason::HeartbeatDue => 3,
            DisableReason::CookieUnconfirmed => 4,
            DisableReason::Reordering => 5,
            DisableReason::Resync => 6,
            DisableReason::Other => 250,
            DisableReason::Unattributed => 255,
        }
    }

    /// Decodes a wire code (pcap readers). Unknown codes map to
    /// `Unattributed`.
    pub fn from_code(code: u8) -> DisableReason {
        match code {
            1 => DisableReason::FullWindow,
            2 => DisableReason::FragPending,
            3 => DisableReason::HeartbeatDue,
            4 => DisableReason::CookieUnconfirmed,
            5 => DisableReason::Reordering,
            6 => DisableReason::Resync,
            250 => DisableReason::Other,
            _ => DisableReason::Unattributed,
        }
    }
}

impl fmt::Display for DisableReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Slow-path attribution
// ---------------------------------------------------------------------------

/// Which path counter an attribution entry reconciles against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XrayOp {
    /// A send that ran the layered pre-send traversal
    /// (`ConnStats::slow_sends`).
    SlowSend,
    /// A send parked in the backlog (`ConnStats::queued_sends`).
    QueuedSend,
    /// A delivery that ran the layered pre-deliver traversal
    /// (`ConnStats::slow_deliveries`).
    SlowDeliver,
    /// A receive-entry rejection: the frame was refused at
    /// `deliver_frame`/demux and counted in the reject ledger
    /// (`ConnStats::rejects`, entry reasons only).
    Reject,
}

impl XrayOp {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            XrayOp::SlowSend => "slow-send",
            XrayOp::QueuedSend => "queued-send",
            XrayOp::SlowDeliver => "slow-deliver",
            XrayOp::Reject => "reject",
        }
    }
}

impl fmt::Display for XrayOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The single attributed cause of one slow-path excursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrCause {
    /// A layer's disable counter held the predicted header shut.
    Disabled(DisableReason),
    /// The first header field that broke the prediction (delivery side;
    /// resolved to `(owning layer, field name)` by the report).
    FieldMiss(FieldRef),
    /// A packet filter refused the frame; attributed to the layer that
    /// contributed the deciding instruction.
    FilterReject,
    /// Prediction is off in the configuration (baseline runs).
    PredictOff,
    /// §3.4's serialization rule: post-processing of an earlier message
    /// was still pending.
    PostSerialization,
    /// Older messages were already waiting in the backlog (FIFO order).
    BacklogPending,
    /// A hostile or malformed wire input was refused with the named
    /// reason (mirrors the [`crate::RejectLedger`] one-for-one).
    Rejected(RejectReason),
    /// The engine could not name a more specific cause (its presence in
    /// a report is itself a finding).
    Unattributed,
}

impl AttrCause {
    /// Short stable label (field misses render positionally; use the
    /// report for name resolution).
    pub fn label(self) -> &'static str {
        match self {
            AttrCause::Disabled(_) => "disabled",
            AttrCause::FieldMiss(_) => "field-miss",
            AttrCause::FilterReject => "filter-reject",
            AttrCause::PredictOff => "predict-off",
            AttrCause::PostSerialization => "post-serialization",
            AttrCause::BacklogPending => "backlog-pending",
            AttrCause::Rejected(_) => "rejected",
            AttrCause::Unattributed => "unattributed",
        }
    }
}

impl fmt::Display for AttrCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrCause::Disabled(reason) => write!(f, "disabled({reason})"),
            AttrCause::FieldMiss(field) => {
                write!(f, "field-miss({}:{})", field.class, field.index)
            }
            AttrCause::Rejected(reason) => write!(f, "rejected({reason})"),
            other => f.write_str(other.label()),
        }
    }
}

/// One row of the attributed multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrEntry {
    /// Which path counter this reconciles against.
    pub op: XrayOp,
    /// The layer charged (`"pa"` for engine-level causes).
    pub layer: &'static str,
    /// The cause.
    pub cause: AttrCause,
    /// How many operations were charged here.
    pub count: u64,
}

/// The attributed multiset: `(op, layer, cause) → count`.
///
/// Every increment of `ConnStats::{slow_sends, queued_sends,
/// slow_deliveries}` is mirrored by exactly one [`Attribution::bump`],
/// so [`Attribution::total`] reconciles exactly with the path counters
/// — "no unattributed slow sends" (un-namable causes are charged to
/// [`AttrCause::Unattributed`], visibly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    entries: Vec<AttrEntry>,
}

impl Attribution {
    /// Charges one operation to `(op, layer, cause)`.
    pub fn bump(&mut self, op: XrayOp, layer: &'static str, cause: AttrCause) {
        for e in &mut self.entries {
            if e.op == op && e.layer == layer && e.cause == cause {
                e.count += 1;
                return;
            }
        }
        self.entries.push(AttrEntry {
            op,
            layer,
            cause,
            count: 1,
        });
    }

    /// All rows, in first-seen order.
    pub fn entries(&self) -> &[AttrEntry] {
        &self.entries
    }

    /// Sum of counts charged to `op` (reconciles with the matching
    /// `ConnStats` counter).
    pub fn total(&self, op: XrayOp) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.op == op)
            .map(|e| e.count)
            .sum()
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Prediction-miss forensics
// ---------------------------------------------------------------------------

/// One `(layer, field)` prediction-miss counter with the most recent
/// predicted/actual pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEntry {
    /// The layer owning the mispredicted field.
    pub layer: &'static str,
    /// The field, positionally (resolve names via the layout).
    pub field: FieldRef,
    /// Mismatch count.
    pub count: u64,
    /// Last predicted value.
    pub last_predicted: u64,
    /// Last observed value.
    pub last_actual: u64,
}

/// Per-`(layer, field)` prediction-miss counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MissTable {
    entries: Vec<MissEntry>,
}

impl MissTable {
    /// Records one field mismatch.
    pub fn bump(&mut self, layer: &'static str, field: FieldRef, predicted: u64, actual: u64) {
        for e in &mut self.entries {
            if e.layer == layer && e.field == field {
                e.count += 1;
                e.last_predicted = predicted;
                e.last_actual = actual;
                return;
            }
        }
        self.entries.push(MissEntry {
            layer,
            field,
            count: 1,
            last_predicted: predicted,
            last_actual: actual,
        });
    }

    /// All rows, in first-seen order.
    pub fn entries(&self) -> &[MissEntry] {
        &self.entries
    }

    /// Total field mismatches recorded (≥ the number of missed
    /// deliveries: one miss can break several fields).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// True if no mismatch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Phase meters
// ---------------------------------------------------------------------------

/// A layer phase, in meter-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pre-send (critical path when the fast path is missed).
    PreSend = 0,
    /// Post-send (deferred, §3.1).
    PostSend = 1,
    /// Pre-deliver (critical path when the fast path is missed).
    PreDeliver = 2,
    /// Post-deliver (deferred).
    PostDeliver = 3,
    /// Timer callback.
    Tick = 4,
}

impl Phase {
    /// All phases, in meter order.
    pub const ALL: [Phase; 5] = [
        Phase::PreSend,
        Phase::PostSend,
        Phase::PreDeliver,
        Phase::PostDeliver,
        Phase::Tick,
    ];

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::PreSend => "pre-send",
            Phase::PostSend => "post-send",
            Phase::PreDeliver => "pre-deliver",
            Phase::PostDeliver => "post-deliver",
            Phase::Tick => "tick",
        }
    }
}

/// Per-layer phase execution meters: call counts always, measured
/// cycle time (`std::time::Instant`) when the host opts in.
///
/// Each phase bucket additionally tracks its *leaked* sub-count: the
/// invocations (and their time) that ran inside a critical-path leak
/// scope — see `pa_obs::critpath`. Leaked counts are always `<=` the
/// totals, so `total - leaked` and `leaked` partition every bucket
/// exactly; the masking ledger's conservation check rides on that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseMeter {
    /// Invocations of each phase, indexed by [`Phase`].
    pub calls: [u64; 5],
    /// Measured wall-clock nanoseconds per phase (0 unless cycle
    /// metering was enabled).
    pub cycle_ns: [u64; 5],
    /// Invocations that ran inside a critical-path leak scope.
    pub leaked_calls: [u64; 5],
    /// Measured nanoseconds of the leaked invocations.
    pub leaked_cycle_ns: [u64; 5],
    /// Per-span timer overhead subtracted from each measured span
    /// (`pa_obs::timer::span_overhead_ns`, set by the host when it
    /// enables cycle metering). 0 = no correction.
    pub bias_ns: u64,
}

impl PhaseMeter {
    /// Records one invocation of `phase`, optionally with measured time.
    pub fn record(&mut self, phase: Phase, cycle_ns: Option<u64>) {
        self.record_flagged(phase, cycle_ns, false);
    }

    /// Records one invocation, marking it leaked if it ran inside a
    /// critical-path leak scope. Returns the de-biased nanoseconds
    /// actually charged (0 when unmetered), so the caller can charge
    /// the same figure to a leak ledger without re-measuring.
    pub fn record_flagged(&mut self, phase: Phase, cycle_ns: Option<u64>, leaked: bool) -> u64 {
        let i = phase as usize;
        self.calls[i] += 1;
        let ns = cycle_ns.map_or(0, |ns| ns.saturating_sub(self.bias_ns));
        if cycle_ns.is_some() {
            self.cycle_ns[i] += ns;
        }
        if leaked {
            self.leaked_calls[i] += 1;
            if cycle_ns.is_some() {
                self.leaked_cycle_ns[i] += ns;
            }
        }
        ns
    }

    /// Sets the timer-overhead correction applied to every later
    /// measured span (see `pa_obs::timer`).
    pub fn set_bias(&mut self, ns: u64) {
        self.bias_ns = ns;
    }

    /// Total invocations across phases.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Total measured nanoseconds across phases.
    pub fn total_cycle_ns(&self) -> u64 {
        self.cycle_ns.iter().sum()
    }

    /// Total leaked invocations across phases.
    pub fn total_leaked_calls(&self) -> u64 {
        self.leaked_calls.iter().sum()
    }

    /// The meter's growth since `earlier` (a copy of `self` taken
    /// before some window of work): per-bucket saturating subtraction.
    /// Brackets taken around disjoint windows partition the source
    /// meter exactly — the contract `pa_obs::domain` shards ride on.
    pub fn delta_since(&self, earlier: &PhaseMeter) -> PhaseMeter {
        let mut d = PhaseMeter {
            bias_ns: self.bias_ns,
            ..PhaseMeter::default()
        };
        for i in 0..5 {
            d.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
            d.cycle_ns[i] = self.cycle_ns[i].saturating_sub(earlier.cycle_ns[i]);
            d.leaked_calls[i] = self.leaked_calls[i].saturating_sub(earlier.leaked_calls[i]);
            d.leaked_cycle_ns[i] =
                self.leaked_cycle_ns[i].saturating_sub(earlier.leaked_cycle_ns[i]);
        }
        d
    }

    /// Folds another meter (typically a [`delta_since`]
    /// (PhaseMeter::delta_since) shard) into this one, bucket-wise.
    pub fn absorb(&mut self, other: &PhaseMeter) {
        for i in 0..5 {
            self.calls[i] += other.calls[i];
            self.cycle_ns[i] += other.cycle_ns[i];
            self.leaked_calls[i] += other.leaked_calls[i];
            self.leaked_cycle_ns[i] += other.leaked_cycle_ns[i];
        }
    }
}

// ---------------------------------------------------------------------------
// Annotated-pcap cause tag
// ---------------------------------------------------------------------------

/// Kind byte of an [`XrayTag`].
pub mod xray_tag_kind {
    /// No attribution (fast-path frame, control frame, or xray off).
    pub const NONE: u8 = 0;
    /// `a` = [`super::DisableReason::code`], `b` unused.
    pub const DISABLED: u8 = 1;
    /// `a` = field class ordinal, `b` = field index (low byte).
    pub const FIELD_MISS: u8 = 2;
    /// Packet-filter rejection.
    pub const FILTER_REJECT: u8 = 3;
    /// Prediction off (baseline run).
    pub const PREDICT_OFF: u8 = 4;
    /// Queued behind pending post-processing or backlog.
    pub const QUEUED: u8 = 5;
    /// Attribution present but cause un-namable.
    pub const UNATTRIBUTED: u8 = 6;
    /// Hostile-wire rejection; `a` = [`super::RejectReason::index`],
    /// `b` unused.
    pub const REJECTED: u8 = 7;
}

/// A 4-byte attribution tag carried in annotated pcap pseudo-headers:
/// `[kind, layer, a, b]`. `layer` is the stack index of the charged
/// layer (255 = the engine, `"pa"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XrayTag {
    /// One of [`xray_tag_kind`].
    pub kind: u8,
    /// Stack index of the charged layer (255 = engine).
    pub layer: u8,
    /// Kind-specific operand.
    pub a: u8,
    /// Kind-specific operand.
    pub b: u8,
}

impl XrayTag {
    /// The engine pseudo-layer index.
    pub const ENGINE: u8 = 255;

    /// The "no attribution" tag.
    pub fn none() -> XrayTag {
        XrayTag::default()
    }

    /// Builds a tag from a charged `(layer index, cause)` pair.
    pub fn from_cause(layer: u8, cause: AttrCause) -> XrayTag {
        let (kind, a, b) = match cause {
            AttrCause::Disabled(reason) => (xray_tag_kind::DISABLED, reason.code(), 0),
            AttrCause::FieldMiss(field) => {
                (xray_tag_kind::FIELD_MISS, field.class, field.index as u8)
            }
            AttrCause::FilterReject => (xray_tag_kind::FILTER_REJECT, 0, 0),
            AttrCause::PredictOff => (xray_tag_kind::PREDICT_OFF, 0, 0),
            AttrCause::PostSerialization => (xray_tag_kind::QUEUED, 1, 0),
            AttrCause::BacklogPending => (xray_tag_kind::QUEUED, 2, 0),
            AttrCause::Rejected(reason) => (xray_tag_kind::REJECTED, reason.index() as u8, 0),
            AttrCause::Unattributed => (xray_tag_kind::UNATTRIBUTED, 0, 0),
        };
        XrayTag { kind, layer, a, b }
    }

    /// The cause encoded in this tag, if any.
    pub fn cause(&self) -> Option<AttrCause> {
        match self.kind {
            xray_tag_kind::NONE => None,
            xray_tag_kind::DISABLED => Some(AttrCause::Disabled(DisableReason::from_code(self.a))),
            xray_tag_kind::FIELD_MISS => {
                Some(AttrCause::FieldMiss(FieldRef::new(self.a, self.b as u16)))
            }
            xray_tag_kind::FILTER_REJECT => Some(AttrCause::FilterReject),
            xray_tag_kind::PREDICT_OFF => Some(AttrCause::PredictOff),
            xray_tag_kind::QUEUED => Some(if self.a == 2 {
                AttrCause::BacklogPending
            } else {
                AttrCause::PostSerialization
            }),
            xray_tag_kind::REJECTED => Some(
                RejectReason::from_index(self.a as usize)
                    .map(AttrCause::Rejected)
                    .unwrap_or(AttrCause::Unattributed),
            ),
            _ => Some(AttrCause::Unattributed),
        }
    }

    /// Wire encoding.
    pub fn to_bytes(self) -> [u8; 4] {
        [self.kind, self.layer, self.a, self.b]
    }

    /// Wire decoding.
    pub fn from_bytes(bytes: [u8; 4]) -> XrayTag {
        XrayTag {
            kind: bytes[0],
            layer: bytes[1],
            a: bytes[2],
            b: bytes[3],
        }
    }
}

// ---------------------------------------------------------------------------
// The diagnosis engine
// ---------------------------------------------------------------------------

/// One ranked finding: a `(op, layer, cause)` row with its share of the
/// scope's slow-path excursions.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which path counter this row reconciles against.
    pub op: XrayOp,
    /// The charged layer.
    pub layer: String,
    /// Human-readable cause (field misses resolved to names).
    pub cause: String,
    /// Operations charged.
    pub count: u64,
    /// Share of all attributed operations, in [0, 1].
    pub share: f64,
}

/// One row of the per-layer phase cost table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseRow {
    /// Layer name, bottom first.
    pub layer: String,
    /// Phase invocations, indexed by [`Phase`].
    pub calls: [u64; 5],
    /// Virtual-time cost in nanoseconds (0 until a cost model prices
    /// the row).
    pub virt_ns: [u64; 5],
    /// Measured wall-clock nanoseconds (0 unless cycle metering was
    /// on).
    pub cycle_ns: [u64; 5],
    /// Invocations that ran inside a critical-path leak scope
    /// (`<= calls` per phase; see `pa_obs::critpath`).
    pub leaked_calls: [u64; 5],
    /// Virtual-time price of the leaked invocations (filled by the
    /// same cost model that prices `virt_ns`).
    pub leaked_virt_ns: [u64; 5],
    /// Measured nanoseconds of the leaked invocations.
    pub leaked_cycle_ns: [u64; 5],
}

/// A resolved prediction-miss forensics row.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRow {
    /// Owning layer.
    pub layer: String,
    /// Field name.
    pub field: String,
    /// Mismatch count.
    pub count: u64,
    /// Last predicted value.
    pub last_predicted: u64,
    /// Last observed value.
    pub last_actual: u64,
}

/// A currently-active disable hold.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldRow {
    /// `"send"` or `"recv"`.
    pub direction: &'static str,
    /// The holding layer.
    pub layer: String,
    /// Why.
    pub reason: String,
    /// Nesting depth currently held.
    pub active: u32,
}

/// Path-counter totals the report reconciles against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XrayTotals {
    /// `ConnStats::fast_sends`.
    pub fast_sends: u64,
    /// `ConnStats::slow_sends`.
    pub slow_sends: u64,
    /// `ConnStats::queued_sends`.
    pub queued_sends: u64,
    /// `ConnStats::fast_deliveries`.
    pub fast_deliveries: u64,
    /// `ConnStats::slow_deliveries`.
    pub slow_deliveries: u64,
    /// Saturated `enable()` underflows observed (send + recv).
    pub invariant_violations: u64,
}

/// The ranked "why is this connection off the fast path" report:
/// attribution, forensics, active holds, and the per-layer pre/post
/// phase cost table, joined with the path counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XrayReport {
    /// Scope label (host / connection).
    pub scope: String,
    /// Logical time the report was taken.
    pub at: Nanos,
    /// Ranked findings (sorted by count, descending).
    pub findings: Vec<Finding>,
    /// Active disable holds at report time.
    pub holds: Vec<HoldRow>,
    /// Prediction-miss forensics rows (sorted by count, descending).
    pub misses: Vec<MissRow>,
    /// Per-layer phase cost rows, bottom first.
    pub phases: Vec<PhaseRow>,
    /// Path-counter totals.
    pub totals: XrayTotals,
    /// Free-form context from the host (flight-recorder joins, wedge
    /// warnings).
    pub notes: Vec<String>,
}

impl XrayReport {
    /// True if attribution sums match the path counters exactly:
    /// slow sends, queued sends, and slow deliveries each fully
    /// accounted for.
    pub fn reconciles(&self) -> bool {
        let sum = |op: XrayOp| {
            self.findings
                .iter()
                .filter(|f| f.op == op)
                .map(|f| f.count)
                .sum::<u64>()
        };
        sum(XrayOp::SlowSend) == self.totals.slow_sends
            && sum(XrayOp::QueuedSend) == self.totals.queued_sends
            && sum(XrayOp::SlowDeliver) == self.totals.slow_deliveries
    }

    /// Sorts findings and misses by count, descending (stable).
    pub fn rank(&mut self) {
        self.findings.sort_by_key(|f| std::cmp::Reverse(f.count));
        self.misses.sort_by_key(|m| std::cmp::Reverse(m.count));
    }

    /// Renders the full report as a text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let t = &self.totals;
        s.push_str(&format!("xray report — {} @ {} ns\n", self.scope, self.at));
        s.push_str(&format!(
            "  paths: fast_sends={} slow_sends={} queued_sends={} fast_deliveries={} slow_deliveries={}\n",
            t.fast_sends, t.slow_sends, t.queued_sends, t.fast_deliveries, t.slow_deliveries
        ));
        if t.invariant_violations > 0 {
            s.push_str(&format!(
                "  !! invariant violations (enable without matching disable): {}\n",
                t.invariant_violations
            ));
        }

        s.push_str("  why off the fast path (ranked):\n");
        if self.findings.is_empty() {
            s.push_str("    (never — every operation took the fast path)\n");
        }
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {:>2}. {:<13} {:<10} {:<28} {:>8}  {:>5.1}%\n",
                i + 1,
                f.op.label(),
                f.layer,
                f.cause,
                f.count,
                f.share * 100.0
            ));
        }

        if !self.holds.is_empty() {
            s.push_str("  active disable holds:\n");
            for h in &self.holds {
                s.push_str(&format!(
                    "    {:<4} {:<10} {:<20} x{}\n",
                    h.direction, h.layer, h.reason, h.active
                ));
            }
        }

        if !self.misses.is_empty() {
            s.push_str("  prediction-miss forensics (layer.field):\n");
            for m in &self.misses {
                s.push_str(&format!(
                    "    {:<10} {:<12} misses={:<8} last predicted={} actual={}\n",
                    m.layer, m.field, m.count, m.last_predicted, m.last_actual
                ));
            }
        }

        if !self.phases.is_empty() {
            let priced = self.phases.iter().any(|r| r.virt_ns.iter().any(|&n| n > 0));
            let cycled = self
                .phases
                .iter()
                .any(|r| r.cycle_ns.iter().any(|&n| n > 0));
            s.push_str("  phase cost accounting (per layer):\n");
            s.push_str(&format!(
                "    {:<10} {:>18} {:>18} {:>18} {:>18}\n",
                "layer", "pre-send", "post-send", "pre-deliver", "post-deliver"
            ));
            let cell = |row: &PhaseRow, p: Phase| -> String {
                let i = p as usize;
                if priced {
                    format!(
                        "{:>7} {:>7.1}µs",
                        row.calls[i],
                        row.virt_ns[i] as f64 / 1_000.0
                    )
                } else if cycled {
                    format!(
                        "{:>7} {:>7.1}µs",
                        row.calls[i],
                        row.cycle_ns[i] as f64 / 1_000.0
                    )
                } else {
                    format!("{:>7} calls", row.calls[i])
                }
            };
            for row in &self.phases {
                s.push_str(&format!(
                    "    {:<10} {:>18} {:>18} {:>18} {:>18}\n",
                    row.layer,
                    cell(row, Phase::PreSend),
                    cell(row, Phase::PostSend),
                    cell(row, Phase::PreDeliver),
                    cell(row, Phase::PostDeliver),
                ));
            }
            if priced {
                let sum =
                    |p: Phase| -> u64 { self.phases.iter().map(|r| r.virt_ns[p as usize]).sum() };
                s.push_str(&format!(
                    "    {:<10} {:>16.1}µs {:>16.1}µs {:>16.1}µs {:>16.1}µs\n",
                    "(total)",
                    sum(Phase::PreSend) as f64 / 1_000.0,
                    sum(Phase::PostSend) as f64 / 1_000.0,
                    sum(Phase::PreDeliver) as f64 / 1_000.0,
                    sum(Phase::PostDeliver) as f64 / 1_000.0,
                ));
            }
            let leaked_calls: u64 = self
                .phases
                .iter()
                .map(|r| r.leaked_calls.iter().sum::<u64>())
                .sum();
            if leaked_calls > 0 {
                let leaked_ns: u64 = self
                    .phases
                    .iter()
                    .map(|r| {
                        if priced {
                            r.leaked_virt_ns.iter().sum::<u64>()
                        } else {
                            r.leaked_cycle_ns.iter().sum::<u64>()
                        }
                    })
                    .sum();
                s.push_str(&format!(
                    "  !! critical-path leaks: {} phase calls ({:.1}µs) ran where a delivery had to wait (see masking ledger)\n",
                    leaked_calls,
                    leaked_ns as f64 / 1_000.0
                ));
            }
        }

        for note in &self.notes {
            s.push_str(&format!("  note: {note}\n"));
        }
        s
    }
}

impl fmt::Display for XrayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_bumps_and_totals() {
        let mut a = Attribution::default();
        a.bump(
            XrayOp::SlowDeliver,
            "window",
            AttrCause::FieldMiss(FieldRef::new(1, 0)),
        );
        a.bump(
            XrayOp::SlowDeliver,
            "window",
            AttrCause::FieldMiss(FieldRef::new(1, 0)),
        );
        a.bump(
            XrayOp::QueuedSend,
            "window",
            AttrCause::Disabled(DisableReason::FullWindow),
        );
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.total(XrayOp::SlowDeliver), 2);
        assert_eq!(a.total(XrayOp::QueuedSend), 1);
        assert_eq!(a.total(XrayOp::SlowSend), 0);
    }

    #[test]
    fn miss_table_keeps_last_values() {
        let mut m = MissTable::default();
        let f = FieldRef::new(1, 0);
        m.bump("window", f, 5, 9);
        m.bump("window", f, 6, 10);
        assert_eq!(m.entries().len(), 1);
        assert_eq!(m.entries()[0].count, 2);
        assert_eq!(m.entries()[0].last_predicted, 6);
        assert_eq!(m.entries()[0].last_actual, 10);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn phase_meter_records() {
        let mut p = PhaseMeter::default();
        p.record(Phase::PreSend, None);
        p.record(Phase::PostDeliver, Some(1_500));
        assert_eq!(p.calls[Phase::PreSend as usize], 1);
        assert_eq!(p.calls[Phase::PostDeliver as usize], 1);
        assert_eq!(p.cycle_ns[Phase::PostDeliver as usize], 1_500);
        assert_eq!(p.total_calls(), 2);
    }

    #[test]
    fn phase_meter_tracks_leaks_and_debiases() {
        let mut p = PhaseMeter::default();
        p.set_bias(100);
        let charged = p.record_flagged(Phase::PostDeliver, Some(1_500), true);
        assert_eq!(charged, 1_400, "timer overhead subtracted");
        p.record_flagged(Phase::PostDeliver, Some(1_000), false);
        assert_eq!(p.calls[Phase::PostDeliver as usize], 2);
        assert_eq!(p.cycle_ns[Phase::PostDeliver as usize], 2_300);
        assert_eq!(p.leaked_calls[Phase::PostDeliver as usize], 1);
        assert_eq!(p.leaked_cycle_ns[Phase::PostDeliver as usize], 1_400);
        // Bias never drives a span negative.
        let charged = p.record_flagged(Phase::Tick, Some(40), true);
        assert_eq!(charged, 0);
        assert_eq!(p.total_leaked_calls(), 2);
    }

    #[test]
    fn phase_meter_deltas_partition_and_absorb() {
        let mut m = PhaseMeter::default();
        let cp0 = m;
        m.record_flagged(Phase::PreSend, Some(100), false);
        m.record_flagged(Phase::PreSend, Some(200), true);
        let cp1 = m;
        m.record_flagged(Phase::PostSend, Some(300), false);
        let d0 = m.delta_since(&cp0);
        let d1 = cp1.delta_since(&cp0);
        let d2 = m.delta_since(&cp1);
        assert_eq!(d0.total_calls(), 3);
        assert_eq!(d1.calls[Phase::PreSend as usize], 2);
        assert_eq!(d1.leaked_calls[Phase::PreSend as usize], 1);
        assert_eq!(d2.calls[Phase::PostSend as usize], 1);
        // Disjoint brackets re-absorb into exactly the source meter.
        let mut merged = PhaseMeter::default();
        merged.absorb(&d1);
        merged.absorb(&d2);
        assert_eq!(merged.calls, m.calls);
        assert_eq!(merged.cycle_ns, m.cycle_ns);
        assert_eq!(merged.leaked_calls, m.leaked_calls);
        assert_eq!(merged.leaked_cycle_ns, m.leaked_cycle_ns);
    }

    #[test]
    fn disable_reason_codes_roundtrip() {
        for r in [
            DisableReason::FullWindow,
            DisableReason::FragPending,
            DisableReason::HeartbeatDue,
            DisableReason::CookieUnconfirmed,
            DisableReason::Reordering,
            DisableReason::Resync,
            DisableReason::Other,
            DisableReason::Unattributed,
        ] {
            assert_eq!(DisableReason::from_code(r.code()), r, "{r}");
        }
    }

    #[test]
    fn xray_tag_roundtrips_causes() {
        let causes = [
            AttrCause::Disabled(DisableReason::FullWindow),
            AttrCause::FieldMiss(FieldRef::new(1, 3)),
            AttrCause::FilterReject,
            AttrCause::PredictOff,
            AttrCause::PostSerialization,
            AttrCause::BacklogPending,
            AttrCause::Rejected(RejectReason::ByteOrderConflict),
            AttrCause::Rejected(RejectReason::StaleCookie),
            AttrCause::Unattributed,
        ];
        for c in causes {
            let tag = XrayTag::from_cause(2, c);
            let back = XrayTag::from_bytes(tag.to_bytes());
            assert_eq!(back, tag);
            assert_eq!(back.cause(), Some(c), "{c}");
            assert_eq!(back.layer, 2);
        }
        assert_eq!(XrayTag::none().cause(), None);
    }

    #[test]
    fn report_reconciles_and_ranks() {
        let mut r = XrayReport {
            scope: "node0".into(),
            totals: XrayTotals {
                slow_sends: 1,
                queued_sends: 3,
                slow_deliveries: 2,
                ..Default::default()
            },
            findings: vec![
                Finding {
                    op: XrayOp::SlowSend,
                    layer: "pa".into(),
                    cause: "filter-reject".into(),
                    count: 1,
                    share: 1.0 / 6.0,
                },
                Finding {
                    op: XrayOp::QueuedSend,
                    layer: "window".into(),
                    cause: "disabled(full-window)".into(),
                    count: 3,
                    share: 0.5,
                },
                Finding {
                    op: XrayOp::SlowDeliver,
                    layer: "window".into(),
                    cause: "field-miss(seq)".into(),
                    count: 2,
                    share: 2.0 / 6.0,
                },
            ],
            ..Default::default()
        };
        assert!(r.reconciles());
        r.rank();
        assert_eq!(r.findings[0].count, 3, "ranked by count");
        r.totals.slow_deliveries = 5;
        assert!(!r.reconciles(), "missing attribution must be visible");
    }

    #[test]
    fn render_contains_the_phase_table() {
        let r = XrayReport {
            scope: "node0".into(),
            phases: vec![PhaseRow {
                layer: "window".into(),
                calls: [3, 7, 2, 7, 0],
                virt_ns: [45_000, 105_000, 30_000, 105_000, 0],
                ..Default::default()
            }],
            ..Default::default()
        };
        let text = r.render();
        assert!(text.contains("phase cost accounting"), "{text}");
        assert!(text.contains("pre-send"), "{text}");
        assert!(text.contains("post-deliver"), "{text}");
        assert!(text.contains("window"), "{text}");
        assert!(text.contains("105.0µs"), "{text}");
        assert!(text.contains("(total)"), "{text}");
    }
}
