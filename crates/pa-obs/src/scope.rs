//! pa-scope: the bounded-memory, mergeable telemetry plane.
//!
//! PRs 1–5 kept *exact* books — per-connection `ConnStats`,
//! `Attribution` multisets, log2 histograms. Exact is right for one
//! connection and ruinous for a fleet: pa-shard's 10⁶ connections
//! cannot each hold an unbounded ledger. A [`ScopePlane`] scales the
//! same questions ("where is the time going, and which message do I
//! look at?") to high cardinality with three ingredients:
//!
//! - **mergeable sketches** ([`QuantileSketch`]) at three levels —
//!   per-connection → per-endpoint → cluster — rolled up by exact
//!   associative merge, so the cluster view is *provably* the merge of
//!   its parts ([`ScopePlane::rollup_reconciles`]);
//! - **exemplars** ([`ExemplarSet`]) so any aggregate anomaly links
//!   back to one concrete journey + [`XrayTag`] attribution;
//! - **an explicit byte budget**: every structure has a hard cap,
//!   admission is refused *visibly* (sampled-out counters, an overflow
//!   sketch that still counts every sample), and nothing is ever
//!   silently lost — a connection denied a dedicated slot still lands
//!   in the cluster and overflow sketches.
//!
//! The plane is passive scaffolding on the host side: engine code never
//! sees it, so the telemetry-off wire bytes and allocation profile are
//! untouched (pinned by `tests/trace_overhead.rs`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Nanos;
use crate::exemplar::{Exemplar, ExemplarSet};
use crate::journey::render_journey_id;
use crate::sketch::{QuantileSketch, SketchConfig, SketchSummary};
use crate::snapshot::MetricsSnapshot;
use crate::xray::XrayTag;

/// Shape and budget of a [`ScopePlane`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeConfig {
    /// Sketch relative accuracy α.
    pub alpha: f64,
    /// Sketch window cap, in buckets.
    pub max_buckets: usize,
    /// Exemplar octave bands retained per series.
    pub exemplar_bands: usize,
    /// Exemplar reservoir slots per band.
    pub exemplars_per_band: usize,
    /// Dedicated endpoint series admitted before endpoint traffic
    /// folds into the endpoint-overflow series.
    pub max_endpoints: usize,
    /// Hard cap on the whole plane's footprint, in bytes. Admission of
    /// new per-connection series stops before the projected worst case
    /// would cross it.
    pub byte_cap: usize,
    /// Seed for all exemplar reservoirs (per-series streams are
    /// derived, so runs are reproducible end to end).
    pub seed: u64,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            alpha: 0.01,
            max_buckets: 512,
            exemplar_bands: 4,
            exemplars_per_band: 2,
            max_endpoints: 16,
            byte_cap: 512 * 1024,
            seed: 0x5C09,
        }
    }
}

impl ScopeConfig {
    /// The sketch shape every series in the plane uses.
    pub fn sketch_config(&self) -> SketchConfig {
        SketchConfig {
            alpha: self.alpha,
            max_buckets: self.max_buckets,
        }
    }

    /// Worst-case footprint of one series (sketch + exemplars + name
    /// slack), the unit of budget admission.
    pub fn series_footprint(&self) -> usize {
        QuantileSketch::mem_bytes_cap(self.sketch_config())
            + ExemplarSet::mem_bytes_cap(self.exemplar_bands, self.exemplars_per_band)
            + 64
    }
}

/// One telemetry series: a sketch plus its exemplars.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeSeries {
    sketch: QuantileSketch,
    exemplars: ExemplarSet,
}

impl ScopeSeries {
    fn new(cfg: &ScopeConfig, stream: u64) -> ScopeSeries {
        ScopeSeries {
            sketch: QuantileSketch::new(cfg.sketch_config()),
            exemplars: ExemplarSet::new(
                cfg.exemplar_bands,
                cfg.exemplars_per_band,
                cfg.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F),
            ),
        }
    }

    #[inline]
    fn record_keyed(&mut self, key: i32, ex: Exemplar) {
        self.sketch.record_keyed(key, ex.value);
        self.exemplars.offer(ex);
    }

    /// The quantile sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// The exemplar set.
    pub fn exemplars(&self) -> &ExemplarSet {
        &self.exemplars
    }

    /// Percentile summary of the sketch.
    pub fn summary(&self) -> SketchSummary {
        self.sketch.summary()
    }

    fn mem_bytes(&self) -> usize {
        self.sketch.mem_bytes() + self.exemplars.mem_bytes()
    }
}

/// A resolved recording key: where one connection's samples land.
/// Obtained once per connection from [`ScopePlane::register`]; the
/// per-sample [`ScopePlane::record`] is then index arithmetic, no map
/// lookups or string hashing on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeKey {
    /// Dedicated endpoint slot, or `u32::MAX` for the overflow series.
    ep: u32,
    /// Dedicated connection slot, or `u32::MAX` for the overflow
    /// series.
    conn: u32,
}

impl ScopeKey {
    const OVERFLOW: u32 = u32::MAX;

    /// True if this connection got a dedicated per-connection series.
    pub fn is_dedicated(&self) -> bool {
        self.conn != Self::OVERFLOW
    }

    /// The key routing everything to the overflow series — the right
    /// target for a shard whose origin never registered a slot.
    pub fn overflow() -> ScopeKey {
        ScopeKey {
            ep: Self::OVERFLOW,
            conn: Self::OVERFLOW,
        }
    }
}

/// The bounded roll-up plane: cluster / endpoint / connection sketches
/// with exemplars, explicit overflow, and a hard byte budget.
#[derive(Debug, Clone)]
pub struct ScopePlane {
    cfg: ScopeConfig,
    cluster: ScopeSeries,
    /// Samples from connections denied a dedicated slot.
    conn_overflow: ScopeSeries,
    /// Samples from endpoints denied a dedicated slot.
    ep_overflow: ScopeSeries,
    endpoints: Vec<(String, ScopeSeries)>,
    conns: Vec<(String, ScopeSeries)>,
    endpoint_index: BTreeMap<String, u32>,
    conn_index: BTreeMap<String, u32>,
    records: u64,
    overflow_records: u64,
    denied_conns: u64,
    denied_endpoints: u64,
}

impl ScopePlane {
    /// An empty plane. The cluster and overflow series are always
    /// resident; dedicated per-endpoint/per-connection series are
    /// admitted only while the worst-case projection stays under
    /// `cfg.byte_cap`.
    pub fn new(cfg: ScopeConfig) -> ScopePlane {
        ScopePlane {
            cluster: ScopeSeries::new(&cfg, 0),
            conn_overflow: ScopeSeries::new(&cfg, 1),
            ep_overflow: ScopeSeries::new(&cfg, 2),
            endpoints: Vec::new(),
            conns: Vec::new(),
            endpoint_index: BTreeMap::new(),
            conn_index: BTreeMap::new(),
            records: 0,
            overflow_records: 0,
            denied_conns: 0,
            denied_endpoints: 0,
            cfg,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> &ScopeConfig {
        &self.cfg
    }

    /// Resolves (creating if budget allows) the recording key for a
    /// `(endpoint, connection)` pair. Call once per connection, not
    /// per sample. Denials are permanent for the plane's lifetime and
    /// counted — the connection's samples still reach the cluster and
    /// overflow sketches.
    pub fn register(&mut self, endpoint: &str, conn: &str) -> ScopeKey {
        let ep = match self.endpoint_index.get(endpoint) {
            Some(&i) => i,
            None => {
                if self.endpoints.len() < self.cfg.max_endpoints && self.admit_one() {
                    let i = self.endpoints.len() as u32;
                    let series = ScopeSeries::new(&self.cfg, 0x0E00 + i as u64);
                    self.endpoints.push((endpoint.to_string(), series));
                    self.endpoint_index.insert(endpoint.to_string(), i);
                    i
                } else {
                    self.denied_endpoints += 1;
                    ScopeKey::OVERFLOW
                }
            }
        };
        let conn_slot = match self.conn_index.get(conn) {
            Some(&i) => i,
            None => {
                if self.admit_one() {
                    let i = self.conns.len() as u32;
                    let series = ScopeSeries::new(&self.cfg, 0xC000 + i as u64);
                    self.conns.push((conn.to_string(), series));
                    self.conn_index.insert(conn.to_string(), i);
                    i
                } else {
                    self.denied_conns += 1;
                    ScopeKey::OVERFLOW
                }
            }
        };
        ScopeKey {
            ep,
            conn: conn_slot,
        }
    }

    /// True if one more series fits under the byte cap, worst case.
    fn admit_one(&self) -> bool {
        self.worst_case_bytes() + self.cfg.series_footprint() <= self.cfg.byte_cap
    }

    /// Records one observation. One logarithm, three sketch inserts,
    /// three reservoir offers — no allocation once the series' windows
    /// are grown.
    #[inline]
    pub fn record(&mut self, key: ScopeKey, value: u64, at: Nanos, journey: u64, tag: XrayTag) {
        let ex = Exemplar {
            value,
            at,
            journey,
            tag,
        };
        self.records += 1;
        if value == 0 {
            self.cluster.record_keyed(0, ex);
            self.route(key, 0, ex);
            return;
        }
        let k = self.cluster.sketch.key_of(value);
        self.cluster.record_keyed(k, ex);
        self.route(key, k, ex);
    }

    #[inline]
    fn route(&mut self, key: ScopeKey, k: i32, ex: Exemplar) {
        if key.ep == ScopeKey::OVERFLOW {
            self.ep_overflow.record_keyed(k, ex);
        } else {
            self.endpoints[key.ep as usize].1.record_keyed(k, ex);
        }
        if key.conn == ScopeKey::OVERFLOW {
            self.overflow_records += 1;
            self.conn_overflow.record_keyed(k, ex);
        } else {
            self.conns[key.conn as usize].1.record_keyed(k, ex);
        }
    }

    /// Folds a whole sketch shard (e.g. a telemetry domain's
    /// per-thread shard, see `pa_obs::domain`) into the plane at
    /// `key`: the cluster and the routed endpoint/connection series
    /// each absorb the shard with the exact canonical-form merge, so
    /// [`ScopePlane::rollup_reconciles`] keeps holding with plain
    /// `==`. The shard must share the plane's sketch shape
    /// (`cfg.sketch_config()`). Exemplars do not travel with shards —
    /// they stay with the recording thread's own reservoirs.
    pub fn absorb_shard(&mut self, key: ScopeKey, shard: &QuantileSketch) {
        if shard.is_empty() {
            return;
        }
        self.records += shard.count();
        self.cluster.sketch.merge(shard);
        if key.ep == ScopeKey::OVERFLOW {
            self.ep_overflow.sketch.merge(shard);
        } else {
            self.endpoints[key.ep as usize].1.sketch.merge(shard);
        }
        if key.conn == ScopeKey::OVERFLOW {
            self.overflow_records += shard.count();
            self.conn_overflow.sketch.merge(shard);
        } else {
            self.conns[key.conn as usize].1.sketch.merge(shard);
        }
    }

    /// The cluster-level roll-up series.
    pub fn cluster(&self) -> &ScopeSeries {
        &self.cluster
    }

    /// The overflow series absorbing connections without a slot.
    pub fn conn_overflow(&self) -> &ScopeSeries {
        &self.conn_overflow
    }

    /// Dedicated endpoint series, in admission order.
    pub fn endpoints(&self) -> impl Iterator<Item = (&str, &ScopeSeries)> {
        self.endpoints.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Dedicated connection series, in admission order.
    pub fn conns(&self) -> impl Iterator<Item = (&str, &ScopeSeries)> {
        self.conns.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// A dedicated endpoint series by name.
    pub fn endpoint(&self, name: &str) -> Option<&ScopeSeries> {
        self.endpoint_index
            .get(name)
            .map(|&i| &self.endpoints[i as usize].1)
    }

    /// A dedicated connection series by name.
    pub fn conn(&self, name: &str) -> Option<&ScopeSeries> {
        self.conn_index
            .get(name)
            .map(|&i| &self.conns[i as usize].1)
    }

    /// The top `n` dedicated connections by the sketch value at
    /// quantile `q`, descending: the dashboard's "who hurts" view.
    pub fn top_conns(&self, q: f64, n: usize) -> Vec<(&str, u64, u64)> {
        let mut rows: Vec<(&str, u64, u64)> = self
            .conns
            .iter()
            .map(|(name, s)| (name.as_str(), s.sketch.quantile(q), s.sketch.count()))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }

    /// Observations recorded.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Observations that landed in the connection-overflow series.
    pub fn overflow_records(&self) -> u64 {
        self.overflow_records
    }

    /// Connection registrations denied a dedicated slot.
    pub fn denied_conns(&self) -> u64 {
        self.denied_conns
    }

    /// Endpoint registrations denied a dedicated slot.
    pub fn denied_endpoints(&self) -> u64 {
        self.denied_endpoints
    }

    /// Dedicated connection slots granted.
    pub fn conn_slots(&self) -> usize {
        self.conns.len()
    }

    /// Actual footprint right now (capacity-accurate).
    pub fn mem_bytes(&self) -> usize {
        let fixed = std::mem::size_of::<ScopePlane>()
            + self.cluster.mem_bytes()
            + self.conn_overflow.mem_bytes()
            + self.ep_overflow.mem_bytes();
        let series: usize = self
            .endpoints
            .iter()
            .map(|(n, s)| n.capacity() + s.mem_bytes())
            .chain(self.conns.iter().map(|(n, s)| n.capacity() + s.mem_bytes()))
            .sum();
        // Index maps: name + pointer-sized slot per entry (BTreeMap
        // node overhead folded into the 64-byte series name slack).
        let index: usize = self
            .endpoint_index
            .keys()
            .chain(self.conn_index.keys())
            .map(|k| k.capacity() + 16)
            .sum();
        fixed + series + index
    }

    /// Worst-case footprint if every admitted series grows its full
    /// window — what admission is charged against.
    pub fn worst_case_bytes(&self) -> usize {
        std::mem::size_of::<ScopePlane>()
            + (3 + self.endpoints.len() + self.conns.len()) * self.cfg.series_footprint()
    }

    /// True while the actual footprint honors the byte cap. Admission
    /// charges against the worst case, so with a cap large enough for
    /// the three fixed series this holds by construction.
    pub fn within_budget(&self) -> bool {
        self.mem_bytes() <= self.cfg.byte_cap
    }

    /// Proves the roll-up: the cluster sketch must equal the merge of
    /// every dedicated connection sketch plus the connection-overflow
    /// sketch, and likewise for endpoints — same multiset, any merge
    /// order, `==` states. A `false` here means samples were lost or
    /// double-counted somewhere between the levels.
    pub fn rollup_reconciles(&self) -> bool {
        let mut by_conn = QuantileSketch::new(self.cfg.sketch_config());
        for (_, s) in &self.conns {
            by_conn.merge(&s.sketch);
        }
        by_conn.merge(&self.conn_overflow.sketch);
        let mut by_ep = QuantileSketch::new(self.cfg.sketch_config());
        for (_, s) in &self.endpoints {
            by_ep.merge(&s.sketch);
        }
        by_ep.merge(&self.ep_overflow.sketch);
        by_conn == self.cluster.sketch && by_ep == self.cluster.sketch
    }

    /// Exports the plane's own health counters into the metrics
    /// registry under `scope`.
    pub fn record_into(&self, snap: &mut MetricsSnapshot, scope: &str) {
        snap.record(scope, "records", self.records);
        snap.record(scope, "overflow_records", self.overflow_records);
        snap.record(scope, "denied_conn_slots", self.denied_conns);
        snap.record(scope, "denied_endpoint_slots", self.denied_endpoints);
        snap.record(scope, "conn_slots", self.conns.len() as u64);
        snap.record(scope, "endpoint_slots", self.endpoints.len() as u64);
        snap.record(scope, "mem_bytes", self.mem_bytes() as u64);
        snap.record(scope, "byte_cap", self.cfg.byte_cap as u64);
        snap.record(scope, "cluster_collapsed", self.cluster.sketch.collapsed());
        let (mut retained, mut evicted, mut sampled_out) = (0u64, 0u64, 0u64);
        let all = std::iter::once(&self.cluster)
            .chain(std::iter::once(&self.conn_overflow))
            .chain(std::iter::once(&self.ep_overflow))
            .chain(self.endpoints.iter().map(|(_, s)| s))
            .chain(self.conns.iter().map(|(_, s)| s));
        for s in all {
            retained += s.exemplars.len() as u64;
            evicted += s.exemplars.evicted();
            sampled_out += s.exemplars.sampled_out();
        }
        snap.record(scope, "exemplars_retained", retained);
        snap.record(scope, "exemplars_evicted", evicted);
        snap.record(scope, "exemplars_sampled_out", sampled_out);
    }

    /// Prometheus text exposition of the cluster and per-endpoint
    /// sketches as cumulative histograms with OpenMetrics-style
    /// exemplars (`# {journey="...",xray="..."} value ts`). Bucket
    /// lines are strided down to at most `max_le_lines` per series so
    /// the dump stays bounded no matter the window width.
    pub fn to_prometheus(&self, metric: &str, max_le_lines: usize) -> String {
        let name = prometheus_metric(metric);
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.write_series(&mut out, &name, "cluster", &self.cluster, max_le_lines);
        for (ep, series) in &self.endpoints {
            self.write_series(&mut out, &name, ep, series, max_le_lines);
        }
        if !self.ep_overflow.sketch.is_empty() {
            self.write_series(&mut out, &name, "overflow", &self.ep_overflow, max_le_lines);
        }
        out
    }

    fn write_series(
        &self,
        out: &mut String,
        name: &str,
        scope: &str,
        series: &ScopeSeries,
        max_le_lines: usize,
    ) {
        let sketch = &series.sketch;
        let buckets = sketch.bucket_counts();
        let stride = buckets.len().div_ceil(max_le_lines.max(1)).max(1);
        let mut cum = 0u64;
        for (i, &(edge, n)) in buckets.iter().enumerate() {
            cum += n;
            let last = i + 1 == buckets.len();
            if i % stride != stride - 1 && !last {
                continue;
            }
            let _ = write!(
                out,
                "{name}_bucket{{scope=\"{scope}\",le=\"{edge}\"}} {cum}"
            );
            if let Some(ex) = series.exemplars.for_value(edge) {
                let _ = write!(
                    out,
                    " # {{journey=\"{}\",xray=\"{}\"}} {} {:.3}",
                    render_journey_id(ex.journey),
                    render_xray(ex.tag),
                    ex.value,
                    ex.at as f64 / 1e9,
                );
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{scope=\"{scope}\",le=\"+Inf\"}} {}",
            sketch.count()
        );
        let _ = writeln!(out, "{name}_sum{{scope=\"{scope}\"}} {}", sketch.sum());
        let _ = writeln!(out, "{name}_count{{scope=\"{scope}\"}} {}", sketch.count());
    }
}

/// Sanitizes a metric name into Prometheus form with the `pa_` prefix.
fn prometheus_metric(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("pa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders an [`XrayTag`] as `kind:layer:a:b` hex (compact, stable).
fn render_xray(tag: XrayTag) -> String {
    let b = tag.to_bytes();
    format!("{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScopeConfig {
        ScopeConfig {
            max_buckets: 32,
            exemplar_bands: 2,
            exemplars_per_band: 1,
            max_endpoints: 2,
            byte_cap: 8 * 1024,
            ..ScopeConfig::default()
        }
    }

    #[test]
    fn cluster_is_the_merge_of_its_parts() {
        let mut plane = ScopePlane::new(tiny());
        let mut keys = Vec::new();
        for c in 0..6 {
            let ep = format!("ep{}", c % 2);
            keys.push(plane.register(&ep, &format!("conn{c}")));
        }
        for (i, key) in keys.iter().enumerate() {
            for s in 0..50u64 {
                plane.record(*key, (i as u64 + 1) * 100 + s, s, 0, XrayTag::none());
            }
        }
        assert_eq!(plane.records(), 300);
        assert_eq!(plane.cluster().sketch().count(), 300);
        assert!(plane.rollup_reconciles());
    }

    #[test]
    fn shard_absorption_equals_inline_recording() {
        let cfg = tiny();
        // Plane A records every sample inline; plane B records half
        // inline and absorbs the other half as a domain shard.
        let mut inline = ScopePlane::new(cfg);
        let mut sharded = ScopePlane::new(cfg);
        let ki = inline.register("ep0", "conn0");
        let ks = sharded.register("ep0", "conn0");
        let mut shard = QuantileSketch::new(cfg.sketch_config());
        for i in 0..200u64 {
            let v = 1_000 + i * 13;
            inline.record(ki, v, 0, 0, XrayTag::none());
            if i % 2 == 0 {
                sharded.record(ks, v, 0, 0, XrayTag::none());
            } else {
                shard.record(v);
            }
        }
        sharded.absorb_shard(ks, &shard);
        assert_eq!(sharded.records(), inline.records());
        assert_eq!(sharded.cluster().sketch(), inline.cluster().sketch());
        assert!(sharded.rollup_reconciles(), "roll-up still exact");
    }

    #[test]
    fn overflow_shards_count_as_overflow_records() {
        let cfg = tiny();
        let mut plane = ScopePlane::new(cfg);
        let mut shard = QuantileSketch::new(cfg.sketch_config());
        for i in 0..10u64 {
            shard.record(500 + i);
        }
        plane.absorb_shard(ScopeKey::overflow(), &shard);
        assert_eq!(plane.records(), 10);
        assert_eq!(plane.overflow_records(), 10);
        assert!(plane.rollup_reconciles());
    }

    #[test]
    fn budget_denial_is_visible_and_lossless() {
        let mut cfg = tiny();
        // Room for the three fixed series and not much else.
        cfg.byte_cap = ScopePlane::new(cfg).worst_case_bytes() + cfg.series_footprint() * 2;
        let mut plane = ScopePlane::new(cfg);
        let mut dedicated = 0;
        for c in 0..100 {
            let key = plane.register("ep0", &format!("conn{c}"));
            if key.is_dedicated() {
                dedicated += 1;
            }
            plane.record(key, 1_000 + c as u64, 0, 0, XrayTag::none());
        }
        assert!(dedicated < 100, "the cap must deny most slots");
        assert_eq!(plane.denied_conns(), 100 - dedicated as u64);
        // Nothing was lost: every sample reached the cluster sketch.
        assert_eq!(plane.cluster().sketch().count(), 100);
        assert!(plane.rollup_reconciles());
        assert!(plane.within_budget());
        assert!(plane.mem_bytes() <= cfg.byte_cap);
    }

    #[test]
    fn top_conns_ranks_by_quantile() {
        let mut plane = ScopePlane::new(tiny());
        let slow = plane.register("ep0", "slowpoke");
        let fast = plane.register("ep0", "quick");
        for i in 0..100u64 {
            plane.record(slow, 50_000 + i, i, 0, XrayTag::none());
            plane.record(fast, 500 + i, i, 0, XrayTag::none());
        }
        let top = plane.top_conns(0.99, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, "slowpoke");
        assert!(top[0].1 > 10_000);
    }

    #[test]
    fn prometheus_export_carries_exemplars() {
        let mut plane = ScopePlane::new(tiny());
        let key = plane.register("ep0", "conn0");
        for i in 0..200u64 {
            plane.record(key, 1_000 + i * 13, i, (3 << 32) | i, XrayTag::none());
        }
        let text = plane.to_prometheus("rtt", 8);
        assert!(text.contains("# TYPE pa_rtt histogram"), "{text}");
        assert!(text.contains("pa_rtt_bucket{scope=\"cluster\""), "{text}");
        assert!(text.contains("le=\"+Inf\"} 200"), "{text}");
        assert!(text.contains("# {journey=\"3:"), "missing exemplar: {text}");
        let le_lines = text
            .lines()
            .filter(|l| l.contains("scope=\"cluster\"") && l.contains("le="))
            .count();
        assert!(le_lines <= 9, "bucket lines must be strided: {le_lines}");
    }

    #[test]
    fn health_counters_reach_the_registry() {
        let mut plane = ScopePlane::new(tiny());
        let key = plane.register("ep0", "conn0");
        plane.record(key, 777, 0, 0, XrayTag::none());
        let mut snap = MetricsSnapshot::new(0);
        plane.record_into(&mut snap, "scope");
        assert_eq!(snap.get("scope", "records"), Some(1));
        assert_eq!(snap.get("scope", "conn_slots"), Some(1));
        assert!(snap.get("scope", "mem_bytes").unwrap() > 0);
    }
}
