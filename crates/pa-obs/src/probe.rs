//! Probes: where trace events go.
//!
//! The hot path holds a [`ProbeSink`] — a three-variant enum whose
//! `Noop` arm compiles to a single discriminant test, so tracing that
//! is *off* costs one predictable branch and zero allocations. (For
//! statically monomorphized hosts the [`Probe`] trait is also provided;
//! `NoopProbe`'s empty default methods vanish entirely under inlining.)
//!
//! `ProbeSink::Count` tallies events by kind without storing them —
//! used by tests to prove the instrumentation points fire, and by the
//! zero-overhead test to prove `Noop` writes nothing.

use crate::event::{Nanos, TraceEvent};
use crate::ring::TraceRing;

/// A consumer of trace events. All methods default to no-ops.
pub trait Probe {
    /// Called at each instrumentation point.
    #[inline]
    fn on_event(&mut self, _at: Nanos, _event: TraceEvent) {}

    /// True if the probe wants events. Instrumentation sites use this to
    /// skip *diagnosis* work (e.g. scanning a header for the first
    /// mismatching field) that exists only to enrich events.
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// The probe that observes nothing (the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Event tallies by kind (no storage, no allocation after construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `FastSend` events.
    pub fast_sends: u64,
    /// `SlowSend` events.
    pub slow_sends: u64,
    /// `Queued` events.
    pub queued: u64,
    /// `FastDeliver` events.
    pub fast_delivers: u64,
    /// `SlowDeliver` events.
    pub slow_delivers: u64,
    /// `PredictMiss` events.
    pub predict_misses: u64,
    /// `FilterReject` events.
    pub filter_rejects: u64,
    /// `Drop` events.
    pub drops: u64,
    /// `BacklogDrain` events.
    pub backlog_drains: u64,
    /// `Control` events.
    pub controls: u64,
    /// `JourneySend` events.
    pub journey_sends: u64,
    /// `JourneyDeliver` events.
    pub journey_delivers: u64,
    /// `Disable` events (attributed §3.2 counter bumps).
    pub disables: u64,
    /// `Enable` events.
    pub enables: u64,
    /// `InvariantViolation` events (survived engine bugs).
    pub invariant_violations: u64,
}

impl EventCounts {
    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.fast_sends
            + self.slow_sends
            + self.queued
            + self.fast_delivers
            + self.slow_delivers
            + self.predict_misses
            + self.filter_rejects
            + self.drops
            + self.backlog_drains
            + self.controls
            + self.journey_sends
            + self.journey_delivers
            + self.disables
            + self.enables
            + self.invariant_violations
    }

    #[inline]
    fn bump(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::FastSend => self.fast_sends += 1,
            TraceEvent::SlowSend { .. } => self.slow_sends += 1,
            TraceEvent::Queued { .. } => self.queued += 1,
            TraceEvent::FastDeliver { .. } => self.fast_delivers += 1,
            TraceEvent::SlowDeliver { .. } => self.slow_delivers += 1,
            TraceEvent::PredictMiss { .. } => self.predict_misses += 1,
            TraceEvent::FilterReject { .. } => self.filter_rejects += 1,
            TraceEvent::Drop { .. } => self.drops += 1,
            TraceEvent::BacklogDrain { .. } => self.backlog_drains += 1,
            TraceEvent::Control { .. } => self.controls += 1,
            TraceEvent::JourneySend { .. } => self.journey_sends += 1,
            TraceEvent::JourneyDeliver { .. } => self.journey_delivers += 1,
            TraceEvent::Disable { .. } => self.disables += 1,
            TraceEvent::Enable { .. } => self.enables += 1,
            TraceEvent::InvariantViolation { .. } => self.invariant_violations += 1,
        }
    }
}

/// The cheap-enum probe held by each connection.
#[derive(Debug, Clone, Default)]
pub enum ProbeSink {
    /// Tracing off: one branch, nothing else.
    #[default]
    Noop,
    /// Tally events by kind.
    Count(EventCounts),
    /// Record events into a fixed-capacity ring.
    Ring(TraceRing),
}

impl ProbeSink {
    /// A counting probe starting at zero.
    pub fn counting() -> ProbeSink {
        ProbeSink::Count(EventCounts::default())
    }

    /// A ring probe retaining `capacity` records.
    pub fn ring(capacity: usize) -> ProbeSink {
        ProbeSink::Ring(TraceRing::new(capacity))
    }

    /// Emits one event.
    #[inline]
    pub fn emit(&mut self, at: Nanos, event: TraceEvent) {
        match self {
            ProbeSink::Noop => {}
            ProbeSink::Count(c) => c.bump(&event),
            ProbeSink::Ring(r) => r.push(at, event),
        }
    }

    /// True unless this is the no-op sink (see [`Probe::is_enabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self, ProbeSink::Noop)
    }

    /// The tallies, if this is a counting probe.
    pub fn counts(&self) -> Option<&EventCounts> {
        match self {
            ProbeSink::Count(c) => Some(c),
            _ => None,
        }
    }

    /// The ring, if this is a ring probe.
    pub fn trace_ring(&self) -> Option<&TraceRing> {
        match self {
            ProbeSink::Ring(r) => Some(r),
            _ => None,
        }
    }

    /// Mutable ring access (labelling, clearing).
    pub fn trace_ring_mut(&mut self) -> Option<&mut TraceRing> {
        match self {
            ProbeSink::Ring(r) => Some(r),
            _ => None,
        }
    }
}

impl Probe for ProbeSink {
    #[inline]
    fn on_event(&mut self, at: Nanos, event: TraceEvent) {
        self.emit(at, event);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, SlowCause};

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut p = ProbeSink::Noop;
        assert!(!p.enabled());
        p.emit(0, TraceEvent::FastSend);
        assert!(p.counts().is_none());
        assert!(p.trace_ring().is_none());
    }

    #[test]
    fn counting_tallies_by_kind() {
        let mut p = ProbeSink::counting();
        assert!(p.enabled());
        p.emit(0, TraceEvent::FastSend);
        p.emit(1, TraceEvent::FastSend);
        p.emit(
            2,
            TraceEvent::SlowSend {
                cause: SlowCause::FilterReject,
            },
        );
        p.emit(
            3,
            TraceEvent::Drop {
                reason: DropCause::Malformed,
            },
        );
        let c = p.counts().unwrap();
        assert_eq!(c.fast_sends, 2);
        assert_eq!(c.slow_sends, 1);
        assert_eq!(c.drops, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn ring_records_in_order() {
        let mut p = ProbeSink::ring(8);
        p.emit(5, TraceEvent::Control { layer: "window" });
        p.emit(9, TraceEvent::FastDeliver { msgs: 2 });
        let r = p.trace_ring().unwrap();
        assert_eq!(r.total(), 2);
        assert_eq!(r.records()[1].at, 9);
    }

    #[test]
    fn trait_default_is_noop() {
        struct Nothing;
        impl Probe for Nothing {}
        let mut n = Nothing;
        assert!(!n.is_enabled());
        n.on_event(0, TraceEvent::FastSend); // must compile to nothing
    }
}
