//! The unified metrics registry.
//!
//! Counters live all over the stack — per-connection `ConnStats`, the
//! router's lookup counters, layer meters, buffer-pool hit rates, fault
//! injectors. A [`MetricsSnapshot`] flattens all of them into one
//! ordered `(scope, name) → value` registry taken at a point in
//! (logical) time, so totals can be reconciled, deltas computed between
//! snapshots, and the whole thing rendered as a human table or JSON
//! lines. Snapshots are taken off the hot path; they may allocate.

use crate::event::Nanos;
use std::collections::BTreeMap;
use std::fmt;

/// A point-in-time flattening of every counter in an endpoint.
///
/// Stored scope-first (`scope → name → value`) so lookups and
/// accumulation can borrow `&str` keys: [`MetricsSnapshot::add`] and
/// [`MetricsSnapshot::get`] allocate **only** when a scope or name is
/// seen for the first time — which is what lets a
/// [`TelemetryDomain`](crate::TelemetryDomain) fold stats deltas on
/// every drain batch with a heap-silent steady state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    at: Nanos,
    entries: BTreeMap<String, BTreeMap<String, u64>>,
}

impl MetricsSnapshot {
    /// An empty snapshot stamped `at` logical nanoseconds.
    pub fn new(at: Nanos) -> MetricsSnapshot {
        MetricsSnapshot {
            at,
            entries: BTreeMap::new(),
        }
    }

    /// The snapshot's timestamp.
    pub fn at(&self) -> Nanos {
        self.at
    }

    /// Returns the counter slot for `(scope, name)`, creating it at 0.
    /// Allocates only when the scope or name is new.
    fn slot(&mut self, scope: &str, name: &str) -> &mut u64 {
        // Two-phase lookup keeps the warm path borrow-only; the
        // entry-API shortcut would build owned keys on every call.
        if !self.entries.contains_key(scope) {
            self.entries.insert(scope.to_string(), BTreeMap::new());
        }
        let inner = self.entries.get_mut(scope).expect("just ensured");
        if !inner.contains_key(name) {
            inner.insert(name.to_string(), 0);
        }
        inner.get_mut(name).expect("just ensured")
    }

    /// Records (or overwrites) one counter under `scope`.
    pub fn record(&mut self, scope: &str, name: &str, value: u64) {
        *self.slot(scope, name) = value;
    }

    /// Adds `value` to an existing counter (starting at 0).
    pub fn add(&mut self, scope: &str, name: &str, value: u64) {
        *self.slot(scope, name) += value;
    }

    /// Looks up one counter.
    pub fn get(&self, scope: &str, name: &str) -> Option<u64> {
        self.entries.get(scope)?.get(name).copied()
    }

    /// Sums `name` across every scope.
    pub fn total(&self, name: &str) -> u64 {
        self.entries
            .values()
            .filter_map(|inner| inner.get(name))
            .sum()
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.entries.values().map(|inner| inner.len()).sum()
    }

    /// True if no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(scope, name, value)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.entries
            .iter()
            .flat_map(|(s, inner)| inner.iter().map(move |(n, v)| (s.as_str(), n.as_str(), *v)))
    }

    /// Counters that changed since `earlier`, as `self − earlier`
    /// (saturating; counters absent earlier count from 0). The result
    /// is stamped with this snapshot's time.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new(self.at);
        for (scope, name, v) in self.iter() {
            let before = earlier.get(scope, name).unwrap_or(0);
            let d = v.saturating_sub(before);
            if d != 0 {
                out.record(scope, name, d);
            }
        }
        out
    }

    /// Renders a right-aligned text table grouped by scope.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "metrics @ {} ns ({} counters)\n",
            self.at,
            self.len()
        ));
        let name_w = self
            .iter()
            .map(|(_, n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max("name".len());
        let val_w = self
            .iter()
            .map(|(_, _, v)| v.to_string().len())
            .max()
            .unwrap_or(1)
            .max("value".len());
        for (scope, inner) in &self.entries {
            s.push_str(&format!("  [{scope}]\n"));
            for (name, v) in inner {
                s.push_str(&format!("    {name:<name_w$}  {v:>val_w$}\n"));
            }
        }
        s
    }

    /// Renders one JSON object per line:
    /// `{"at":N,"scope":"...","name":"...","value":N}`.
    pub fn to_json_lines(&self) -> String {
        let mut s = String::new();
        for (scope, name, v) in self.iter() {
            s.push_str(&format!(
                "{{\"at\":{},\"scope\":\"{}\",\"name\":\"{}\",\"value\":{}}}\n",
                self.at,
                json_escape(scope),
                json_escape(name),
                v
            ));
        }
        s
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new(1_000);
        s.record("conn0", "fast_sends", 90);
        s.record("conn0", "slow_sends", 10);
        s.record("router", "cookie_hits", 99);
        s
    }

    #[test]
    fn record_get_total() {
        let mut s = sample();
        s.record("conn1", "fast_sends", 5);
        assert_eq!(s.get("conn0", "fast_sends"), Some(90));
        assert_eq!(s.get("connX", "fast_sends"), None);
        assert_eq!(s.total("fast_sends"), 95);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn add_accumulates() {
        let mut s = MetricsSnapshot::new(0);
        s.add("pool", "hits", 3);
        s.add("pool", "hits", 4);
        assert_eq!(s.get("pool", "hits"), Some(7));
    }

    #[test]
    fn delta_reports_only_changes() {
        let before = sample();
        let mut after = sample();
        after.record("conn0", "fast_sends", 150);
        after.record("conn0", "frames_in", 7); // new counter
        let d = after.delta(&before);
        assert_eq!(d.get("conn0", "fast_sends"), Some(60));
        assert_eq!(d.get("conn0", "frames_in"), Some(7));
        assert_eq!(
            d.get("conn0", "slow_sends"),
            None,
            "unchanged counters omitted"
        );
        assert_eq!(d.get("router", "cookie_hits"), None);
    }

    #[test]
    fn table_groups_by_scope() {
        let t = sample().render_table();
        assert!(t.contains("[conn0]"), "{t}");
        assert!(t.contains("[router]"), "{t}");
        assert!(t.contains("fast_sends"), "{t}");
        // Scope header appears once even with two counters under it.
        assert_eq!(t.matches("[conn0]").count(), 1, "{t}");
    }

    #[test]
    fn json_lines_are_one_object_per_counter() {
        let j = sample().to_json_lines();
        assert_eq!(j.lines().count(), 3);
        assert!(
            j.lines()
                .all(|l| l.starts_with("{\"at\":1000,\"scope\":\"") && l.ends_with('}')),
            "{j}"
        );
        assert!(j.contains("\"name\":\"cookie_hits\",\"value\":99"), "{j}");
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let a: Vec<_> = sample()
            .iter()
            .map(|(s, n, _)| format!("{s}.{n}"))
            .collect();
        let b: Vec<_> = sample()
            .iter()
            .map(|(s, n, _)| format!("{s}.{n}"))
            .collect();
        assert_eq!(a, b);
        assert_eq!(a[0], "conn0.fast_sends");
    }
}
