//! The time-series flight recorder.
//!
//! A [`FlightRecorder`] samples [`MetricsSnapshot`] *deltas* on a
//! virtual-time cadence into fixed-capacity ring-buffered
//! [`TimeSeries`] — how the fast-path ratio, drop rate, backlog depth
//! and pool occupancy evolve over a run, not just their final totals.
//! Like the trace ring, storage is bounded: a series holds the most
//! recent `capacity` points and overwrites the oldest beyond that.
//!
//! Exporters: Prometheus text exposition ([`FlightRecorder::to_prometheus`])
//! and JSON lines ([`FlightRecorder::to_json_lines`]). When a run's
//! invariants break (a connection's delivery ledger stops balancing, or
//! a disable counter wedges the send path), the host triggers a
//! [`Postmortem`] dump that freezes the recorder's view of the failure.

use crate::event::Nanos;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One fixed-capacity ring-buffered series of `(at, value)` points.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    buf: Vec<(Nanos, f64)>,
    head: usize,
    total: u64,
}

impl TimeSeries {
    /// A series retaining the most recent `capacity` points (≥ 1).
    pub fn new(name: &str, capacity: usize) -> TimeSeries {
        let capacity = capacity.max(1);
        TimeSeries {
            name: name.to_string(),
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            total: 0,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point; overwrites the oldest when full.
    pub fn push(&mut self, at: Nanos, value: f64) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push((at, value));
        } else {
            self.buf[self.head] = (at, value);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Points recorded over the series' lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Points currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> Vec<(Nanos, f64)> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The most recent point.
    pub fn last(&self) -> Option<(Nanos, f64)> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last().copied()
        } else {
            Some(self.buf[self.head - 1])
        }
    }

    /// Points pushed and since overwritten by the ring.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Heap + inline footprint in bytes (capacity-accurate).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<TimeSeries>()
            + self.name.capacity()
            + self.buf.capacity() * std::mem::size_of::<(Nanos, f64)>()
    }
}

/// A frozen dump taken when an invariant broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postmortem {
    /// When the invariant break was detected.
    pub at: Nanos,
    /// What broke (e.g. `delivery ledger out of balance on conn1`).
    pub reason: String,
    /// The recorder's full rendering at the moment of failure.
    pub report: String,
}

/// Samples metrics deltas on a virtual-time cadence into ring-buffered
/// series.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    interval: Nanos,
    capacity: usize,
    max_series: usize,
    last_sample_at: Option<Nanos>,
    prev: Option<MetricsSnapshot>,
    series: BTreeMap<String, TimeSeries>,
    samples: u64,
    dropped_points: u64,
    postmortem: Option<Postmortem>,
    domain: u32,
}

/// Default cap on distinct series per recorder (see
/// [`FlightRecorder::with_limits`]).
pub const DEFAULT_MAX_SERIES: usize = 64;

impl FlightRecorder {
    /// A recorder sampling every `interval` virtual nanoseconds,
    /// retaining `capacity` points per series, with the default
    /// [`DEFAULT_MAX_SERIES`] series cap.
    pub fn new(interval: Nanos, capacity: usize) -> FlightRecorder {
        FlightRecorder::with_limits(interval, capacity, DEFAULT_MAX_SERIES)
    }

    /// A recorder with an explicit series cap: memory is bounded by
    /// `max_series × capacity` points. Pushes that would create a
    /// series beyond the cap are counted in
    /// [`FlightRecorder::dropped_points`] — never silently lost.
    pub fn with_limits(interval: Nanos, capacity: usize, max_series: usize) -> FlightRecorder {
        FlightRecorder {
            interval: interval.max(1),
            capacity: capacity.max(1),
            max_series: max_series.max(1),
            last_sample_at: None,
            prev: None,
            series: BTreeMap::new(),
            samples: 0,
            dropped_points: 0,
            postmortem: None,
            domain: 0,
        }
    }

    /// Labels this recorder with its owning telemetry domain (see
    /// `pa_obs::domain`). A recorder is owned by exactly one thread;
    /// overflow accounting therefore stays per-domain by construction —
    /// the merged snapshot's global drop count is the *sum* of each
    /// domain's [`FlightRecorder::dropped_points`], with no shared
    /// counter to race on.
    pub fn set_domain(&mut self, domain: u32) {
        self.domain = domain;
    }

    /// The owning telemetry domain (0 = default single-threaded).
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The sampling cadence.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// True if a sample is due at `at` (one full interval has elapsed
    /// since the last sample, or none has been taken yet).
    pub fn due(&self, at: Nanos) -> bool {
        match self.last_sample_at {
            None => true,
            Some(last) => at >= last + self.interval,
        }
    }

    /// Samples if due at the snapshot's timestamp; returns whether a
    /// sample was taken. `gauges` are instantaneous values (backlog
    /// depth, pool occupancy) recorded verbatim alongside the counter
    /// deltas.
    pub fn maybe_sample(&mut self, snap: &MetricsSnapshot, gauges: &[(&str, f64)]) -> bool {
        if !self.due(snap.at()) {
            return false;
        }
        self.sample(snap, gauges);
        true
    }

    /// Unconditionally takes one sample from `snap`.
    ///
    /// Counter series are *rates per interval*: the delta of the
    /// counter since the previous sample. Derived series:
    ///
    /// - `fast_path_ratio` — fraction of this interval's path decisions
    ///   (sends + deliveries) that took the fast path (recorded only
    ///   when the interval saw any);
    /// - `drops` — total frames dropped this interval (all `drops_*`
    ///   counters summed);
    /// - `frames` — frames in + out this interval.
    pub fn sample(&mut self, snap: &MetricsSnapshot, gauges: &[(&str, f64)]) {
        let at = snap.at();
        let delta = match &self.prev {
            Some(prev) => snap.delta(prev),
            None => snap.clone(),
        };

        let fast = delta.total("fast_sends") + delta.total("fast_deliveries");
        let slow = delta.total("slow_sends") + delta.total("slow_deliveries");
        if fast + slow > 0 {
            let ratio = fast as f64 / (fast + slow) as f64;
            self.push("fast_path_ratio", at, ratio);
        }
        let drops: u64 = delta
            .iter()
            .filter(|(_, n, _)| n.starts_with("drops"))
            .map(|(_, _, v)| v)
            .sum();
        self.push("drops", at, drops as f64);
        let frames = delta.total("frames_in") + delta.total("frames_out");
        self.push("frames", at, frames as f64);
        for &(name, v) in gauges {
            self.push(name, at, v);
        }

        self.prev = Some(snap.clone());
        self.last_sample_at = Some(at);
        self.samples += 1;
    }

    fn push(&mut self, name: &str, at: Nanos, v: f64) {
        if !self.series.contains_key(name) && self.series.len() >= self.max_series {
            self.dropped_points += 1;
            return;
        }
        let cap = self.capacity;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name, cap))
            .push(at, v);
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The series cap.
    pub fn max_series(&self) -> usize {
        self.max_series
    }

    /// Points refused because the series cap was reached.
    pub fn dropped_points(&self) -> u64 {
        self.dropped_points
    }

    /// Points pushed and since overwritten by the per-series rings.
    pub fn overwritten_points(&self) -> u64 {
        self.series.values().map(|s| s.overwritten()).sum()
    }

    /// Heap + inline footprint in bytes (capacity-accurate).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<FlightRecorder>()
            + self
                .series
                .iter()
                .map(|(k, s)| k.capacity() + 16 + s.mem_bytes())
                .sum::<usize>()
            + self
                .prev
                .as_ref()
                .map(|p| p.iter().count() * 64)
                .unwrap_or(0)
            + self
                .postmortem
                .as_ref()
                .map(|p| p.report.capacity() + p.reason.capacity())
                .unwrap_or(0)
    }

    /// Exports the recorder's own bookkeeping into the metrics
    /// registry under `scope` — the recorder watches the system, and
    /// this line watches the recorder: ring overwrites and capped-out
    /// series stop being invisible.
    pub fn record_into(&self, snap: &mut MetricsSnapshot, scope: &str) {
        snap.record(scope, "samples", self.samples);
        snap.record(scope, "series", self.series.len() as u64);
        snap.record(scope, "series_cap", self.max_series as u64);
        snap.record(
            scope,
            "points_retained",
            self.series.values().map(|s| s.len() as u64).sum(),
        );
        snap.record(scope, "points_overwritten", self.overwritten_points());
        snap.record(scope, "points_dropped", self.dropped_points);
        if self.domain != 0 {
            snap.record(scope, "domain", self.domain as u64);
        }
        snap.record(scope, "mem_bytes", self.mem_bytes() as u64);
        snap.record(
            scope,
            "postmortems",
            if self.postmortem.is_some() { 1 } else { 0 },
        );
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series, in deterministic (name) order.
    pub fn series(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.values()
    }

    /// Prometheus text exposition: the latest value of every series as
    /// a gauge, with a millisecond timestamp.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in self.series.values() {
            let Some((at, v)) = s.last() else { continue };
            let name = prometheus_name(s.name());
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v} {}", at / 1_000_000);
        }
        out
    }

    /// JSON lines: every retained point of every series,
    /// `{"at":N,"series":"...","value":V}`.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in self.series.values() {
            for (at, v) in s.points() {
                let _ = writeln!(
                    out,
                    "{{\"at\":{at},\"series\":\"{}\",\"value\":{v}}}",
                    s.name()
                );
            }
        }
        out
    }

    /// Freezes a post-mortem dump: the reason, the last metrics
    /// snapshot, and the full series history. Only the *first* trigger
    /// is kept (the earliest failure is the interesting one).
    pub fn trigger_postmortem(&mut self, at: Nanos, reason: &str, last: &MetricsSnapshot) {
        if self.postmortem.is_some() {
            return;
        }
        let mut report = String::new();
        let _ = writeln!(report, "POSTMORTEM @ {at} ns: {reason}");
        report.push_str(&last.render_table());
        report.push_str("--- flight-recorder series ---\n");
        report.push_str(&self.to_json_lines());
        self.postmortem = Some(Postmortem {
            at,
            reason: reason.to_string(),
            report,
        });
    }

    /// The frozen dump, if an invariant broke.
    pub fn postmortem(&self) -> Option<&Postmortem> {
        self.postmortem.as_ref()
    }
}

/// Sanitizes a series name into a Prometheus metric name with the
/// `pa_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("pa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: Nanos, fast: u64, slow: u64, drops: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new(at);
        s.record("conn0", "fast_sends", fast);
        s.record("conn0", "slow_sends", slow);
        s.record("conn0", "drops_malformed", drops);
        s.record("conn0", "frames_out", fast + slow);
        s
    }

    #[test]
    fn series_ring_overwrites_oldest() {
        let mut s = TimeSeries::new("x", 3);
        for i in 0..5u64 {
            s.push(i * 10, i as f64);
        }
        assert_eq!(s.total(), 5);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.points().iter().map(|&(at, _)| at).collect::<Vec<_>>(),
            vec![20, 30, 40]
        );
        assert_eq!(s.last(), Some((40, 4.0)));
    }

    #[test]
    fn cadence_gates_sampling() {
        let mut fr = FlightRecorder::new(1_000, 16);
        assert!(fr.maybe_sample(&snap(0, 10, 0, 0), &[]));
        assert!(!fr.maybe_sample(&snap(500, 12, 0, 0), &[]), "not due yet");
        assert!(fr.maybe_sample(&snap(1_000, 15, 5, 0), &[]));
        assert_eq!(fr.samples(), 2);
    }

    #[test]
    fn samples_record_deltas_not_totals() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(0, 10, 0, 0), &[]);
        fr.sample(&snap(100, 30, 20, 3), &[]);
        // Second interval: 20 fast, 20 slow → ratio 0.5; 3 drops.
        let ratio = fr.get("fast_path_ratio").unwrap().points();
        assert_eq!(ratio.last().unwrap().1, 0.5);
        let drops = fr.get("drops").unwrap().last().unwrap();
        assert_eq!(drops, (100, 3.0));
    }

    #[test]
    fn quiet_interval_skips_ratio_but_keeps_counters() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(0, 10, 0, 0), &[]);
        fr.sample(&snap(100, 10, 0, 0), &[]); // nothing happened
        assert_eq!(fr.get("fast_path_ratio").unwrap().total(), 1);
        assert_eq!(fr.get("drops").unwrap().total(), 2);
    }

    #[test]
    fn gauges_are_recorded_verbatim() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(0, 1, 0, 0), &[("backlog_depth", 7.0)]);
        assert_eq!(fr.get("backlog_depth").unwrap().last(), Some((0, 7.0)));
    }

    #[test]
    fn prometheus_exports_latest_values() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(2_000_000, 9, 1, 0), &[("backlog_depth", 2.0)]);
        let p = fr.to_prometheus();
        assert!(p.contains("# TYPE pa_fast_path_ratio gauge"), "{p}");
        assert!(p.contains("pa_fast_path_ratio 0.9 2"), "{p}");
        assert!(p.contains("pa_backlog_depth 2 2"), "{p}");
    }

    #[test]
    fn json_lines_cover_every_point() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(0, 1, 1, 0), &[]);
        fr.sample(&snap(10, 2, 2, 0), &[]);
        let j = fr.to_json_lines();
        // fast_path_ratio ×2 + drops ×2 + frames ×2
        assert_eq!(j.lines().count(), 6, "{j}");
        assert!(
            j.lines()
                .all(|l| l.starts_with("{\"at\":") && l.ends_with('}')),
            "{j}"
        );
    }

    #[test]
    fn postmortem_freezes_the_first_failure() {
        let mut fr = FlightRecorder::new(1, 16);
        fr.sample(&snap(0, 5, 0, 0), &[]);
        let s = snap(50, 5, 0, 2);
        fr.trigger_postmortem(50, "ledger out of balance", &s);
        fr.trigger_postmortem(90, "second failure", &s);
        let pm = fr.postmortem().unwrap();
        assert_eq!(pm.at, 50);
        assert!(pm.reason.contains("ledger"), "{}", pm.reason);
        assert!(pm.report.contains("POSTMORTEM @ 50"), "{}", pm.report);
        assert!(pm.report.contains("drops_malformed"), "{}", pm.report);
        assert!(
            pm.report.contains("flight-recorder series"),
            "{}",
            pm.report
        );
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("fast-path ratio"), "pa_fast_path_ratio");
    }

    #[test]
    fn series_cap_drops_visibly() {
        let mut fr = FlightRecorder::with_limits(1, 4, 2);
        // The derived series (fast_path_ratio, drops, frames) already
        // exceed a cap of 2 — the third is refused and counted.
        fr.sample(&snap(0, 5, 5, 1), &[("backlog_depth", 1.0)]);
        assert_eq!(fr.series().count(), 2);
        assert!(fr.dropped_points() >= 2, "{}", fr.dropped_points());
        let mut reg = MetricsSnapshot::new(0);
        fr.record_into(&mut reg, "recorder");
        assert_eq!(reg.get("recorder", "series"), Some(2));
        assert_eq!(
            reg.get("recorder", "points_dropped"),
            Some(fr.dropped_points())
        );
    }

    #[test]
    fn overwritten_points_are_accounted() {
        let mut fr = FlightRecorder::new(1, 2);
        for i in 0..5u64 {
            fr.sample(&snap(i * 10, i * 3, 0, 0), &[]);
        }
        // drops + frames keep 2 of 5 points each; ratio series varies.
        assert!(fr.overwritten_points() >= 6, "{}", fr.overwritten_points());
        let mut reg = MetricsSnapshot::new(0);
        fr.record_into(&mut reg, "recorder");
        assert_eq!(
            reg.get("recorder", "points_overwritten"),
            Some(fr.overwritten_points())
        );
        assert!(reg.get("recorder", "mem_bytes").unwrap() > 0);
    }
}
