//! A fixed-capacity, allocation-free trace ring.
//!
//! All storage is allocated once at construction; pushing a record into
//! a full ring overwrites the oldest one and bumps the `overwritten`
//! counter, so the hot path never allocates and never blocks. Records
//! carry logical [`Nanos`] timestamps and a per-ring (i.e.
//! per-connection) sequence number so a merged dump across connections
//! can be ordered deterministically.

use crate::event::{FieldRef, Nanos, TraceEvent};

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Per-ring sequence number (0-based, never wraps in practice).
    pub seq: u64,
    /// Logical timestamp the event was emitted at.
    pub at: Nanos,
    /// Connection label stamped by the ring (endpoint-assigned index).
    pub conn: u32,
    /// Telemetry-domain label stamped by the ring (0 = the default,
    /// single-threaded domain; see `pa_obs::domain`). Rendering is
    /// unchanged so single-domain dumps stay byte-identical.
    pub domain: u32,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders `seq/at/conn/event` on one line.
    pub fn render(&self, resolve: &dyn Fn(FieldRef) -> String) -> String {
        format!(
            "[{:>10} ns] conn={} #{:<5} {}",
            self.at,
            self.conn,
            self.seq,
            self.event.render(resolve)
        )
    }
}

/// Fixed-capacity ring of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    capacity: usize,
    head: usize,
    seq: u64,
    overwritten: u64,
    conn: u32,
    domain: u32,
}

impl TraceRing {
    /// A ring retaining the most recent `capacity` records (≥ 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            seq: 0,
            overwritten: 0,
            conn: 0,
            domain: 0,
        }
    }

    /// Stamps subsequent records with a connection label.
    pub fn set_conn(&mut self, conn: u32) {
        self.conn = conn;
    }

    /// Stamps subsequent records with a telemetry-domain label — set
    /// when the ring's owner moves to a worker thread, so a merged
    /// timeline shows which thread each hop ran on.
    pub fn set_domain(&mut self, domain: u32) {
        self.domain = domain;
    }

    /// The domain label currently stamped on new records.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Appends an event; never allocates once the ring has filled.
    #[inline]
    pub fn push(&mut self, at: Nanos, event: TraceEvent) {
        let rec = TraceRecord {
            seq: self.seq,
            at,
            conn: self.conn,
            domain: self.domain,
            event,
        };
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Events recorded over the ring's lifetime (= next sequence number).
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Renders the retained records, one per line, oldest first.
    pub fn dump(&self, resolve: &dyn Fn(FieldRef) -> String) -> String {
        let mut s = String::new();
        for rec in self.records() {
            s.push_str(&rec.render(resolve));
            s.push('\n');
        }
        s
    }

    /// Clears retained records (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// Merges records from several rings into one timeline ordered by
/// `(at, conn, seq)` — deterministic across runs.
pub fn merge_timeline(rings: &[&TraceRing]) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = rings.iter().flat_map(|r| r.records()).collect();
    all.sort_by_key(|r| (r.at, r.conn, r.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SlowCause;

    #[test]
    fn retains_most_recent_and_counts_overwrites() {
        let mut r = TraceRing::new(3);
        for i in 0..5u64 {
            r.push(i * 10, TraceEvent::FastSend);
        }
        assert_eq!(r.total(), 5);
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let recs = r.records();
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(recs[0].at, 20);
    }

    #[test]
    fn push_after_fill_does_not_allocate() {
        let mut r = TraceRing::new(4);
        for i in 0..4 {
            r.push(i, TraceEvent::FastSend);
        }
        let cap_before = r.buf.capacity();
        for i in 4..1000 {
            r.push(
                i,
                TraceEvent::SlowSend {
                    cause: SlowCause::PredictMiss,
                },
            );
        }
        assert_eq!(r.buf.capacity(), cap_before, "ring storage is fixed");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn merge_orders_by_time_then_conn() {
        let mut a = TraceRing::new(8);
        a.set_conn(0);
        let mut b = TraceRing::new(8);
        b.set_conn(1);
        a.push(10, TraceEvent::FastSend);
        b.push(5, TraceEvent::FastSend);
        a.push(20, TraceEvent::FastSend);
        b.push(10, TraceEvent::FastDeliver { msgs: 1 });
        let tl = merge_timeline(&[&a, &b]);
        assert_eq!(
            tl.iter().map(|r| (r.at, r.conn)).collect::<Vec<_>>(),
            vec![(5, 1), (10, 0), (10, 1), (20, 0)]
        );
    }

    #[test]
    fn dump_renders_lines() {
        let mut r = TraceRing::new(4);
        r.push(
            1,
            TraceEvent::Queued {
                disable_layer: "window",
            },
        );
        let d = r.dump(&|f| format!("{}:{}", f.class, f.index));
        assert!(d.contains("queued by=window"), "{d}");
        assert_eq!(d.lines().count(), 1);
    }

    #[test]
    fn domain_label_stamps_subsequent_records() {
        let mut r = TraceRing::new(4);
        r.push(0, TraceEvent::FastSend);
        r.set_domain(2);
        r.push(1, TraceEvent::FastSend);
        let recs = r.records();
        assert_eq!(recs[0].domain, 0, "default domain");
        assert_eq!(recs[1].domain, 2);
        assert_eq!(r.domain(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRing::new(0);
        r.push(0, TraceEvent::FastSend);
        r.push(1, TraceEvent::FastSend);
        assert_eq!(r.len(), 1);
        assert_eq!(r.records()[0].seq, 1);
    }
}
