//! The roll-up health watchdog.
//!
//! Aggregate telemetry is only useful if something *looks at it* — a
//! 10k-connection run produces no human-readable log to eyeball. The
//! [`Watchdog`] samples the cluster roll-up on a virtual-time cadence
//! and turns three silent failure shapes into explicit
//! [`WatchAlert`]s:
//!
//! - **stall** — total frame progress flat across `stall_windows`
//!   consecutive samples while connections still hold backlog;
//! - **ledger break** — the conservation invariant (`frames_in ==
//!   deliveries + drops`, as computed by the host) fails: samples were
//!   created or destroyed, the one unforgivable telemetry bug;
//! - **SLO burn** — the cluster sketch's p99 exceeds the configured
//!   objective for `burn_windows` consecutive samples.
//!
//! The watchdog is pure: it consumes a [`WatchInput`] the host
//! assembles and returns alerts; the host (pa-sim, the ops dashboard)
//! forwards them to [`FlightRecorder::trigger_postmortem`]
//! (crate::FlightRecorder) so the first failure freezes a full report.
//! Alert storage is bounded — it is itself pa-scope telemetry.

use std::fmt;

use crate::event::Nanos;

/// Cadence and thresholds for a [`Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Virtual-time sampling cadence.
    pub cadence: Nanos,
    /// p99 objective for the watched sketch, in nanoseconds. 0 turns
    /// SLO burn detection off.
    pub slo_p99_ns: u64,
    /// Consecutive over-SLO samples before an alert fires.
    pub burn_windows: u32,
    /// Consecutive no-progress-with-backlog samples before an alert.
    pub stall_windows: u32,
    /// Leaked share of protocol work (pa_obs::critpath) tolerated, in
    /// permille. 0 turns mask-leak detection off. Uses the same
    /// consecutive-window count as SLO burn (`burn_windows`).
    pub max_leak_permille: u64,
    /// Alerts retained (older ones are counted, not stored).
    pub max_alerts: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            cadence: 1_000_000, // 1 ms of virtual time
            slo_p99_ns: 0,
            burn_windows: 3,
            stall_windows: 3,
            max_leak_permille: 0,
            max_alerts: 16,
        }
    }
}

/// One sample of the roll-up, assembled by the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchInput {
    /// Virtual time of the sample.
    pub at: Nanos,
    /// Monotone total progress counter (frames delivered, requests
    /// completed — anything that moves when the system moves).
    pub progress: u64,
    /// Work currently waiting (backlogged sends, pending wakeups).
    /// A flat `progress` with zero backlog is idleness, not a stall.
    pub backlog: u64,
    /// The host's conservation invariant, e.g.
    /// `ConnStats::delivery_balanced` over every connection.
    pub ledger_ok: bool,
    /// Cluster-level p99 from the scope plane (0 if no samples yet).
    pub p99_ns: u64,
    /// Leaked share of protocol work in permille, from the masking
    /// ledger (pa_obs::critpath). 0 when no critpath analysis runs.
    pub leak_permille: u64,
}

/// One detected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchAlert {
    /// No progress for this many windows while backlog was pending.
    Stall {
        /// Consecutive flat windows.
        windows: u32,
        /// Backlog observed at detection.
        backlog: u64,
    },
    /// The delivery ledger stopped balancing.
    LedgerBreak,
    /// p99 stayed over the objective.
    SloBurn {
        /// Consecutive burning windows.
        windows: u32,
        /// The p99 observed at detection.
        p99_ns: u64,
        /// The configured objective.
        slo_ns: u64,
    },
    /// Post-phase work kept leaking onto the critical path.
    MaskLeak {
        /// Consecutive leaking windows.
        windows: u32,
        /// The leaked share observed at detection, in permille.
        permille: u64,
        /// The configured tolerance, in permille.
        limit: u64,
    },
}

impl WatchAlert {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            WatchAlert::Stall { .. } => "stall",
            WatchAlert::LedgerBreak => "ledger-break",
            WatchAlert::SloBurn { .. } => "slo-burn",
            WatchAlert::MaskLeak { .. } => "mask-leak",
        }
    }
}

impl fmt::Display for WatchAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchAlert::Stall { windows, backlog } => {
                write!(
                    f,
                    "stall: no progress for {windows} windows, backlog={backlog}"
                )
            }
            WatchAlert::LedgerBreak => write!(f, "ledger-break: frames_in != deliveries + drops"),
            WatchAlert::SloBurn {
                windows,
                p99_ns,
                slo_ns,
            } => write!(
                f,
                "slo-burn: p99={p99_ns}ns over objective {slo_ns}ns for {windows} windows"
            ),
            WatchAlert::MaskLeak {
                windows,
                permille,
                limit,
            } => write!(
                f,
                "mask-leak: {permille}‰ of protocol work on the critical path (limit {limit}‰) for {windows} windows"
            ),
        }
    }
}

/// The cadenced health monitor. Pure and allocation-bounded; the host
/// drives it with [`Watchdog::observe`] whenever [`Watchdog::due`].
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_at: Option<Nanos>,
    last_progress: u64,
    stall_streak: u32,
    burn_streak: u32,
    leak_streak: u32,
    ledger_broken: bool,
    samples: u64,
    alerts: Vec<(Nanos, WatchAlert)>,
    alerts_total: u64,
}

impl Watchdog {
    /// A fresh watchdog.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            last_at: None,
            last_progress: 0,
            stall_streak: 0,
            burn_streak: 0,
            leak_streak: 0,
            ledger_broken: false,
            samples: 0,
            alerts: Vec::new(),
            alerts_total: 0,
        }
    }

    /// The configured cadence and thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// True if a sample is due at virtual time `now`.
    pub fn due(&self, now: Nanos) -> bool {
        match self.last_at {
            None => true,
            Some(t) => now.saturating_sub(t) >= self.cfg.cadence,
        }
    }

    /// Feeds one sample; returns the alerts that fired on it. Streak
    /// alerts (stall, SLO burn) fire once per streak, on the sample
    /// that completes the window count.
    pub fn observe(&mut self, input: WatchInput) -> Vec<WatchAlert> {
        self.samples += 1;
        let mut fired = Vec::new();

        if !input.ledger_ok && !self.ledger_broken {
            self.ledger_broken = true;
            fired.push(WatchAlert::LedgerBreak);
        }

        let first = self.last_at.is_none();
        let progressed = input.progress != self.last_progress;
        if !first && !progressed && input.backlog > 0 {
            self.stall_streak += 1;
            if self.stall_streak == self.cfg.stall_windows {
                fired.push(WatchAlert::Stall {
                    windows: self.stall_streak,
                    backlog: input.backlog,
                });
            }
        } else {
            self.stall_streak = 0;
        }

        if self.cfg.slo_p99_ns > 0 && input.p99_ns > self.cfg.slo_p99_ns {
            self.burn_streak += 1;
            if self.burn_streak == self.cfg.burn_windows {
                fired.push(WatchAlert::SloBurn {
                    windows: self.burn_streak,
                    p99_ns: input.p99_ns,
                    slo_ns: self.cfg.slo_p99_ns,
                });
            }
        } else {
            self.burn_streak = 0;
        }

        if self.cfg.max_leak_permille > 0 && input.leak_permille > self.cfg.max_leak_permille {
            self.leak_streak += 1;
            if self.leak_streak == self.cfg.burn_windows {
                fired.push(WatchAlert::MaskLeak {
                    windows: self.leak_streak,
                    permille: input.leak_permille,
                    limit: self.cfg.max_leak_permille,
                });
            }
        } else {
            self.leak_streak = 0;
        }

        self.last_at = Some(input.at);
        self.last_progress = input.progress;
        for alert in &fired {
            self.alerts_total += 1;
            if self.alerts.len() < self.cfg.max_alerts {
                self.alerts.push((input.at, *alert));
            }
        }
        fired
    }

    /// Samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Retained alerts, in firing order.
    pub fn alerts(&self) -> &[(Nanos, WatchAlert)] {
        &self.alerts
    }

    /// Alerts fired over the whole run (retained or not).
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total
    }

    /// True once a ledger break was ever observed — the dashboard's
    /// exit-nonzero condition.
    pub fn ledger_broken(&self) -> bool {
        self.ledger_broken
    }

    /// True if any alert ever fired.
    pub fn healthy(&self) -> bool {
        self.alerts_total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(at: Nanos, progress: u64, backlog: u64) -> WatchInput {
        WatchInput {
            at,
            progress,
            backlog,
            ledger_ok: true,
            p99_ns: 100,
            leak_permille: 0,
        }
    }

    #[test]
    fn cadence_gates_sampling() {
        let w = Watchdog::new(WatchdogConfig::default());
        assert!(w.due(0), "first sample is always due");
        let mut w = w;
        w.observe(input(5_000_000, 1, 0));
        assert!(!w.due(5_500_000));
        assert!(w.due(6_000_000));
    }

    #[test]
    fn progress_keeps_the_dog_quiet() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        for i in 0..20 {
            let fired = w.observe(input(i * 1_000_000, i, 5));
            assert!(fired.is_empty(), "{fired:?}");
        }
        assert!(w.healthy());
    }

    #[test]
    fn stall_fires_after_the_window_count() {
        let mut w = Watchdog::new(WatchdogConfig {
            stall_windows: 3,
            ..WatchdogConfig::default()
        });
        w.observe(input(0, 10, 4));
        assert!(w.observe(input(1_000_000, 10, 4)).is_empty());
        assert!(w.observe(input(2_000_000, 10, 4)).is_empty());
        let fired = w.observe(input(3_000_000, 10, 4));
        assert_eq!(
            fired,
            vec![WatchAlert::Stall {
                windows: 3,
                backlog: 4
            }]
        );
        // The streak only reports once; recovery resets it.
        assert!(w.observe(input(4_000_000, 10, 4)).is_empty());
        assert!(w.observe(input(5_000_000, 11, 4)).is_empty());
        assert_eq!(w.alerts_total(), 1);
    }

    #[test]
    fn idle_is_not_a_stall() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        for i in 0..10 {
            let fired = w.observe(input(i * 1_000_000, 42, 0));
            assert!(fired.is_empty(), "flat progress with no backlog is idle");
        }
    }

    #[test]
    fn ledger_break_fires_once_and_sticks() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        let mut bad = input(0, 1, 0);
        bad.ledger_ok = false;
        assert_eq!(w.observe(bad), vec![WatchAlert::LedgerBreak]);
        let mut bad2 = input(1_000_000, 2, 0);
        bad2.ledger_ok = false;
        assert!(w.observe(bad2).is_empty(), "reported once");
        assert!(w.ledger_broken());
        assert!(!w.healthy());
    }

    #[test]
    fn slo_burn_needs_consecutive_windows() {
        let mut w = Watchdog::new(WatchdogConfig {
            slo_p99_ns: 1_000,
            burn_windows: 2,
            ..WatchdogConfig::default()
        });
        let hot = |at, progress| WatchInput {
            at,
            progress,
            backlog: 0,
            ledger_ok: true,
            p99_ns: 5_000,
            leak_permille: 0,
        };
        assert!(w.observe(hot(0, 1)).is_empty());
        let fired = w.observe(hot(1_000_000, 2));
        assert_eq!(
            fired,
            vec![WatchAlert::SloBurn {
                windows: 2,
                p99_ns: 5_000,
                slo_ns: 1_000
            }]
        );
        // A cool sample resets the streak.
        assert!(w.observe(input(2_000_000, 3, 0)).is_empty());
        assert_eq!(w.burn_streak, 0);
    }

    #[test]
    fn mask_leak_needs_consecutive_windows_and_resets() {
        let mut w = Watchdog::new(WatchdogConfig {
            max_leak_permille: 50,
            burn_windows: 2,
            ..WatchdogConfig::default()
        });
        let leaky = |at, progress| WatchInput {
            leak_permille: 400,
            ..input(at, progress, 0)
        };
        assert!(w.observe(leaky(0, 1)).is_empty());
        let fired = w.observe(leaky(1_000_000, 2));
        assert_eq!(
            fired,
            vec![WatchAlert::MaskLeak {
                windows: 2,
                permille: 400,
                limit: 50
            }]
        );
        // A clean sample resets the streak; the alert can re-fire.
        assert!(w.observe(input(2_000_000, 3, 0)).is_empty());
        assert_eq!(w.leak_streak, 0);
        assert!(w.observe(leaky(3_000_000, 4)).is_empty());
        assert_eq!(w.observe(leaky(4_000_000, 5)).len(), 1);
        // Off by default: permille never trips a zero limit.
        let mut off = Watchdog::new(WatchdogConfig::default());
        assert!(off.observe(leaky(0, 1)).is_empty());
        assert!(off.observe(leaky(1_000_000, 2)).is_empty());
        assert!(off.observe(leaky(2_000_000, 3)).is_empty());
    }

    #[test]
    fn alert_storage_is_bounded() {
        let mut w = Watchdog::new(WatchdogConfig {
            slo_p99_ns: 1,
            burn_windows: 1,
            max_alerts: 2,
            ..WatchdogConfig::default()
        });
        for i in 0..10 {
            // burn_windows=1 fires on every first sample of a streak;
            // alternate genuinely cool samples to restart the streak.
            let mut hot = input(i * 2_000_000, i, 0);
            hot.p99_ns = 99;
            w.observe(hot);
            let mut cool = input(i * 2_000_000 + 1_000_000, i + 100, 0);
            cool.p99_ns = 0;
            w.observe(cool);
        }
        assert!(w.alerts().len() <= 2);
        assert!(w.alerts_total() >= 5);
    }
}
