//! Reservoir-sampled exemplars: the bridge from aggregate sketches
//! back to concrete causal traces.
//!
//! A [`QuantileSketch`](crate::QuantileSketch) can say "p99 spiked";
//! it cannot say *which message* — that link is what PR 2/3's journeys
//! and [`XrayTag`]s exist for. An [`ExemplarSet`] keeps a bounded,
//! deterministic sample of concrete observations alongside a sketch:
//! each [`Exemplar`] carries the sampled value, its virtual timestamp,
//! the journey id (resolvable against a
//! [`JourneySet`](crate::JourneySet)) and the [`XrayTag`] that
//! attributes the slow-path excursion, so an aggregate anomaly
//! drills down to one offending message without keeping per-message
//! state.
//!
//! Sampling is Vitter's Algorithm R per **octave band** (log2 of the
//! value, the same bucketing as [`LatencyHisto`](crate::LatencyHisto)):
//! a single reservoir over all samples would be swamped by the fast
//! path and never retain a tail exemplar, so the set keeps the highest
//! `max_bands` octaves seen, each with its own small reservoir. All
//! randomness comes from a caller-seeded [`SplitMix64`], so two runs
//! over the same stream produce byte-identical exemplar sets —
//! eviction is explicit ([`ExemplarSet::evicted`]), never silent.

use crate::event::Nanos;
use crate::rng::{Rng, SplitMix64};
use crate::xray::XrayTag;

/// One concrete sampled observation, linkable back to its journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The sampled value (nanoseconds, by convention).
    pub value: u64,
    /// Virtual time the observation was recorded.
    pub at: Nanos,
    /// Journey id (`journey_id(origin, seq)`), 0 when the stream is
    /// untraced.
    pub journey: u64,
    /// The attribution tag charged for this observation
    /// ([`XrayTag::none`] for fast-path samples).
    pub tag: XrayTag,
}

/// One octave band: an Algorithm-R reservoir over samples whose value
/// has the same bit length.
#[derive(Debug, Clone, PartialEq)]
struct Band {
    octave: u8,
    /// Samples offered to this band since it (re)opened.
    seen: u64,
    rng: SplitMix64,
    slots: Vec<Exemplar>,
}

impl Band {
    fn new(octave: u8, per_band: usize, seed: u64) -> Band {
        // Band-local stream derived from (seed, octave): a band evicted
        // and later reopened replays the same draw sequence, keeping
        // whole-run determinism.
        let mut rng = SplitMix64::new(seed ^ (octave as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let _ = rng.next_u64(); // decorrelate nearby octaves
        let mut slots = Vec::new();
        slots.reserve_exact(per_band);
        Band {
            octave,
            seen: 0,
            rng,
            slots,
        }
    }

    fn offer(&mut self, ex: Exemplar, per_band: usize) -> u64 {
        self.seen += 1;
        if self.slots.len() < per_band {
            self.slots.push(ex);
            return 0;
        }
        let j = self.rng.gen_index(self.seen as usize);
        if j < per_band {
            self.slots[j] = ex;
        }
        1
    }
}

/// The octave a value sorts into (0 for 0, else bit length).
#[inline]
pub fn octave_of(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// A bounded, deterministic set of [`Exemplar`]s banded by value
/// octave. Keeps the `max_bands` *highest* octaves seen — the tail is
/// where drill-down matters; low-band arrivals once the set is full
/// are counted in [`ExemplarSet::sampled_out`], not silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct ExemplarSet {
    /// Bands sorted ascending by octave.
    bands: Vec<Band>,
    max_bands: usize,
    per_band: usize,
    seed: u64,
    offered: u64,
    /// Exemplars displaced: full-reservoir offers (the incoming or a
    /// retained exemplar loses the draw) plus whole-band evictions.
    evicted: u64,
    /// Offers refused outright (octave below every retained band).
    sampled_out: u64,
}

impl ExemplarSet {
    /// An empty set keeping at most `max_bands` octaves of `per_band`
    /// exemplars each, all randomness derived from `seed`.
    pub fn new(max_bands: usize, per_band: usize, seed: u64) -> ExemplarSet {
        assert!(max_bands >= 1 && per_band >= 1);
        let mut bands = Vec::new();
        bands.reserve_exact(max_bands);
        ExemplarSet {
            bands,
            max_bands,
            per_band,
            seed,
            offered: 0,
            evicted: 0,
            sampled_out: 0,
        }
    }

    /// Offers one observation for sampling.
    pub fn offer(&mut self, ex: Exemplar) {
        self.offered += 1;
        let octave = octave_of(ex.value);
        match self.bands.binary_search_by_key(&octave, |b| b.octave) {
            Ok(i) => {
                self.evicted += self.bands[i].offer(ex, self.per_band);
            }
            Err(i) => {
                if self.bands.len() < self.max_bands {
                    self.bands
                        .insert(i, Band::new(octave, self.per_band, self.seed));
                    self.evicted += self.bands[i].offer(ex, self.per_band);
                } else if i > 0 {
                    // Full, and the new octave outranks the lowest band:
                    // evict it (counted) and open the new one.
                    let dropped = self.bands.remove(0);
                    self.evicted += dropped.slots.len() as u64;
                    let i = i - 1;
                    self.bands
                        .insert(i, Band::new(octave, self.per_band, self.seed));
                    self.evicted += self.bands[i].offer(ex, self.per_band);
                } else {
                    self.sampled_out += 1;
                }
            }
        }
    }

    /// All retained exemplars, bands ascending, arrival order within a
    /// band's reservoir.
    pub fn iter(&self) -> impl Iterator<Item = &Exemplar> {
        self.bands.iter().flat_map(|b| b.slots.iter())
    }

    /// Number of retained exemplars.
    pub fn len(&self) -> usize {
        self.bands.iter().map(|b| b.slots.len()).sum()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.bands.is_empty()
    }

    /// The retained exemplar with the largest value (the natural
    /// drill-down entry point for a tail anomaly).
    pub fn peak(&self) -> Option<&Exemplar> {
        self.iter().max_by_key(|e| e.value)
    }

    /// A retained exemplar representative for values up to `edge`:
    /// the highest band at or below `edge`'s octave. Used to attach
    /// exemplars to exported histogram buckets.
    pub fn for_value(&self, edge: u64) -> Option<&Exemplar> {
        let octave = octave_of(edge);
        self.bands
            .iter()
            .rev()
            .find(|b| b.octave <= octave && !b.slots.is_empty())
            .and_then(|b| b.slots.iter().max_by_key(|e| e.value))
    }

    /// Observations offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Exemplars displaced by reservoir replacement or band eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Offers refused because their octave was below every retained
    /// band of a full set.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Heap + inline footprint in bytes (capacity-accurate).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<ExemplarSet>()
            + self.bands.capacity() * std::mem::size_of::<Band>()
            + self
                .bands
                .iter()
                .map(|b| b.slots.capacity() * std::mem::size_of::<Exemplar>())
                .sum::<usize>()
    }

    /// Worst-case footprint for this shape, for budget admission.
    pub fn mem_bytes_cap(max_bands: usize, per_band: usize) -> usize {
        std::mem::size_of::<ExemplarSet>()
            + max_bands * (std::mem::size_of::<Band>() + per_band * std::mem::size_of::<Exemplar>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(value: u64, at: Nanos) -> Exemplar {
        Exemplar {
            value,
            at,
            journey: (7 << 32) | at,
            tag: XrayTag::none(),
        }
    }

    #[test]
    fn octaves_match_histo_buckets() {
        assert_eq!(octave_of(0), 0);
        assert_eq!(octave_of(1), 1);
        assert_eq!(octave_of(255), 8);
        assert_eq!(octave_of(256), 9);
    }

    #[test]
    fn keeps_the_highest_bands() {
        let mut set = ExemplarSet::new(2, 2, 42);
        for (i, v) in [10u64, 100, 1_000, 10_000, 100_000].iter().enumerate() {
            set.offer(ex(*v, i as u64));
        }
        let octaves: Vec<u8> = set.bands.iter().map(|b| b.octave).collect();
        assert_eq!(octaves, vec![octave_of(10_000), octave_of(100_000)]);
        assert!(set.evicted() > 0, "displaced bands are counted");
        // A later low offer is refused, visibly.
        set.offer(ex(10, 99));
        assert_eq!(set.sampled_out(), 1);
    }

    #[test]
    fn identical_streams_yield_identical_sets() {
        let run = || {
            let mut set = ExemplarSet::new(4, 2, 0x5C0F);
            let mut rng = SplitMix64::new(7);
            for i in 0..10_000u64 {
                set.offer(ex(rng.gen_range_inclusive(1, 1 << 20), i));
            }
            set
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn peak_is_the_largest_retained_value() {
        let mut set = ExemplarSet::new(4, 2, 1);
        for v in [5u64, 900, 17, 40_000] {
            set.offer(ex(v, v));
        }
        assert_eq!(set.peak().expect("nonempty").value, 40_000);
        assert!(set.for_value(1_000).expect("band").value <= 1_023);
    }

    #[test]
    fn memory_stays_capped() {
        let mut set = ExemplarSet::new(3, 4, 9);
        let mut rng = SplitMix64::new(3);
        for i in 0..50_000u64 {
            set.offer(ex(rng.next_u64() >> (i % 60), i));
        }
        assert!(set.len() <= 12);
        assert!(set.mem_bytes() <= ExemplarSet::mem_bytes_cap(3, 4));
        assert_eq!(
            set.offered(),
            50_000,
            "every offer is accounted: retained + evicted + sampled_out + replaced"
        );
    }
}
