//! A group member: one accelerated connection per peer, FIFO and
//! total-order multicast on top.

use crate::envelope::{Envelope, Kind};
use crate::view::View;
use pa_buf::Msg;
use pa_core::{ConnHandle, Connection, ConnectionParams, Endpoint, Nanos, PaConfig};
use pa_obs::{DropCause, ProbeSink, TraceEvent};
use pa_stack::StackSpec;
use pa_wire::EndpointAddr;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Port every group connection uses (host ids distinguish members).
const GROUP_PORT: u32 = 0x6702;

/// Group construction parameters.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Stack under each member-to-member connection.
    pub stack: StackSpec,
    /// PA configuration for every connection.
    pub pa: PaConfig,
    /// Base seed (per-connection seeds derive from it).
    pub seed: u64,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            stack: StackSpec::paper(),
            pa: PaConfig::paper_default(),
            seed: 0x9709,
        }
    }
}

/// A message delivered to the group application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDelivery {
    /// Originating member.
    pub from: u32,
    /// Global order stamp (`Some` for total-order traffic).
    pub order: Option<u64>,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// One member of the group.
pub struct Member {
    id: u32,
    view: View,
    cfg: GroupConfig,
    endpoint: Endpoint,
    conns: HashMap<u32, ConnHandle>,
    // --- total order state ---
    /// Next stamp the sequencer hands out (sequencer only).
    next_stamp: u64,
    /// Next global sequence this member expects to deliver.
    next_deliver: u64,
    /// Stamped messages waiting for their turn.
    hold_back: BTreeMap<u64, (u32, Vec<u8>)>,
    /// Application deliveries ready to be polled.
    deliveries: VecDeque<GroupDelivery>,
    /// Total-order messages sent while we had no sequencer path yet.
    stats: GroupStats,
    /// Local virtual clock (advanced by [`Member::tick`]); stamps
    /// member-level probe events.
    now: Nanos,
    /// Member-level observability probe: membership changes and group
    /// envelope outcomes surface here as `Control` / `Drop` events.
    probe: ProbeSink,
}

/// Counters for a member.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupStats {
    /// FIFO multicasts sent.
    pub fifo_sent: u64,
    /// Total-order multicasts initiated.
    pub total_sent: u64,
    /// Messages this member stamped (sequencer duty).
    pub stamped: u64,
    /// Group messages delivered to the application.
    pub delivered: u64,
    /// Envelopes dropped (stale view, malformed).
    pub dropped: u64,
}

impl Member {
    /// Creates member `id` of `view`, building one connection per peer.
    pub fn new(id: u32, view: View, cfg: GroupConfig) -> Member {
        assert!(view.contains(id), "member must be in its own view");
        let mut m = Member {
            id,
            view: View::new(0, []),
            cfg,
            endpoint: Endpoint::new(),
            conns: HashMap::new(),
            next_stamp: 0,
            next_deliver: 0,
            hold_back: BTreeMap::new(),
            deliveries: VecDeque::new(),
            stats: GroupStats::default(),
            now: 0,
            probe: ProbeSink::Noop,
        };
        m.install_view(view);
        m
    }

    /// Our id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// True if we are the current view's sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.view.sequencer() == Some(self.id)
    }

    /// Counters.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Installs a member-level probe. Membership transitions surface as
    /// `Control { layer: "membership" }` (plus `"sequencer"` when the
    /// stamping duty moves), and rejected envelopes as
    /// `Drop { reason: ByLayer("group") }`. Ring probes are labelled
    /// with this member's id so merged timelines stay attributable.
    pub fn set_probe(&mut self, mut probe: ProbeSink) {
        if let Some(ring) = probe.trace_ring_mut() {
            ring.set_conn(self.id);
        }
        self.probe = probe;
    }

    /// The member-level probe (counts, ring records).
    pub fn probe(&self) -> &ProbeSink {
        &self.probe
    }

    /// Mutable member-level probe access.
    pub fn probe_mut(&mut self) -> &mut ProbeSink {
        &mut self.probe
    }

    /// Installs a probe on the underlying accelerated connection to
    /// `peer`, exposing the PA-level event stream (fast/slow path,
    /// journeys, window controls) for one group link. Returns `false`
    /// if no connection to `peer` exists in the current view.
    pub fn set_peer_probe(&mut self, peer: u32, probe: ProbeSink) -> bool {
        match self.conns.get(&peer) {
            Some(&h) => {
                self.endpoint.conn_mut(h).set_probe(probe);
                true
            }
            None => false,
        }
    }

    /// The probe installed on the connection to `peer`, if any.
    pub fn peer_probe(&self, peer: u32) -> Option<&ProbeSink> {
        self.conns
            .get(&peer)
            .map(|&h| self.endpoint.conn(h).probe())
    }

    /// Network address of member `id`.
    pub fn addr_of(id: u32) -> EndpointAddr {
        EndpointAddr::from_parts(id as u64, GROUP_PORT)
    }

    /// Installs a new view: connections to new peers are created, and
    /// gaps left by departed members are skipped over (messages they
    /// were stamped for but never flushed are abandoned with the view —
    /// the virtual-synchrony simplification of this kernel).
    pub fn install_view(&mut self, view: View) {
        for &peer in view.members() {
            if peer != self.id && !self.conns.contains_key(&peer) {
                let conn = Connection::new(
                    self.cfg.stack.build(),
                    self.cfg.pa,
                    ConnectionParams::new(
                        Member::addr_of(self.id),
                        Member::addr_of(peer),
                        self.cfg
                            .seed
                            .wrapping_mul(1 + self.id as u64)
                            .wrapping_add(peer as u64),
                    ),
                )
                .expect("valid group stack");
                let h = self.endpoint.add_connection(conn);
                self.conns.insert(peer, h);
            }
        }
        // If the sequencer changed, drop undeliverable hold-back
        // entries from the old regime and resynchronize the stamp
        // stream at the highest point seen.
        let sequencer_changed = view.sequencer() != self.view.sequencer();
        if sequencer_changed {
            let resume = self
                .hold_back
                .keys()
                .next_back()
                .map(|&g| g + 1)
                .unwrap_or(self.next_deliver)
                .max(self.next_deliver);
            self.hold_back.clear();
            self.next_deliver = resume;
            self.next_stamp = resume;
        }
        self.view = view;
        // Membership is a control-plane act: surface the transition
        // (and any sequencer handover) to whoever is listening.
        if self.probe.enabled() {
            self.probe.emit(
                self.now,
                TraceEvent::Control {
                    layer: "membership",
                },
            );
            if sequencer_changed {
                self.probe
                    .emit(self.now, TraceEvent::Control { layer: "sequencer" });
            }
        }
    }

    fn send_to(&mut self, peer: u32, env: &Envelope) {
        if let Some(&h) = self.conns.get(&peer) {
            self.endpoint.send(h, &env.encode());
        }
    }

    fn fan_out(&mut self, env: &Envelope) {
        let peers: Vec<u32> = self
            .view
            .members()
            .iter()
            .copied()
            .filter(|&m| m != self.id)
            .collect();
        for peer in peers {
            self.send_to(peer, env);
        }
    }

    /// FIFO multicast: fan out to every peer, deliver locally at once.
    pub fn mcast_fifo(&mut self, payload: &[u8]) {
        self.stats.fifo_sent += 1;
        let env = Envelope {
            kind: Kind::Fifo,
            view: self.view.id,
            origin: self.id,
            gseq: 0,
            payload: payload.to_vec(),
        };
        self.fan_out(&env);
        self.stats.delivered += 1;
        self.deliveries.push_back(GroupDelivery {
            from: self.id,
            order: None,
            payload: payload.to_vec(),
        });
    }

    /// Total-order multicast: route via the sequencer; delivery (even
    /// our own) happens only in stamp order.
    pub fn mcast_total(&mut self, payload: &[u8]) {
        self.stats.total_sent += 1;
        let env = Envelope {
            kind: Kind::TotalRequest,
            view: self.view.id,
            origin: self.id,
            gseq: 0,
            payload: payload.to_vec(),
        };
        if self.is_sequencer() {
            self.stamp_and_fan_out(env);
        } else if let Some(seq) = self.view.sequencer() {
            self.send_to(seq, &env);
        }
    }

    fn stamp_and_fan_out(&mut self, mut env: Envelope) {
        env.kind = Kind::TotalOrdered;
        env.gseq = self.next_stamp;
        self.next_stamp += 1;
        self.stats.stamped += 1;
        if self.probe.enabled() {
            self.probe
                .emit(self.now, TraceEvent::Control { layer: "ordering" });
        }
        self.fan_out(&env);
        self.enqueue_ordered(env.origin, env.gseq, env.payload);
    }

    /// Counts an envelope rejection on both the stats ledger and the
    /// probe (one event per rejected envelope).
    fn drop_envelope(&mut self) {
        self.stats.dropped += 1;
        if self.probe.enabled() {
            self.probe.emit(
                self.now,
                TraceEvent::Drop {
                    reason: DropCause::ByLayer("group"),
                },
            );
        }
    }

    fn enqueue_ordered(&mut self, origin: u32, gseq: u64, payload: Vec<u8>) {
        if gseq < self.next_deliver {
            self.drop_envelope(); // duplicate of something delivered
            return;
        }
        self.hold_back.insert(gseq, (origin, payload));
        while let Some(entry) = self.hold_back.remove(&self.next_deliver) {
            let (from, payload) = entry;
            self.stats.delivered += 1;
            self.deliveries.push_back(GroupDelivery {
                from,
                order: Some(self.next_deliver),
                payload,
            });
            self.next_deliver += 1;
        }
    }

    /// Routes one frame from the network into the right connection and
    /// interprets any group envelopes it releases.
    pub fn from_network(&mut self, frame: Msg) {
        self.endpoint.from_network(frame);
        while let Some(d) = self.endpoint.poll_delivery() {
            let Some(env) = Envelope::decode(d.msg.as_slice()) else {
                self.drop_envelope();
                continue;
            };
            if !self.view.contains(env.origin) {
                self.drop_envelope(); // departed member's residue
                continue;
            }
            match env.kind {
                Kind::Fifo => {
                    self.stats.delivered += 1;
                    self.deliveries.push_back(GroupDelivery {
                        from: env.origin,
                        order: None,
                        payload: env.payload,
                    });
                }
                Kind::TotalRequest => {
                    if self.is_sequencer() {
                        self.stamp_and_fan_out(env);
                    } else {
                        self.drop_envelope(); // we are not the sequencer
                    }
                }
                Kind::TotalOrdered => {
                    self.enqueue_ordered(env.origin, env.gseq, env.payload);
                }
            }
        }
    }

    /// Next outgoing frame, with its destination.
    pub fn poll_transmit(&mut self) -> Option<(EndpointAddr, Msg)> {
        self.endpoint.poll_transmit()
    }

    /// Next group delivery for the application.
    pub fn poll_delivery(&mut self) -> Option<GroupDelivery> {
        self.deliveries.pop_front()
    }

    /// Runs deferred PA post-processing on all connections.
    pub fn process_pending(&mut self) {
        self.endpoint.process_all_pending();
    }

    /// Advances retransmission timers on all connections (and the
    /// member's own probe clock).
    pub fn tick(&mut self, now: Nanos) {
        self.now = now;
        self.endpoint.tick(now);
    }
}

impl fmt::Debug for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Member")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("sequencer", &self.is_sequencer())
            .field("hold_back", &self.hold_back.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a fully connected group and a shuttle that moves frames
    /// until quiescent.
    fn group(ids: &[u32]) -> Vec<Member> {
        let view = View::new(1, ids.iter().copied());
        ids.iter()
            .map(|&id| Member::new(id, view.clone(), GroupConfig::default()))
            .collect()
    }

    fn converge(members: &mut [Member]) {
        for _ in 0..256 {
            let mut moved = false;
            for i in 0..members.len() {
                while let Some((to, frame)) = members[i].poll_transmit() {
                    let target = members.iter_mut().find(|m| Member::addr_of(m.id()) == to);
                    if let Some(t) = target {
                        t.from_network(frame);
                    }
                    moved = true;
                }
            }
            for m in members.iter_mut() {
                m.process_pending();
            }
            if !moved {
                break;
            }
        }
    }

    /// One delivered message: (sender id, total-order stamp, payload).
    type Delivery = (u32, Option<u64>, Vec<u8>);

    fn drain(m: &mut Member) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(d) = m.poll_delivery() {
            out.push((d.from, d.order, d.payload));
        }
        out
    }

    #[test]
    fn fifo_multicast_reaches_everyone() {
        let mut g = group(&[1, 2, 3]);
        g[0].mcast_fifo(b"to all");
        converge(&mut g);
        for m in g.iter_mut() {
            let got = drain(m);
            assert_eq!(
                got,
                vec![(1, None, b"to all".to_vec())],
                "member {}",
                m.id()
            );
        }
    }

    #[test]
    fn fifo_is_per_sender_ordered() {
        let mut g = group(&[1, 2]);
        for i in 0..10u8 {
            g[0].mcast_fifo(&[i]);
        }
        converge(&mut g);
        let got = drain(&mut g[1]);
        let payloads: Vec<u8> = got.iter().map(|(_, _, p)| p[0]).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn total_order_is_identical_everywhere() {
        let mut g = group(&[1, 2, 3]);
        // Concurrent multicasts from two different members.
        g[1].mcast_total(b"from-2");
        g[2].mcast_total(b"from-3");
        g[0].mcast_total(b"from-1");
        converge(&mut g);
        let orders: Vec<Vec<Delivery>> = g.iter_mut().map(drain).collect();
        assert_eq!(orders[0].len(), 3);
        assert_eq!(orders[0], orders[1], "members 1 and 2 agree");
        assert_eq!(orders[1], orders[2], "members 2 and 3 agree");
        // Stamps are dense from 0.
        let stamps: Vec<u64> = orders[0].iter().map(|(_, o, _)| o.unwrap()).collect();
        assert_eq!(stamps, vec![0, 1, 2]);
    }

    #[test]
    fn sequencer_is_lowest_member() {
        let g = group(&[4, 7, 9]);
        assert!(g[0].is_sequencer());
        assert!(!g[1].is_sequencer());
    }

    #[test]
    fn origin_delivers_its_own_total_msgs_in_stamp_order() {
        let mut g = group(&[1, 2]);
        // Non-sequencer sends: it must NOT deliver its own message
        // until the stamp comes back.
        g[1].mcast_total(b"mine");
        assert!(g[1].poll_delivery().is_none(), "no early self-delivery");
        converge(&mut g);
        let got = drain(&mut g[1]);
        assert_eq!(got, vec![(2, Some(0), b"mine".to_vec())]);
    }

    #[test]
    fn heavy_concurrent_total_traffic_agrees() {
        let mut g = group(&[1, 2, 3, 4]);
        for round in 0..10u8 {
            for (i, member) in g.iter_mut().enumerate() {
                member.mcast_total(&[round, i as u8]);
            }
        }
        converge(&mut g);
        let orders: Vec<Vec<Delivery>> = g.iter_mut().map(drain).collect();
        assert_eq!(orders[0].len(), 40);
        for o in &orders[1..] {
            assert_eq!(
                &orders[0], o,
                "total order must be identical at all members"
            );
        }
    }

    #[test]
    fn view_change_removes_member_and_reelects_sequencer() {
        let mut g = group(&[1, 2, 3]);
        g[0].mcast_total(b"before");
        converge(&mut g);
        for m in g.iter_mut() {
            drain(m);
        }
        // Member 1 (the sequencer) fails; 2 and 3 install the new view.
        let new_view = g[0].view().without(1);
        g[1].install_view(new_view.clone());
        g[2].install_view(new_view);
        assert!(g[1].is_sequencer(), "member 2 takes over");
        g[2].mcast_total(b"after");
        // Shuttle only between 2 and 3.
        let mut survivors: Vec<Member> = g.drain(1..).collect();
        converge(&mut survivors);
        let a = drain(&mut survivors[0]);
        let b = drain(&mut survivors[1]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].2, b"after".to_vec());
        assert_eq!(a[0].1, Some(1), "stamps continue past the old regime");
    }

    #[test]
    fn residue_from_departed_member_dropped() {
        let mut g = group(&[1, 2]);
        g[0].mcast_fifo(b"ghost");
        // Capture the frame, then remove member 1 from 2's view.
        let (to, frame) = g[0].poll_transmit().unwrap();
        assert_eq!(to, Member::addr_of(2));
        let v = g[1].view().without(1);
        g[1].install_view(v);
        g[1].from_network(frame);
        assert!(g[1].poll_delivery().is_none());
        assert!(g[1].stats().dropped >= 1);
    }

    #[test]
    fn two_member_ping_pong_rides_fast_paths() {
        let mut g = group(&[1, 2]);
        for i in 0..10u8 {
            g[0].mcast_fifo(&[i]);
            converge(&mut g);
            g[1].mcast_fifo(&[100 + i]);
            converge(&mut g);
        }
        // Each member delivered its own 10 plus the peer's 10.
        assert_eq!(g[0].stats().delivered, 20);
        assert_eq!(g[1].stats().delivered, 20);
    }

    #[test]
    fn probes_count_membership_and_group_events() {
        let mut g = group(&[1, 2, 3]);
        for m in g.iter_mut() {
            m.set_probe(ProbeSink::counting());
        }
        // PA-level probe on the accelerated 1→2 link; unknown peers
        // are refused.
        assert!(g[0].set_peer_probe(2, ProbeSink::counting()));
        assert!(!g[0].set_peer_probe(99, ProbeSink::counting()));

        // The sequencer (member 1) stamps one total-order multicast.
        g[0].mcast_total(b"ordered");
        g[1].mcast_fifo(b"fifo");
        converge(&mut g);

        let c0 = *g[0].probe().counts().unwrap();
        assert_eq!(c0.controls, 1, "one stamp by the sequencer");
        assert_eq!(c0.drops, 0);

        // The PA under the group saw real frame traffic on 1→2.
        let link = g[0].peer_probe(2).unwrap().counts().unwrap();
        assert!(
            link.fast_sends + link.slow_sends + link.queued >= 1,
            "{link:?}"
        );

        // View change: the sequencer departs; survivors record both the
        // membership transition and the sequencer handover.
        let v = g[1].view().without(1);
        g[1].install_view(v.clone());
        g[2].install_view(v);
        for m in &g[1..] {
            let c = m.probe().counts().unwrap();
            assert_eq!(
                c.controls,
                2,
                "membership + sequencer handover at member {}",
                m.id()
            );
        }

        // Residue from the departed member is dropped AND counted on
        // the probe, mirroring `GroupStats::dropped`.
        g[0].mcast_fifo(b"ghost");
        let (to, frame) = g[0].poll_transmit().unwrap();
        assert_eq!(to, Member::addr_of(2));
        g[1].from_network(frame);
        let c1 = g[1].probe().counts().unwrap();
        assert_eq!(c1.drops, 1, "{c1:?}");
        assert_eq!(g[1].stats().dropped, 1);
    }

    #[test]
    fn member_ring_probe_is_labelled_and_timestamped() {
        let mut g = group(&[5, 6]);
        g[1].set_probe(ProbeSink::ring(16));
        g[1].tick(1_000);
        let v = g[1].view().without(5);
        g[1].install_view(v);
        let ring = g[1].probe().trace_ring().unwrap();
        let recs = ring.records();
        // Membership + sequencer handover (5 was the sequencer).
        assert_eq!(recs.len(), 2, "{recs:?}");
        for r in &recs {
            assert_eq!(r.conn, 6, "labelled with the member id");
            assert_eq!(r.at, 1_000, "stamped with the member clock");
        }
        assert!(recs[0].event.to_string().contains("membership"));
        assert!(recs[1].event.to_string().contains("sequencer"));
    }
}
