//! Group views: who is in the group, and who sequences.

use std::fmt;

/// A group view: a numbered membership snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Member identifiers, deduplicated and sorted.
    members: Vec<u32>,
}

impl View {
    /// Creates view `id` over `members` (sorted, deduplicated).
    pub fn new(id: u64, members: impl IntoIterator<Item = u32>) -> View {
        let mut m: Vec<u32> = members.into_iter().collect();
        m.sort_unstable();
        m.dedup();
        View { id, members: m }
    }

    /// The members, ranked.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `id` is a member.
    pub fn contains(&self, id: u32) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// The view's sequencer: the lowest-ranked member (the fixed-
    /// sequencer convention; when it fails, the next view's lowest
    /// member takes over automatically).
    pub fn sequencer(&self) -> Option<u32> {
        self.members.first().copied()
    }

    /// The next view with `dead` removed.
    pub fn without(&self, dead: u32) -> View {
        View::new(
            self.id + 1,
            self.members.iter().copied().filter(|&m| m != dead),
        )
    }

    /// The next view with `joiner` added.
    pub fn with(&self, joiner: u32) -> View {
        View::new(self.id + 1, self.members.iter().copied().chain([joiner]))
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}{:?}", self.id, self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_sorted_and_deduped() {
        let v = View::new(1, [3, 1, 2, 1]);
        assert_eq!(v.members(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn sequencer_is_lowest_rank() {
        assert_eq!(View::new(1, [5, 2, 9]).sequencer(), Some(2));
        assert_eq!(View::new(1, []).sequencer(), None);
    }

    #[test]
    fn without_advances_view_and_reelects() {
        let v = View::new(1, [1, 2, 3]);
        let v2 = v.without(1);
        assert_eq!(v2.id, 2);
        assert_eq!(v2.members(), &[2, 3]);
        assert_eq!(v2.sequencer(), Some(2), "new sequencer after failure");
    }

    #[test]
    fn with_adds_joiner() {
        let v = View::new(1, [1, 3]).with(2);
        assert_eq!(v.members(), &[1, 2, 3]);
        assert!(v.contains(2));
        assert!(!v.contains(9));
    }
}
