//! Group communication over Protocol Accelerator connections.
//!
//! The paper's first footnote: "In this paper we will only deal with
//! point-to-point communication for clarity, but the techniques extend
//! to multicast protocols." This crate is that extension, in the Horus
//! spirit the PA was built for:
//!
//! - a [`view::View`] names the group's membership (with explicit view
//!   installation, the kernel of virtual synchrony),
//! - a [`member::Member`] keeps one accelerated [`pa_core::Connection`]
//!   per peer — every frame of every multicast rides the same fast
//!   paths, cookies and packing as point-to-point traffic,
//! - **FIFO multicast** ([`member::Member::mcast_fifo`]) fans a message
//!   out to every peer; per-sender order comes from the sliding-window
//!   stack under each connection,
//! - **total-order multicast** ([`member::Member::mcast_total`]) routes
//!   through the view's *sequencer* (the lowest-ranked member), which
//!   stamps a global sequence and re-multicasts — the classic
//!   fixed-sequencer protocol, delivered in stamp order at every
//!   member including the origin.
//!
//! Messages between members travel inside a tiny [`envelope`]; the PA
//! underneath stays completely unaware that a group exists — which is
//! the point: layering *above* the accelerator costs nothing extra.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod member;
pub mod view;

pub use envelope::{Envelope, Kind};
pub use member::{GroupConfig, GroupDelivery, Member};
pub use view::View;
