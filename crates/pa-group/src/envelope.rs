//! The group envelope: what a member's payload looks like to its peers.
//!
//! The PA carries opaque application bytes; group semantics need a few
//! fields of their own. They could be declared as a fifth protocol
//! layer's header fields — but this crate deliberately lives *above*
//! the stack, as a Horus application would, so it prepends its own
//! fixed envelope to each payload:
//!
//! ```text
//! [kind: u8][view: u64][origin: u32][gseq: u64] payload…
//! ```

use std::fmt;

/// Kind of group message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// FIFO multicast data (delivered on receipt; per-sender order from
    /// the window layer beneath).
    Fifo,
    /// A total-order request on its way to the sequencer.
    TotalRequest,
    /// Sequencer-stamped data (delivered in `gseq` order).
    TotalOrdered,
}

impl Kind {
    fn to_byte(self) -> u8 {
        match self {
            Kind::Fifo => 0,
            Kind::TotalRequest => 1,
            Kind::TotalOrdered => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Kind> {
        match b {
            0 => Some(Kind::Fifo),
            1 => Some(Kind::TotalRequest),
            2 => Some(Kind::TotalOrdered),
            _ => None,
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kind::Fifo => "fifo",
            Kind::TotalRequest => "total-req",
            Kind::TotalOrdered => "total-ord",
        };
        write!(f, "{s}")
    }
}

/// Wire length of the envelope header.
pub const ENVELOPE_LEN: usize = 1 + 8 + 4 + 8;

/// A decoded group envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Message kind.
    pub kind: Kind,
    /// View the sender was in.
    pub view: u64,
    /// Originating member.
    pub origin: u32,
    /// Global sequence number (0 until the sequencer stamps it).
    pub gseq: u64,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE_LEN + self.payload.len());
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.view.to_be_bytes());
        out.extend_from_slice(&self.origin.to_be_bytes());
        out.extend_from_slice(&self.gseq.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes from wire bytes; `None` on truncation or unknown kind.
    pub fn decode(bytes: &[u8]) -> Option<Envelope> {
        if bytes.len() < ENVELOPE_LEN {
            return None;
        }
        Some(Envelope {
            kind: Kind::from_byte(bytes[0])?,
            view: u64::from_be_bytes(bytes[1..9].try_into().expect("8")),
            origin: u32::from_be_bytes(bytes[9..13].try_into().expect("4")),
            gseq: u64::from_be_bytes(bytes[13..21].try_into().expect("8")),
            payload: bytes[21..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [Kind::Fifo, Kind::TotalRequest, Kind::TotalOrdered] {
            let e = Envelope {
                kind,
                view: 7,
                origin: 3,
                gseq: 99,
                payload: b"pp".to_vec(),
            };
            assert_eq!(Envelope::decode(&e.encode()).unwrap(), e);
        }
    }

    #[test]
    fn truncated_and_unknown_rejected() {
        assert!(Envelope::decode(&[0u8; ENVELOPE_LEN - 1]).is_none());
        let mut bad = Envelope {
            kind: Kind::Fifo,
            view: 0,
            origin: 0,
            gseq: 0,
            payload: vec![],
        }
        .encode();
        bad[0] = 9;
        assert!(Envelope::decode(&bad).is_none());
    }

    #[test]
    fn empty_payload_ok() {
        let e = Envelope {
            kind: Kind::Fifo,
            view: 1,
            origin: 2,
            gseq: 0,
            payload: vec![],
        };
        let d = Envelope::decode(&e.encode()).unwrap();
        assert!(d.payload.is_empty());
    }
}
