//! Where does group overhead concentrate at scale? (ROADMAP 5b)
//!
//! A sequencer-based total-order group has an obvious asymmetry: every
//! ordered multicast is one request frame *to* the sequencer and a
//! fan-out of N−1 stamped frames *from* it, while an ordinary member
//! only receives the fan-out. The paper's PA masks per-connection
//! layering overhead, but nothing masks an O(N) hot spot — the
//! question is whether the telemetry plane can *show* it from sketches
//! alone, without per-member exact histograms.
//!
//! This test runs a 128-member group (8128 underlying accelerated
//! connections; override with PA_GROUP_SCALE) for several rounds of
//! concurrent total-order traffic, records each member's frames
//! handled per round into a [`pa_obs::ScopePlane`] (endpoint
//! `sequencer` vs `members` — the roll-up asks the load question
//! directly), and asserts:
//!
//! - the total order stays identical at every member (scale does not
//!   break correctness),
//! - the sequencer endpoint's sketch sits far above the member
//!   endpoint's (p50 ratio ≥ 4×; the true asymptote is ~N),
//! - the plane's top-connections ranking names the sequencer first,
//! - the roll-up reconciles exactly and stays within its byte budget
//!   at group scale.

use pa_group::{GroupConfig, Member, View};
use pa_obs::{ScopeConfig, ScopePlane, XrayTag};

/// Members in the scaled group (override with PA_GROUP_SCALE).
fn group_size() -> u32 {
    std::env::var("PA_GROUP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

const ROUNDS: usize = 6;
const SENDERS_PER_ROUND: usize = 4;

/// Moves frames between members until quiescent, counting frames
/// handled (sent + received) per member index.
fn shuttle(members: &mut [Member], handled: &mut [u64]) {
    for _ in 0..1024 {
        let mut moved = false;
        for i in 0..members.len() {
            while let Some((to, frame)) = members[i].poll_transmit() {
                handled[i] += 1;
                moved = true;
                let Some(j) = members.iter().position(|m| Member::addr_of(m.id()) == to) else {
                    continue;
                };
                handled[j] += 1;
                members[j].from_network(frame);
            }
        }
        for m in members.iter_mut() {
            m.process_pending();
        }
        if !moved {
            return;
        }
    }
    panic!("group did not quiesce");
}

#[test]
fn sequencer_concentrates_group_overhead_at_scale() {
    let n = group_size();
    let ids: Vec<u32> = (1..=n).collect();
    let view = View::new(1, ids.iter().copied());
    let mut members: Vec<Member> = ids
        .iter()
        .map(|&id| Member::new(id, view.clone(), GroupConfig::default()))
        .collect();
    assert!(members[0].is_sequencer(), "lowest id stamps");

    // One plane for the whole group: endpoint = duty class, one conn
    // series per member. `n` members need `n` dedicated series, so the
    // byte cap is sized to the group up front — admission control is
    // exercised by the churn tests, not this one.
    let mut cfg = ScopeConfig::default();
    cfg.max_endpoints = 2;
    cfg.byte_cap = (n as usize + 8) * cfg.series_footprint();
    let mut plane = ScopePlane::new(cfg);
    let keys: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let class = if i == 0 { "sequencer" } else { "members" };
            plane.register(class, &format!("m{id:03}"))
        })
        .collect();

    let mut handled = vec![0u64; members.len()];
    for round in 0..ROUNDS {
        // A rotating set of senders multicasts concurrently.
        for s in 0..SENDERS_PER_ROUND {
            let k = (1 + round * SENDERS_PER_ROUND + s) % members.len();
            members[k].mcast_total(&[round as u8, k as u8]);
        }
        handled.iter_mut().for_each(|h| *h = 0);
        shuttle(&mut members, &mut handled);
        let at = (round as u64 + 1) * 1_000_000;
        for (i, &h) in handled.iter().enumerate() {
            plane.record(keys[i], h, at, 0, XrayTag::none());
        }
    }

    // Correctness at scale: every member delivered the same dense
    // total order.
    let orders: Vec<Vec<(u32, u64)>> = members
        .iter_mut()
        .map(|m| {
            let mut o = Vec::new();
            while let Some(d) = m.poll_delivery() {
                o.push((d.from, d.order.expect("total-order traffic")));
            }
            o
        })
        .collect();
    assert_eq!(orders[0].len(), ROUNDS * SENDERS_PER_ROUND);
    let stamps: Vec<u64> = orders[0].iter().map(|&(_, g)| g).collect();
    assert_eq!(stamps, (0..stamps.len() as u64).collect::<Vec<_>>());
    for (i, o) in orders.iter().enumerate().skip(1) {
        assert_eq!(o, &orders[0], "member index {i} disagrees on the order");
    }

    // The roll-up holds at group cardinality.
    assert_eq!(plane.records(), (ROUNDS * members.len()) as u64);
    assert!(plane.rollup_reconciles(), "sketch roll-up reconciles");
    assert!(plane.within_budget(), "{} bytes", plane.mem_bytes());
    assert_eq!(plane.denied_conns(), 0, "every member got a series");

    // The load question, answered from sketches alone: the sequencer's
    // median frames-per-round dwarfs the ordinary member's. The true
    // ratio grows like N; ≥4× is the conservative floor that still
    // rules out "roughly uniform".
    let seq_p50 = plane.endpoint("sequencer").unwrap().sketch().p50();
    let mem_p50 = plane.endpoint("members").unwrap().sketch().p50();
    assert!(
        seq_p50 >= mem_p50.saturating_mul(4),
        "sequencer p50 {seq_p50} vs member p50 {mem_p50}: overhead must concentrate"
    );

    // Ranking agrees: the busiest connection series is the sequencer's.
    let top = plane.top_conns(0.5, 3);
    assert_eq!(top[0].0, "m001", "top by p50: {top:?}");
}
