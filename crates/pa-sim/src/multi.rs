//! Multi-client simulation: one server, N clients (§6, "Maximum
//! Load").
//!
//! "Consider a server that uses a PA for each client … Even with
//! multiple clients, a server cannot process more than 6000 requests
//! per second total, because the post-processing will consume all the
//! server's available CPU cycles." And the proposed remedy: "modern
//! servers are likely to be multi-processors. The protocol stacks for
//! different connections may be divided among the processors. Since the
//! protocol stacks are independent, there will be no synchronization
//! necessary."
//!
//! [`ServerSim`] holds one real [`Connection`] per client and one or
//! more virtual CPUs; each connection is pinned to a CPU (`conn_index
//! mod cpus`), exactly the §6 partitioning argument.

use crate::cost::CostModel;
use crate::gc::{GcModel, GcPolicy};
use crate::metrics::Series;
use crate::node::{NodeSim, PostSchedule};
use crate::sim::SimConfig;
use crate::Nanos;
use pa_core::{Connection, ConnectionParams};
use pa_obs::{ScopeConfig, ScopeKey, ScopePlane};
use pa_unet::{Netif, SimNet};
use pa_wire::EndpointAddr;
use std::collections::HashMap;

/// The multi-connection server host.
pub struct ServerSim {
    conns: Vec<Connection>,
    by_peer: HashMap<EndpointAddr, usize>,
    cost: CostModel,
    gc: GcModel,
    /// One `cpu_free_at` per processor; connection `i` runs on
    /// `i % cpus.len()`.
    cpus: Vec<Nanos>,
    /// Pending post-processing wake-up per connection.
    wakeups: Vec<Option<Nanos>>,
    gc_due: Vec<u32>,
    addr: EndpointAddr,
}

impl ServerSim {
    fn new(addr: EndpointAddr, n_cpus: usize, cost: CostModel, gc: GcModel) -> ServerSim {
        ServerSim {
            conns: Vec::new(),
            by_peer: HashMap::new(),
            cost,
            gc,
            cpus: vec![0; n_cpus.max(1)],
            wakeups: Vec::new(),
            gc_due: Vec::new(),
            addr,
        }
    }

    fn add_conn(&mut self, conn: Connection) {
        self.by_peer.insert(conn.peer_addr(), self.conns.len());
        self.conns.push(conn);
        self.wakeups.push(None);
        self.gc_due.push(0);
    }

    fn cpu_of(&self, conn_idx: usize) -> usize {
        conn_idx % self.cpus.len()
    }

    fn charge(&mut self, conn_idx: usize, t: Nanos, before: pa_core::ConnStats) -> Nanos {
        let after = *self.conns[conn_idx].stats();
        let cost = crate::node::price_delta(&self.cost, &before, &after);
        let cpu = self.cpu_of(conn_idx);
        let start = t.max(self.cpus[cpu]);
        self.cpus[cpu] = start + cost;
        self.cpus[cpu]
    }

    fn flush(&mut self, conn_idx: usize, net: &mut SimNet) {
        let at = self.cpus[self.cpu_of(conn_idx)];
        let addr = self.addr;
        let peer = self.conns[conn_idx].peer_addr();
        while let Some(f) = self.conns[conn_idx].poll_transmit() {
            net.send(addr, peer, f, at);
        }
    }

    /// Handles a client frame: deliver, echo every message, schedule
    /// post-processing on this connection's CPU.
    fn on_frame(&mut self, t: Nanos, from: EndpointAddr, frame: pa_buf::Msg, net: &mut SimNet) {
        let Some(&idx) = self.by_peer.get(&from) else {
            return;
        };
        let cpu = self.cpu_of(idx);
        let start = t.max(self.cpus[cpu]);
        self.conns[idx].set_now(start);
        let before = *self.conns[idx].stats();
        self.conns[idx].deliver_frame(frame);
        let done = self.charge(idx, start, before);
        self.gc_due[idx] += 1;

        // Echo all deliveries.
        let mut replies = Vec::new();
        while let Some(m) = self.conns[idx].poll_delivery() {
            replies.push(m);
        }
        for m in replies {
            let before = *self.conns[idx].stats();
            self.conns[idx].send(m.as_slice());
            self.charge(idx, done, before);
            // Echo issued from the delivery buffer; recycle it (§6).
            self.conns[idx].recycle(m);
        }
        self.flush(idx, net);
        if self.wakeups[idx].is_none() {
            self.wakeups[idx] = Some(self.cpus[cpu]);
        }
    }

    fn run_wakeup(&mut self, idx: usize, t: Nanos, net: &mut SimNet) {
        self.wakeups[idx] = None;
        let cpu = self.cpu_of(idx);
        let start = t.max(self.cpus[cpu]);
        let before = *self.conns[idx].stats();
        self.conns[idx].process_pending();
        self.charge(idx, start, before);
        self.flush(idx, net);
        for _ in 0..std::mem::take(&mut self.gc_due[idx]) {
            if let Some(pause) = self.gc.on_reception() {
                self.cpus[cpu] += pause;
            }
        }
        if self.conns[idx].has_pending()
            || (self.conns[idx].backlog_len() > 0 && self.conns[idx].send_prediction().enabled())
        {
            self.wakeups[idx] = Some(self.cpus[cpu]);
        }
    }

    fn next_wakeup(&self) -> Option<(usize, Nanos)> {
        self.wakeups
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|t| (i, t)))
            .min_by_key(|&(_, t)| t)
    }
}

/// One server, N closed-loop clients.
pub struct ClusterSim {
    /// The server.
    pub server: ServerSim,
    /// The clients (NodeSim each, closed-loop driven by the cluster).
    pub clients: Vec<NodeSim>,
    /// The shared network.
    pub net: SimNet,
    clock: Nanos,
    remaining: Vec<u64>,
    next_id: u64,
    sent_at: HashMap<u64, (Nanos, usize)>,
    /// Completed request latencies (all clients pooled).
    pub rtt: Series,
    /// Completed request latencies per client — the per-connection
    /// ground truth the scope plane's sketches roll up.
    pub rtt_by_client: Vec<Series>,
    /// Total completed requests.
    pub completed: u64,
    /// The pa-scope roll-up plane, if attached: one series per client
    /// connection, rolled up per server CPU (the §6 partitioning) and
    /// into one cluster sketch.
    scope: Option<(ScopePlane, Vec<ScopeKey>)>,
}

impl ClusterSim {
    /// Builds a cluster: `n_clients` clients, a server with `n_cpus`
    /// processors, everything from `cfg` (stack, PA config, costs, GC).
    pub fn new(cfg: &SimConfig, n_clients: usize, n_cpus: usize) -> ClusterSim {
        let server_addr = EndpointAddr::from_parts(1000, 7);
        let names: Vec<String> = cfg
            .stack
            .build()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        let mk_cost = || {
            let mut c = (cfg.cost)(names.clone());
            c.baseline_framework = cfg.baseline;
            c.compiled_filter = cfg.compiled_filter;
            c
        };
        let mut server = ServerSim::new(
            server_addr,
            n_cpus,
            mk_cost(),
            GcModel::paper(cfg.gc[1], 4242),
        );
        let mut clients = Vec::new();
        for k in 0..n_clients {
            let caddr = EndpointAddr::from_parts(1 + k as u64, 7);
            server.add_conn(
                Connection::new(
                    cfg.stack.build(),
                    cfg.pa,
                    ConnectionParams::new(server_addr, caddr, 5000 + k as u64),
                )
                .expect("valid stack"),
            );
            let conn = Connection::new(
                cfg.stack.build(),
                cfg.pa,
                ConnectionParams::new(caddr, server_addr, 6000 + k as u64),
            )
            .expect("valid stack");
            let mut node = NodeSim::new(
                conn,
                mk_cost(),
                GcModel::paper(cfg.gc[0], 7000 + k as u64),
                PostSchedule::WhenIdle,
            );
            node.record_log = false;
            clients.push(node);
        }
        ClusterSim {
            server,
            clients,
            net: SimNet::new(cfg.profile, cfg.faults),
            clock: 0,
            remaining: vec![0; n_clients],
            next_id: 1,
            sent_at: HashMap::new(),
            rtt: Series::new(),
            rtt_by_client: (0..n_clients).map(|_| Series::new()).collect(),
            completed: 0,
            scope: None,
        }
    }

    /// Attaches a pa-scope roll-up plane: every client connection gets
    /// its own sketch series, rolled up per server CPU (endpoint =
    /// `cpuN`, the §6 partitioning unit) and into one cluster sketch.
    /// Clients beyond the plane's slot budget degrade explicitly into
    /// the overflow series — counted, never silently dropped.
    pub fn attach_scope(&mut self, cfg: ScopeConfig) {
        let n_cpus = self.server.cpus.len();
        let mut plane = ScopePlane::new(cfg);
        let keys = (0..self.clients.len())
            .map(|k| plane.register(&format!("cpu{}", k % n_cpus), &format!("client{k:04}")))
            .collect();
        self.scope = Some((plane, keys));
    }

    /// The attached scope plane, if any.
    pub fn scope_plane(&self) -> Option<&ScopePlane> {
        self.scope.as_ref().map(|(p, _)| p)
    }

    /// The server-side connections, one per client (ledger checks,
    /// reject/attribution aggregation).
    pub fn server_conns(&self) -> &[Connection] {
        &self.server.conns
    }

    /// Convenience: the paper's config with occasional GC (the §6
    /// 6000 rpc/s analysis assumes the higher ceiling).
    pub fn paper_occasional_gc() -> SimConfig {
        let mut cfg = SimConfig::paper();
        cfg.gc = [GcPolicy::EveryN(64); 2];
        cfg
    }

    /// The current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    fn client_send(&mut self, k: usize, t: Nanos) {
        let id = self.next_id;
        self.next_id += 1;
        let mut payload = vec![0u8; 8];
        payload.copy_from_slice(&id.to_be_bytes());
        self.sent_at
            .insert(id, (t.max(self.clients[k].cpu_free_at), k));
        let local = self.clients[k].addr();
        self.clients[k].app_send(t, &payload, &mut self.net, local);
    }

    /// Accounts for RPC responses delivered to client `k` — whether
    /// they surfaced on frame arrival or from a backlog drain during a
    /// wakeup — and issues the next closed-loop request.
    fn client_deliveries(&mut self, k: usize, done: Nanos, delivered: Vec<pa_buf::Msg>) {
        for m in delivered {
            let id = m
                .get(0, 8)
                .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                .unwrap_or(0);
            if let Some((t0, origin)) = self.sent_at.remove(&id) {
                debug_assert_eq!(origin, k);
                self.rtt.push_nanos(done - t0);
                self.rtt_by_client[k].push_nanos(done - t0);
                if let Some((plane, keys)) = &mut self.scope {
                    let conn = &self.clients[k].conn;
                    let journey = conn.last_recv_trace().map(|(j, _)| j).unwrap_or(0);
                    plane.record(
                        keys[k],
                        done - t0,
                        done,
                        journey,
                        conn.last_deliver_explain(),
                    );
                }
                self.completed += 1;
                if self.remaining[k] > 0 {
                    self.remaining[k] -= 1;
                    self.client_send(k, done);
                }
            }
            self.clients[k].recycle(m);
        }
    }

    /// Runs `per_client` closed-loop requests on every client.
    pub fn run(&mut self, per_client: u64, horizon: Nanos) {
        for k in 0..self.clients.len() {
            self.remaining[k] = per_client.saturating_sub(1);
            self.client_send(k, 0);
        }
        loop {
            let mut t_next = Nanos::MAX;
            if let Some(t) = self.net.next_arrival_at() {
                t_next = t_next.min(t);
            }
            for c in &self.clients {
                if let Some(w) = c.wakeup_at {
                    t_next = t_next.min(w);
                }
            }
            if let Some((_, w)) = self.server.next_wakeup() {
                t_next = t_next.min(w);
            }
            if t_next == Nanos::MAX {
                break;
            }
            if t_next > horizon {
                self.clock = horizon;
                break;
            }
            self.clock = self.clock.max(t_next);
            let now = self.clock;

            while let Some(arr) = self.net.poll_arrival(now) {
                if arr.to == self.server.addr {
                    self.server
                        .on_frame(arr.at, arr.from, arr.frame, &mut self.net);
                } else {
                    let k = (arr.to.host_id() - 1) as usize;
                    let local = self.clients[k].addr();
                    let (done, delivered) =
                        self.clients[k].on_frame(arr.at, arr.frame, &mut self.net, local);
                    self.client_deliveries(k, done, delivered);
                }
            }
            for k in 0..self.clients.len() {
                if self.clients[k].wakeup_at.is_some_and(|w| w <= now) {
                    let local = self.clients[k].addr();
                    let (done, delivered) = self.clients[k].run_wakeup(now, &mut self.net, local);
                    self.client_deliveries(k, done, delivered);
                }
            }
            while let Some((idx, w)) = self.server.next_wakeup() {
                if w > now {
                    break;
                }
                self.server.run_wakeup(idx, now, &mut self.net);
            }
        }
    }

    /// Total completed requests per second of virtual time.
    pub fn rate(&self) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.clock as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cluster(n_clients: usize, n_cpus: usize, per_client: u64) -> ClusterSim {
        let cfg = ClusterSim::paper_occasional_gc();
        let mut c = ClusterSim::new(&cfg, n_clients, n_cpus);
        c.run(per_client, 30_000_000_000);
        c
    }

    #[test]
    fn single_client_matches_two_node_rate() {
        let c = run_cluster(1, 1, 300);
        assert_eq!(c.completed, 300);
        assert!((4_000.0..=7_000.0).contains(&c.rate()), "{}", c.rate());
    }

    #[test]
    fn total_rate_is_capped_by_the_server_cpu() {
        // §6: "Even with multiple clients, a server cannot process more
        // than 6000 requests per second total."
        let one = run_cluster(1, 1, 200);
        let four = run_cluster(4, 1, 200);
        assert_eq!(four.completed, 800);
        assert!(
            four.rate() < one.rate() * 1.6,
            "4 clients: {} vs 1 client: {} — no magic capacity",
            four.rate(),
            one.rate()
        );
    }

    #[test]
    fn multiprocessor_server_scales() {
        // §6: "the maximum number of RPCs per second is multiplied by
        // the number of processors."
        let uni = run_cluster(4, 1, 150);
        let quad = run_cluster(4, 4, 150);
        assert!(
            quad.rate() > uni.rate() * 2.0,
            "4 cpus {} vs 1 cpu {}",
            quad.rate(),
            uni.rate()
        );
    }

    #[test]
    fn every_request_answered_under_load() {
        let c = run_cluster(8, 2, 100);
        assert_eq!(c.completed, 800);
        assert_eq!(c.rtt.len(), 800);
        assert_eq!(c.rtt_by_client.len(), 8);
        assert!(c.rtt_by_client.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn cluster_scope_rolls_up_per_cpu_and_per_client() {
        let cfg = ClusterSim::paper_occasional_gc();
        let mut c = ClusterSim::new(&cfg, 8, 2);
        c.attach_scope(ScopeConfig::default());
        c.run(50, 30_000_000_000);
        assert_eq!(c.completed, 400);
        let plane = c.scope_plane().expect("attached");
        assert_eq!(plane.records(), 400);
        assert_eq!(plane.cluster().sketch().count(), 400);
        assert!(plane.rollup_reconciles());
        assert!(plane.within_budget(), "{} bytes", plane.mem_bytes());
        // Every client got a dedicated series (8 ≤ default slots) and
        // its sketch count matches its exact per-client series.
        for k in 0..8 {
            let s = plane.conn(&format!("client{k:04}")).expect("dedicated");
            assert_eq!(s.sketch().count() as usize, c.rtt_by_client[k].len());
        }
        // The plane's cluster max is the same sample the pooled exact
        // series saw (sketches keep exact min/max).
        assert_eq!(plane.cluster().sketch().max(), c.rtt.summary().max as u64);
        // Top-N ranking is well-formed: 8 entries, descending p99.
        let top = plane.top_conns(0.99, 8);
        assert_eq!(top.len(), 8);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
