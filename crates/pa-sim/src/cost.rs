//! The virtual CPU cost model, calibrated to §5 of the paper.
//!
//! Calibration anchors (all from the paper's measurements):
//!
//! | Anchor | Paper value |
//! |---|---|
//! | fast-path send (app → U-Net handoff) | ~25 µs |
//! | fast-path delivery (U-Net → app) | ~25 µs |
//! | post-send, 4-layer stack | ~80 µs |
//! | post-deliver, 4-layer stack | ~50 µs |
//! | window layer stacked twice | +15 µs post-send *and* +15 µs post-deliver |
//! | C Horus without PA, round trip | ~1.5 ms |
//! | ML (FOX) vs C implementation factor | ≈ 9.4× (we use 3× for stack code; the rest of FOX's gap was its heavier runtime) |
//!
//! Per-layer post costs are assigned so the 4-layer sums hit 80/50 with
//! the window layer at exactly 15/15. Pre costs (only on the critical
//! path when the PA cannot bypass) are set equal to post costs — the
//! canonical split divides a layer's work roughly in half. The no-PA
//! baselines add a per-message *framework* cost (buffer management,
//! demultiplexing, per-layer header marshalling) calibrated so the
//! C-without-PA round trip lands at the paper's ~1.5 ms.

use crate::Nanos;
use pa_obs::{Phase, XrayReport};

/// Implementation language of the *stack* code (the PA itself is always
/// the paper's 1500 lines of C and is not scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// O'Caml — the paper's measured costs, factor 1.
    Ml,
    /// C — stack code at one third of the O'Caml cost.
    C,
}

impl Language {
    /// Multiplier applied to stack-code costs.
    pub fn factor(self) -> f64 {
        match self {
            Language::Ml => 1.0,
            Language::C => 1.0 / 3.0,
        }
    }
}

/// Per-layer phase costs in nanoseconds (O'Caml units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Pre-send phase.
    pub pre_send: Nanos,
    /// Post-send phase.
    pub post_send: Nanos,
    /// Pre-deliver phase.
    pub pre_deliver: Nanos,
    /// Post-deliver phase.
    pub post_deliver: Nanos,
}

/// Cost of a named layer, in O'Caml units.
///
/// The four paper-stack layers sum to the §5 anchors:
/// post-send 20+25+15+20 = 80 µs, post-deliver 10+15+15+10 = 50 µs,
/// and the window layer is exactly the +15/+15 the doubling experiment
/// measured.
pub fn layer_cost(name: &str) -> LayerCost {
    let us = |a: u64, b: u64, c: u64, d: u64| LayerCost {
        pre_send: a * 1_000,
        post_send: b * 1_000,
        pre_deliver: c * 1_000,
        post_deliver: d * 1_000,
    };
    match name {
        "bottom" => us(20, 20, 10, 10),
        "checksum" => us(25, 25, 15, 15),
        "window" => us(15, 15, 15, 15),
        "frag" => us(20, 20, 10, 10),
        "heartbeat" => us(8, 8, 8, 8),
        "meter" => us(2, 2, 2, 2),
        _ => us(10, 10, 10, 10), // null / unknown layers
    }
}

/// The complete cost model of one node.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Language the stack code runs in.
    pub language: Language,
    /// Fast-path send cost excluding the filter (PA C code).
    pub fast_send_base: Nanos,
    /// Fast-path delivery cost excluding the filter (PA C code).
    pub fast_deliver_base: Nanos,
    /// One interpreted packet-filter run.
    pub filter_interpreted: Nanos,
    /// One pre-resolved ("compiled") packet-filter run.
    pub filter_compiled: Nanos,
    /// True if this node's filters are compiled.
    pub compiled_filter: bool,
    /// Parking a message in the backlog.
    pub backlog_push: Nanos,
    /// Per-message cost of packing on the send side (copy + header).
    pub pack_per_msg: Nanos,
    /// Per-message cost of unpacking + app handoff on delivery.
    pub unpack_per_msg: Nanos,
    /// Per-message *framework* overhead (traditional message
    /// management, demultiplexing, per-layer marshalling) charged on
    /// the critical path of **no-PA baseline** nodes only — this is the
    /// cost the PA masks. In the same language units as the stack.
    pub framework_per_msg: Nanos,
    /// True for no-PA baseline nodes: framework overhead applies and
    /// post phases run inline.
    pub baseline_framework: bool,
    /// Names of the stack's layers, bottom first (for per-layer sums).
    pub layer_names: Vec<String>,
}

impl CostModel {
    /// The paper's measured system: ML stack, interpreted filters.
    pub fn paper_ml(layer_names: Vec<String>) -> CostModel {
        CostModel {
            language: Language::Ml,
            fast_send_base: 20_000,
            fast_deliver_base: 20_000,
            filter_interpreted: 5_000,
            filter_compiled: 1_000,
            compiled_filter: false,
            backlog_push: 2_000,
            pack_per_msg: 9_000,
            unpack_per_msg: 9_000,
            framework_per_msg: 865_000,
            baseline_framework: false,
            layer_names,
        }
    }

    /// The same stack in C (for the no-PA C Horus baseline).
    pub fn paper_c(layer_names: Vec<String>) -> CostModel {
        CostModel {
            language: Language::C,
            ..CostModel::paper_ml(layer_names)
        }
    }

    fn scale(&self, ns: Nanos) -> Nanos {
        (ns as f64 * self.language.factor()).round() as Nanos
    }

    /// One packet-filter run.
    pub fn filter_run(&self) -> Nanos {
        if self.compiled_filter {
            self.filter_compiled
        } else {
            self.filter_interpreted
        }
    }

    /// Fast-path send: PA code + filter. (The paper's ~25 µs.)
    pub fn fast_send(&self) -> Nanos {
        self.fast_send_base + self.filter_run()
    }

    /// Fast-path delivery: PA code + filter + prediction compare.
    pub fn fast_deliver(&self) -> Nanos {
        self.fast_deliver_base + self.filter_run()
    }

    /// Sum of a phase over the whole stack (language-scaled).
    fn stack_sum(&self, f: impl Fn(&LayerCost) -> Nanos) -> Nanos {
        let total: Nanos = self.layer_names.iter().map(|n| f(&layer_cost(n))).sum();
        self.scale(total)
    }

    /// Post-send cost for one frame (the paper's 80 µs at 4 layers).
    pub fn post_send_frame(&self) -> Nanos {
        self.stack_sum(|c| c.post_send)
    }

    /// Post-deliver cost for one frame (the paper's 50 µs at 4 layers).
    pub fn post_deliver_frame(&self) -> Nanos {
        self.stack_sum(|c| c.post_deliver)
    }

    /// Pre-send traversal cost for one frame (slow path only).
    pub fn pre_send_frame(&self) -> Nanos {
        self.stack_sum(|c| c.pre_send)
    }

    /// Pre-deliver traversal cost for one frame (slow path only).
    pub fn pre_deliver_frame(&self) -> Nanos {
        self.stack_sum(|c| c.pre_deliver)
    }

    /// Framework overhead per message on the critical path (no-PA
    /// baselines only; zero when the PA is on — that is the masking).
    pub fn framework(&self) -> Nanos {
        if self.baseline_framework {
            self.scale(self.framework_per_msg)
        } else {
            0
        }
    }

    /// Cost of a slow-path send on the critical path (pre-send
    /// traversal; the PA engine and filter still run; baselines add the
    /// framework overhead).
    pub fn slow_send(&self) -> Nanos {
        self.fast_send_base + self.filter_run() + self.pre_send_frame() + self.framework()
    }

    /// Cost of a slow-path delivery on the critical path.
    pub fn slow_deliver(&self) -> Nanos {
        self.fast_deliver_base + self.filter_run() + self.pre_deliver_frame() + self.framework()
    }

    /// Cost of a layer-generated control send (ack, heartbeat): the PA
    /// tail of the send path plus the filter.
    pub fn control_send(&self) -> Nanos {
        self.fast_send_base + self.filter_run()
    }

    /// Virtual-time price of *one* invocation of `phase` for the layer
    /// named `name`, language-scaled.
    ///
    /// Tick callbacks are priced at zero: the paper's §5 breakdown
    /// measures the four canonical phases only, and timers run off the
    /// critical path.
    pub fn phase_cost(&self, name: &str, phase: Phase) -> Nanos {
        let c = layer_cost(name);
        let raw = match phase {
            Phase::PreSend => c.pre_send,
            Phase::PostSend => c.post_send,
            Phase::PreDeliver => c.pre_deliver,
            Phase::PostDeliver => c.post_deliver,
            Phase::Tick => 0,
        };
        self.scale(raw)
    }

    /// Prices an [`XrayReport`]'s phase table with this model:
    /// `virt_ns = calls × per-invocation phase cost`, reproducing the
    /// paper's critical-path breakdown (80 µs post-send / 50 µs
    /// post-deliver per 4-layer frame) from observed invocation counts.
    pub fn price_report(&self, report: &mut XrayReport) {
        for row in &mut report.phases {
            for phase in Phase::ALL {
                let unit = self.phase_cost(&row.layer, phase);
                row.virt_ns[phase as usize] = row.calls[phase as usize] * unit;
                // Leaked sub-counts get the same per-invocation price,
                // so `leaked_virt_ns <= virt_ns` holds bucket by bucket
                // and the masking ledger's conservation stays exact.
                row.leaked_virt_ns[phase as usize] = row.leaked_calls[phase as usize] * unit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_layers() -> Vec<String> {
        ["bottom", "checksum", "window", "frag"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn four_layer_post_costs_match_paper() {
        let m = CostModel::paper_ml(paper_layers());
        assert_eq!(m.post_send_frame(), 80_000, "§5: post-send ≈ 80 µs");
        assert_eq!(m.post_deliver_frame(), 50_000, "§5: post-deliver ≈ 50 µs");
    }

    #[test]
    fn doubled_window_adds_15us_each() {
        let mut names = paper_layers();
        names.push("window".into());
        let m = CostModel::paper_ml(names);
        assert_eq!(m.post_send_frame(), 95_000);
        assert_eq!(m.post_deliver_frame(), 65_000);
    }

    #[test]
    fn fast_paths_are_about_25us() {
        let m = CostModel::paper_ml(paper_layers());
        assert_eq!(m.fast_send(), 25_000);
        assert_eq!(m.fast_deliver(), 25_000);
    }

    #[test]
    fn compiled_filter_shaves_the_filter_cost() {
        let mut m = CostModel::paper_ml(paper_layers());
        m.compiled_filter = true;
        assert_eq!(m.fast_send(), 21_000);
    }

    #[test]
    fn c_scales_stack_but_not_pa() {
        let ml = CostModel::paper_ml(paper_layers());
        let c = CostModel::paper_c(paper_layers());
        let ratio = ml.post_send_frame() as f64 / c.post_send_frame() as f64;
        assert!((ratio - 3.0).abs() < 0.01, "ratio {ratio}");
        assert_eq!(c.fast_send(), ml.fast_send(), "PA code is C either way");
    }

    #[test]
    fn framework_applies_only_to_baselines() {
        let mut m = CostModel::paper_ml(paper_layers());
        assert_eq!(m.framework(), 0, "PA mode masks the framework cost");
        m.baseline_framework = true;
        assert_eq!(m.framework(), 865_000);
    }

    #[test]
    fn no_pa_c_baseline_lands_near_1_5ms_rtt() {
        // No-PA C Horus: everything inline on the critical path.
        // RTT = 2 × (send pre+post+fw) + 2 × (deliver pre+post+fw) + wire.
        let mut c = CostModel::paper_c(paper_layers());
        c.baseline_framework = true;
        let send = c.slow_send() + c.post_send_frame();
        let deliver = c.slow_deliver() + c.post_deliver_frame();
        let rtt = 2 * (send + 35_000 + deliver);
        assert!(
            (1_300_000..=1_700_000).contains(&rtt),
            "C no-PA RTT = {rtt} ns"
        );
    }

    #[test]
    fn phase_pricing_reproduces_the_paper_breakdown() {
        use pa_obs::PhaseRow;
        let m = CostModel::paper_ml(paper_layers());
        let mut report = XrayReport::default();
        // One frame's worth of post phases across the 4-layer stack.
        for name in ["bottom", "checksum", "window", "frag"] {
            report.phases.push(PhaseRow {
                layer: name.to_string(),
                calls: [0, 1, 0, 1, 3],
                ..Default::default()
            });
        }
        m.price_report(&mut report);
        let post_send: u64 = report.phases.iter().map(|r| r.virt_ns[1]).sum();
        let post_deliver: u64 = report.phases.iter().map(|r| r.virt_ns[3]).sum();
        let tick: u64 = report.phases.iter().map(|r| r.virt_ns[4]).sum();
        assert_eq!(post_send, 80_000, "§5 post-send anchor");
        assert_eq!(post_deliver, 50_000, "§5 post-deliver anchor");
        assert_eq!(tick, 0, "timers are off the critical path");
        // The window row alone is the +15/+15 doubling anchor.
        assert_eq!(report.phases[2].virt_ns[1], 15_000);
        assert_eq!(report.phases[2].virt_ns[3], 15_000);
    }

    #[test]
    fn no_pa_ml_is_markedly_worse_than_c() {
        let mut ml = CostModel::paper_ml(paper_layers());
        ml.baseline_framework = true;
        let mut c = CostModel::paper_c(paper_layers());
        c.baseline_framework = true;
        let rtt = |m: &CostModel| {
            2 * (m.slow_send()
                + m.post_send_frame()
                + 35_000
                + m.slow_deliver()
                + m.post_deliver_frame())
        };
        assert!(rtt(&ml) > 2 * rtt(&c), "ml {} vs c {}", rtt(&ml), rtt(&c));
    }
}
