//! The off-path post-drain thread: a minimal vertical slice of the
//! ROADMAP's "post phases on another core".
//!
//! §3.1 splits every layer's work into a *pre* phase (on the critical
//! path) and a *post* phase (maskable). Everywhere else in this repo
//! the mask is temporal — post phases run later, on the same thread.
//! This module makes the mask *spatial*: a [`PostDrainWorker`] owns a
//! second OS thread, connections are handed to it over a bounded
//! wait-free SPSC ring ([`pa_obs::spsc`]), and `process_pending` (the
//! §3.4 backlog/post drain) runs there while the application thread
//! keeps sending.
//!
//! The point of the prototype is not throughput — it is that the
//! telemetry stays *exact* across the thread boundary:
//!
//! - each thread brackets its own work and folds `current − checkpoint`
//!   deltas into its own [`TelemetryDomain`] (deltas partition the
//!   connection's meters, so the merged view conserves with `==`);
//! - handoffs emit [`DomainEventKind::HandoffSent`] /
//!   [`DomainEventKind::HandoffReceived`] pairs that become
//!   happens-before edges in the cross-thread [`CritDag`];
//! - each domain prices its own meter shard into a
//!   [`MaskingLedger`] shard at shutdown; the merged ledger conserves
//!   exactly against the merged phase table.
//!
//! Nothing about the engine changes: the same `Connection` methods run,
//! just on another thread (`Layer: Send` makes the move legal). With
//! tracing off the wire bytes are byte-identical to the inline run —
//! the threaded golden-bytes test pins that.

use crate::cost::CostModel;
use crate::Nanos;
use pa_core::{ConnStats, Connection, PostWorkReport};
use pa_obs::domain::{price_meters, DomainCounter, DomainEventKind, TelemetryDomain};
use pa_obs::spsc::{self, Consumer, Producer};
use pa_obs::{MaskDomain, MaskingLedger, PhaseMeter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// One handoff: a connection shipped to the drain thread for its
/// pending post work.
#[derive(Debug)]
pub struct DrainJob {
    /// The connection (boxed: the ring moves a pointer, not the
    /// connection's buffers).
    pub conn: Box<Connection>,
    /// Handoff sequence number — shared by the `HandoffSent` event on
    /// the submitting domain and the `HandoffReceived`/`DrainStart`/
    /// `DrainDone` events on the worker domain, which is what lets the
    /// collector stitch the two threads' timelines with happens-before
    /// edges.
    pub seq: u64,
    /// Virtual time of the handoff (the worker's clock for this batch).
    pub now: Nanos,
}

/// A drained connection coming back from the worker.
#[derive(Debug)]
pub struct DrainedConn {
    /// The connection, post work done.
    pub conn: Box<Connection>,
    /// The handoff sequence number of the job this answers.
    pub seq: u64,
    /// Virtual time the batch ran at.
    pub now: Nanos,
    /// What the drain did.
    pub report: PostWorkReport,
}

/// A second OS thread that runs connections' post phases off the
/// critical path, instrumented as its own telemetry domain.
///
/// In-flight jobs are bounded by the ring capacity: [`submit`]
/// (PostDrainWorker::submit) refuses (returning the connection) once
/// `capacity` connections are in the pipeline, so neither ring can
/// overflow and a handed-off connection is never dropped.
#[derive(Debug)]
pub struct PostDrainWorker {
    jobs: Producer<DrainJob>,
    done: Consumer<DrainedConn>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    capacity: usize,
    submitted: u64,
    received: u64,
}

impl PostDrainWorker {
    /// Spawns the drain thread. It owns `domain` (folding every batch's
    /// meter/stats deltas into it) and prices its shard with `cost` at
    /// shutdown. At most `capacity` connections ride the pipeline at
    /// once.
    pub fn spawn(domain: TelemetryDomain, cost: CostModel, capacity: usize) -> PostDrainWorker {
        let capacity = capacity.max(1);
        let (jobs_tx, jobs_rx) = spsc::channel::<DrainJob>(capacity);
        let (done_tx, done_rx) = spsc::channel::<DrainedConn>(capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name(format!("pa-drain-{}", domain.id()))
            .spawn(move || drain_loop(domain, cost, jobs_rx, done_tx, stop_flag))
            .expect("spawn drain thread");
        PostDrainWorker {
            jobs: jobs_tx,
            done: done_rx,
            stop,
            handle: Some(handle),
            capacity,
            submitted: 0,
            received: 0,
        }
    }

    /// Hands a connection to the drain thread. `sender` is the
    /// *calling* thread's domain: it gets the `HandoffsOut` bump and
    /// the `HandoffSent` event (the submitting side of the
    /// happens-before pair). Returns the handoff sequence number, or
    /// the connection back if the pipeline is full (drain it inline —
    /// backpressure, never loss).
    pub fn submit(
        &mut self,
        sender: &mut TelemetryDomain,
        conn: Box<Connection>,
        now: Nanos,
    ) -> Result<u64, Box<Connection>> {
        if (self.submitted - self.received) as usize >= self.capacity {
            return Err(conn);
        }
        let seq = self.submitted;
        match self.jobs.push(DrainJob { conn, seq, now }) {
            Ok(()) => {
                self.submitted += 1;
                sender.set_now(now);
                sender.bump(DomainCounter::HandoffsOut);
                sender.emit(DomainEventKind::HandoffSent { job: seq });
                Ok(seq)
            }
            Err(job) => Err(job.conn),
        }
    }

    /// Connections currently in the pipeline (submitted, not yet
    /// received back).
    pub fn in_flight(&self) -> usize {
        (self.submitted - self.received) as usize
    }

    /// A drained connection, if one is ready. Non-blocking.
    pub fn try_recv(&mut self) -> Option<DrainedConn> {
        let out = self.done.pop();
        if out.is_some() {
            self.received += 1;
        }
        out
    }

    /// Waits for the next drained connection, yielding between polls.
    /// `None` once nothing is in flight (or the worker died).
    pub fn recv(&mut self) -> Option<DrainedConn> {
        loop {
            if let Some(d) = self.try_recv() {
                return Some(d);
            }
            if self.in_flight() == 0 || (self.done.is_disconnected() && self.done.is_empty()) {
                return None;
            }
            thread::yield_now();
        }
    }

    /// Stops the worker: it drains every queued job, builds its priced
    /// masking-ledger shard, publishes, retires its domain, and exits.
    /// Drained connections still in the done ring remain receivable via
    /// [`PostDrainWorker::try_recv`] after this returns.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PostDrainWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker thread body. Steady state allocates nothing: the
/// bracketing buffer and layer-name cache are reused across jobs, the
/// rings are fixed, and the domain's fold targets stop growing once
/// every layer/stat row exists (the layer-name cache refreshes only
/// when the stack *shape* changes — feed one worker connections with
/// one stack layout).
fn drain_loop(
    mut domain: TelemetryDomain,
    cost: CostModel,
    mut jobs: Consumer<DrainJob>,
    mut done: Producer<DrainedConn>,
    stop: Arc<AtomicBool>,
) {
    let mut before: Vec<PhaseMeter> = Vec::new();
    let mut names: Vec<&'static str> = Vec::new();
    loop {
        match jobs.pop() {
            Some(mut job) => {
                domain.set_now(job.now);
                domain.bump(DomainCounter::HandoffsIn);
                domain.emit(DomainEventKind::HandoffReceived { job: job.seq });
                // Trace records written by the post phases belong to
                // this thread's domain while the connection is here.
                if let Some(r) = job.conn.probe_mut().trace_ring_mut() {
                    r.set_domain(domain.id());
                }
                before.clear();
                before.extend_from_slice(job.conn.phase_meters());
                if names.len() != before.len() {
                    names = job.conn.layer_names();
                }
                let stats_before: ConnStats = *job.conn.stats();
                domain.emit(DomainEventKind::DrainStart { job: job.seq });
                job.conn.set_now(job.now);
                let report = job.conn.process_pending();
                for (i, m) in job.conn.phase_meters().iter().enumerate() {
                    domain.absorb_meter(names[i], &m.delta_since(&before[i]));
                }
                let ds = job.conn.stats().delta(&stats_before);
                for (name, v) in ds.fields() {
                    domain.add_stat("conn", name, v);
                }
                domain.bump(DomainCounter::DrainBatches);
                domain.emit(DomainEventKind::DrainDone {
                    job: job.seq,
                    post_sends: report.post_send_phases,
                    post_delivers: report.post_deliver_phases,
                });
                let out = DrainedConn {
                    conn: job.conn,
                    seq: job.seq,
                    now: job.now,
                    report,
                };
                // Capacity bounds in-flight jobs, so the done ring
                // (same capacity) always has room.
                let pushed = done.push(out).is_ok();
                debug_assert!(pushed, "done ring sized to the in-flight bound");
            }
            None => {
                if stop.load(Ordering::Acquire) && jobs.is_empty() {
                    break;
                }
                domain.maybe_publish();
                thread::yield_now();
            }
        }
    }
    // Price this thread's meter shard into its masking-ledger shard —
    // linear pricing of a delta partition, so the merged ledger
    // conserves exactly against the merged phase table.
    let rows = price_meters(domain.meters(), |l, p| cost.phase_cost(l, p));
    if !rows.is_empty() {
        let label = domain.label().to_string();
        let shard = MaskingLedger::from_phases(&label, &rows, MaskDomain::Virtual);
        domain.merge_ledger(&shard);
    }
    domain.retire();
}

/// Folds the delta between `conn`'s current telemetry and a checkpoint
/// taken with [`bracket_before`] into `domain` — the application-thread
/// side of the bracketing discipline the worker applies internally.
/// `names`/`meters_before` must come from the matching
/// [`bracket_before`] call on the same connection.
pub fn fold_bracket(
    domain: &mut TelemetryDomain,
    conn: &Connection,
    names: &[&'static str],
    meters_before: &[PhaseMeter],
    stats_before: &ConnStats,
) {
    for (i, m) in conn.phase_meters().iter().enumerate() {
        domain.absorb_meter(names[i], &m.delta_since(&meters_before[i]));
    }
    for (name, v) in conn.stats().delta(stats_before).fields() {
        domain.add_stat("conn", name, v);
    }
}

/// Checkpoints `conn`'s meters and stats ahead of a stretch of work on
/// the calling thread; pair with [`fold_bracket`] afterwards.
pub fn bracket_before(conn: &Connection) -> (Vec<&'static str>, Vec<PhaseMeter>, ConnStats) {
    (
        conn.layer_names(),
        conn.phase_meters().to_vec(),
        *conn.stats(),
    )
}

/// Builds a domain's priced masking-ledger shard from its own meter
/// shard and merges it in (what the worker does at shutdown; call this
/// on the application thread's domain before collecting).
pub fn seal_ledger(domain: &mut TelemetryDomain, cost: &CostModel) {
    let rows = price_meters(domain.meters(), |l, p| cost.phase_cost(l, p));
    if !rows.is_empty() {
        let label = domain.label().to_string();
        let shard = MaskingLedger::from_phases(&label, &rows, MaskDomain::Virtual);
        domain.merge_ledger(&shard);
    }
}

// ---------------------------------------------------------------------------
// The threaded echo harness
// ---------------------------------------------------------------------------

use pa_core::{ConnectionParams, PaConfig};
use pa_obs::critpath::{CritDag, CritNode, WorkClass};
use pa_obs::{
    DomainEvent, GlobalSnapshot, JourneySet, ProbeSink, SketchConfig, SnapshotCoordinator,
    TraceRing,
};
use pa_stack::StackSpec;
use pa_wire::EndpointAddr;

/// Configuration of a [`ThreadedEcho`] run.
#[derive(Debug, Clone)]
pub struct ThreadedEchoConfig {
    /// Request/reply round trips to run.
    pub rounds: u64,
    /// PA configuration for both endpoints.
    pub pa: PaConfig,
    /// Stack on both endpoints.
    pub stack: StackSpec,
    /// Attach trace rings (journeys need `pa.trace_ctx` too).
    pub trace: bool,
    /// Trace-ring capacity per endpoint.
    pub ring_capacity: usize,
    /// Virtual ns per round trip.
    pub round_ns: Nanos,
}

impl ThreadedEchoConfig {
    /// The default instrumented run: paper stack, tracing + in-band
    /// journey context on.
    pub fn traced(rounds: u64) -> ThreadedEchoConfig {
        ThreadedEchoConfig {
            rounds,
            pa: PaConfig {
                trace_ctx: true,
                ..PaConfig::paper_default()
            },
            stack: StackSpec::paper(),
            trace: true,
            ring_capacity: 4096,
            round_ns: 200_000,
        }
    }

    /// The all-off run: default config, no tracing — the configuration
    /// whose wire bytes must match the inline engine byte for byte.
    pub fn all_off(rounds: u64) -> ThreadedEchoConfig {
        ThreadedEchoConfig {
            rounds,
            pa: PaConfig::paper_default(),
            stack: StackSpec::paper(),
            trace: false,
            ring_capacity: 0,
            round_ns: 200_000,
        }
    }
}

/// What a [`ThreadedEcho`] run produced.
#[derive(Debug)]
pub struct ThreadedEchoReport {
    /// The epoch-consistent merged snapshot (application domain +
    /// drain domain).
    pub snapshot: GlobalSnapshot,
    /// Journeys stitched from both endpoints' trace rings (empty when
    /// tracing was off).
    pub journeys: JourneySet,
    /// Every wire frame in transmit order (`(sender, bytes)`;
    /// sender 0 = requester, 1 = echoer) — the golden-bytes image.
    pub frames: Vec<(u32, Vec<u8>)>,
    /// Payload round trips completed.
    pub round_trips: u64,
    /// The cost model that priced the ledgers.
    pub cost: CostModel,
    /// The cross-thread event timeline (also inside `snapshot`).
    pub events: Vec<DomainEvent>,
    /// Both endpoints' trace rings (for journey re-stitching; empty
    /// when tracing was off).
    pub rings: Vec<TraceRing>,
}

impl ThreadedEchoReport {
    /// True if the merged masking ledger conserves exactly — calls and
    /// ns `==` — against the merged phase table.
    pub fn conserves(&self) -> bool {
        match self.snapshot.merged_ledger() {
            Some(ml) => {
                let rows = self.snapshot.phase_rows(|l, p| self.cost.phase_cost(l, p));
                ml.conserves(&rows)
            }
            None => false,
        }
    }

    /// The cross-thread critical-path DAG: handoff and drain events as
    /// nodes (application thread on lane 0, drain thread on lane 2 —
    /// its own Perfetto track), `HandoffSent → HandoffReceived` and
    /// `DrainStart → DrainDone` happens-before edges stitching the two
    /// threads.
    pub fn crit_dag(&self) -> CritDag {
        let mut dag = CritDag::new();
        let mut sent: Vec<(u64, usize)> = Vec::new();
        let mut started: Vec<(u64, usize)> = Vec::new();
        let mut last_on_lane: [Option<usize>; 2] = [None, None];
        for ev in &self.events {
            let (label, lane, class) = match ev.kind {
                DomainEventKind::HandoffSent { job } => {
                    (format!("handoff/{job}"), 0u32, WorkClass::OnPath)
                }
                DomainEventKind::HandoffReceived { job } => {
                    (format!("pickup/{job}"), 2, WorkClass::Masked)
                }
                DomainEventKind::DrainStart { job } => {
                    (format!("drain/{job}"), 2, WorkClass::Masked)
                }
                DomainEventKind::DrainDone { job, .. } => {
                    (format!("drained/{job}"), 2, WorkClass::Masked)
                }
                DomainEventKind::Published { .. } => continue,
            };
            let idx = dag.node(CritNode {
                label,
                host: 0,
                lane,
                class,
                start: ev.at,
                dur: 1,
            });
            // Program order within each thread.
            let lane_slot = if lane == 0 { 0 } else { 1 };
            if let Some(prev) = last_on_lane[lane_slot] {
                dag.edge(prev, idx);
            }
            last_on_lane[lane_slot] = Some(idx);
            match ev.kind {
                DomainEventKind::HandoffSent { job } => sent.push((job, idx)),
                DomainEventKind::HandoffReceived { job } => {
                    if let Some(&(_, s)) = sent.iter().find(|(j, _)| *j == job) {
                        dag.edge(s, idx);
                    }
                }
                DomainEventKind::DrainStart { job } => started.push((job, idx)),
                DomainEventKind::DrainDone { job, .. } => {
                    if let Some(&(_, s)) = started.iter().find(|(j, _)| *j == job) {
                        dag.edge(s, idx);
                    }
                }
                DomainEventKind::Published { .. } => {}
            }
        }
        dag
    }
}

/// A two-endpoint echo driven from the calling thread with every post
/// phase drained on a [`PostDrainWorker`] thread — the instrumented
/// proof workload for cross-thread telemetry.
#[derive(Debug)]
pub struct ThreadedEcho {
    cfg: ThreadedEchoConfig,
}

impl ThreadedEcho {
    /// A harness for `cfg`.
    pub fn new(cfg: ThreadedEchoConfig) -> ThreadedEcho {
        ThreadedEcho { cfg }
    }

    fn connect(&self, local: u64, peer: u64, seed: u64, ring_conn: u32) -> Box<Connection> {
        let mut conn = Box::new(
            Connection::new(
                self.cfg.stack.build(),
                self.cfg.pa,
                ConnectionParams::new(
                    EndpointAddr::from_parts(local, 7),
                    EndpointAddr::from_parts(peer, 7),
                    seed,
                ),
            )
            .expect("echo stack must compile"),
        );
        if self.cfg.trace {
            let mut probe = ProbeSink::ring(self.cfg.ring_capacity);
            if let Some(r) = probe.trace_ring_mut() {
                r.set_conn(ring_conn);
            }
            conn.set_probe(probe);
        }
        conn
    }

    /// Runs the echo: requester sends on the calling thread, frames
    /// cross to the echoer, replies come back, and *every*
    /// `process_pending` runs on the drain thread. Returns the merged,
    /// epoch-consistent report.
    pub fn run(&self) -> ThreadedEchoReport {
        let cfg = &self.cfg;
        let layer_names: Vec<String> = cfg
            .stack
            .build()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        let cost = CostModel::paper_ml(layer_names);
        let mut coord = SnapshotCoordinator::new(SketchConfig::default_scope());
        let mut app = coord.domain("app");
        let drain_domain = coord.domain("drain");
        let drain_id = drain_domain.id();
        let mut worker = PostDrainWorker::spawn(drain_domain, cost.clone(), 4);

        let mut a = self.connect(1, 2, 0xEC_0A, 1);
        let mut b = self.connect(2, 1, 0xEC_0B, 2);
        let app_id = app.id();

        let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut round_trips = 0u64;
        let mut now: Nanos = 0;

        for round in 0..cfg.rounds {
            now = (round + 1) * cfg.round_ns;
            app.set_now(now);
            // --- pre work, application thread, bracketed into `app`.
            let (na, ma, sa) = (a.layer_names(), a.phase_meters().to_vec(), *a.stats());
            let (nb, mb, sb) = (b.layer_names(), b.phase_meters().to_vec(), *b.stats());
            a.set_now(now);
            b.set_now(now);
            a.send(format!("echo request {round}").as_bytes());
            while let Some(f) = a.poll_transmit() {
                frames.push((0, f.as_slice().to_vec()));
                b.deliver_frame(f);
            }
            let mut echoed = false;
            while let Some(m) = b.poll_delivery() {
                b.send(m.as_slice());
                b.recycle(m);
                echoed = true;
            }
            fold_bracket(&mut app, &a, &na, &ma, &sa);
            fold_bracket(&mut app, &b, &nb, &mb, &sb);
            // --- post work for both endpoints on the drain thread.
            a = self.round_trip_drain(&mut worker, &mut app, a, now);
            b = self.round_trip_drain(&mut worker, &mut app, b, now + 1);
            // --- the reply crosses back (pre again, new bracket) half
            // a round later, so its deliver timestamps causally follow
            // the send timestamps in the merged timeline.
            let mid = now + cfg.round_ns / 2;
            app.set_now(mid);
            a.set_now(mid);
            b.set_now(mid);
            let (nb2, mb2, sb2) = (b.layer_names(), b.phase_meters().to_vec(), *b.stats());
            let (na2, ma2, sa2) = (a.layer_names(), a.phase_meters().to_vec(), *a.stats());
            while let Some(f) = b.poll_transmit() {
                frames.push((1, f.as_slice().to_vec()));
                a.deliver_frame(f);
            }
            let mut replied = false;
            while let Some(m) = a.poll_delivery() {
                a.recycle(m);
                replied = true;
            }
            fold_bracket(&mut app, &b, &nb2, &mb2, &sb2);
            fold_bracket(&mut app, &a, &na2, &ma2, &sa2);
            a = self.round_trip_drain(&mut worker, &mut app, a, mid + 1);
            b = self.round_trip_drain(&mut worker, &mut app, b, mid + 2);
            if echoed && replied {
                round_trips += 1;
            }
        }

        // --- shutdown: worker seals + retires; app seals; collect.
        worker.shutdown();
        seal_ledger(&mut app, &cost);
        app.set_now(now);
        let epoch = coord.advance();
        app.publish();
        let snapshot = coord.collect(epoch);
        let events = snapshot.events.clone();

        let mut rings = Vec::new();
        if cfg.trace {
            for conn in [&a, &b] {
                if let Some(r) = conn.probe().trace_ring() {
                    rings.push(r.clone());
                }
            }
        }
        let ring_refs: Vec<&TraceRing> = rings.iter().collect();
        let journeys = JourneySet::reconstruct(&ring_refs);
        debug_assert!(app_id != drain_id);

        ThreadedEchoReport {
            snapshot,
            journeys,
            frames,
            round_trips,
            cost,
            events,
            rings,
        }
    }

    /// Ships `conn` through the drain thread and waits for it back —
    /// the worker runs `process_pending` and folds the deltas into its
    /// own domain. A full pipeline falls back to an inline drain
    /// bracketed into the *sender's* domain (backpressure, never loss —
    /// and the conservation story is unchanged because the fold just
    /// lands in a different domain of the same snapshot).
    fn round_trip_drain(
        &self,
        worker: &mut PostDrainWorker,
        app: &mut TelemetryDomain,
        conn: Box<Connection>,
        now: Nanos,
    ) -> Box<Connection> {
        match worker.submit(app, conn, now) {
            Ok(_) => worker.recv().expect("worker returns the connection").conn,
            Err(mut conn) => {
                let (n, m, s) = bracket_before(&conn);
                conn.set_now(now);
                conn.process_pending();
                fold_bracket(app, &conn, &n, &m, &s);
                conn
            }
        }
    }
}

/// Runs the same echo inline (no second thread, same virtual clocks) —
/// the reference image for the threaded golden-bytes gate.
pub fn inline_echo_frames(cfg: &ThreadedEchoConfig) -> Vec<(u32, Vec<u8>)> {
    let harness = ThreadedEcho::new(cfg.clone());
    let mut a = harness.connect(1, 2, 0xEC_0A, 1);
    let mut b = harness.connect(2, 1, 0xEC_0B, 2);
    let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
    for round in 0..cfg.rounds {
        let now = (round + 1) * cfg.round_ns;
        a.set_now(now);
        b.set_now(now);
        a.send(format!("echo request {round}").as_bytes());
        while let Some(f) = a.poll_transmit() {
            frames.push((0, f.as_slice().to_vec()));
            b.deliver_frame(f);
        }
        while let Some(m) = b.poll_delivery() {
            b.send(m.as_slice());
            b.recycle(m);
        }
        a.set_now(now);
        a.process_pending();
        b.set_now(now + 1);
        b.process_pending();
        let mid = now + cfg.round_ns / 2;
        a.set_now(mid);
        b.set_now(mid);
        while let Some(f) = b.poll_transmit() {
            frames.push((1, f.as_slice().to_vec()));
            a.deliver_frame(f);
        }
        while let Some(m) = a.poll_delivery() {
            a.recycle(m);
        }
        a.set_now(mid + 1);
        a.process_pending();
        b.set_now(mid + 2);
        b.process_pending();
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drained_echo_makes_progress_and_conserves_exactly() {
        let report = ThreadedEcho::new(ThreadedEchoConfig::traced(12)).run();
        assert_eq!(report.round_trips, 12);
        assert!(
            report.conserves(),
            "merged ledger must conserve:\n{}",
            report.snapshot.render()
        );
        // Both domains really did work: pre on app, post on drain.
        let app = report
            .snapshot
            .domains
            .iter()
            .find(|d| d.label == "app")
            .unwrap();
        let drain = report
            .snapshot
            .domains
            .iter()
            .find(|d| d.label == "drain")
            .unwrap();
        assert!(drain.counter(DomainCounter::DrainBatches) > 0);
        assert!(
            drain.counter(DomainCounter::PostSendPhases) > 0,
            "post sends must land on the drain domain"
        );
        assert_eq!(
            app.counter(DomainCounter::HandoffsOut),
            drain.counter(DomainCounter::HandoffsIn),
            "every handoff picked up"
        );
    }

    #[test]
    fn per_domain_ledgers_partition_the_inline_total() {
        // The merged snapshot's phase table equals the table an inline
        // single-domain run would produce: deltas partition.
        let report = ThreadedEcho::new(ThreadedEchoConfig::traced(8)).run();
        let merged = report.snapshot.merged_meters();
        let total_calls: u64 = merged.iter().map(|(_, m)| m.total_calls()).sum();
        let per_domain: u64 = report
            .snapshot
            .domains
            .iter()
            .flat_map(|d| d.meters.iter())
            .map(|(_, m)| m.total_calls())
            .sum();
        assert_eq!(total_calls, per_domain);
        assert!(total_calls > 0);
    }

    #[test]
    fn cross_thread_journeys_complete() {
        let report = ThreadedEcho::new(ThreadedEchoConfig::traced(20)).run();
        assert!(!report.journeys.is_empty(), "journeys must be observed");
        assert!(
            report.journeys.completeness() >= 0.99,
            "journeys incomplete: {}",
            report.journeys.completeness()
        );
    }

    #[test]
    fn crit_dag_is_acyclic_and_spans_both_lanes() {
        let report = ThreadedEcho::new(ThreadedEchoConfig::traced(5)).run();
        let dag = report.crit_dag();
        assert!(dag.is_acyclic());
        assert!(dag.nodes.iter().any(|n| n.lane == 0));
        assert!(dag.nodes.iter().any(|n| n.lane == 2));
        assert!(!dag.critical_path().is_empty());
    }

    #[test]
    fn all_off_threaded_run_is_byte_identical_to_inline() {
        let cfg = ThreadedEchoConfig::all_off(10);
        let threaded = ThreadedEcho::new(cfg.clone()).run();
        let inline = inline_echo_frames(&cfg);
        assert_eq!(threaded.frames, inline, "wire bytes must not change");
        assert!(!threaded.frames.is_empty());
    }

    #[test]
    fn full_pipeline_falls_back_to_inline_drain() {
        let mut coord = SnapshotCoordinator::new(SketchConfig::default_scope());
        let mut app = coord.domain("app");
        let drain = coord.domain("drain");
        let names: Vec<String> = StackSpec::paper()
            .build()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        let mut worker = PostDrainWorker::spawn(drain, CostModel::paper_ml(names), 1);
        let harness = ThreadedEcho::new(ThreadedEchoConfig::all_off(1));
        let c1 = harness.connect(1, 2, 1, 1);
        let c2 = harness.connect(3, 4, 2, 2);
        let seq = worker.submit(&mut app, c1, 10).expect("first fits");
        assert_eq!(seq, 0);
        // Pipeline (capacity 1) is full until c1 comes back.
        let c2 = match worker.submit(&mut app, c2, 11) {
            Err(c) => c,
            Ok(_) => panic!("second submit must refuse"),
        };
        assert_eq!(worker.in_flight(), 1);
        let back = worker.recv().expect("c1 returns");
        assert_eq!(back.seq, 0);
        assert_eq!(worker.in_flight(), 0);
        drop(c2);
        worker.shutdown();
    }
}
