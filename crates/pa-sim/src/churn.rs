//! High-cardinality churn scenario: waves of short-lived client
//! connections against a multi-CPU server, rolled up into one bounded
//! pa-scope telemetry plane.
//!
//! §6's "Maximum Load" analysis assumes a server with *many* PAs, one
//! per client. Real deployments add one more dimension: the client
//! population churns, so over a run the server sees far more distinct
//! connections than are ever alive at once. Exact per-connection
//! histograms would grow without bound; [`ChurnSim`] is the
//! demonstration that the mergeable-sketch plane does not:
//!
//! - each **wave** is a fresh [`ClusterSim`] (new connections, new
//!   cookies) driven to completion with its own live [`ScopePlane`];
//! - at wave end, the wave's exact per-client latencies are folded
//!   into the **global** plane (connection series admitted until the
//!   byte budget is hit, then counted into the overflow series —
//!   explicit degradation, never silent loss), and the wave plane's
//!   cluster sketch is *merged* into a running sketch — the canonical
//!   merge makes "merge of per-wave sketches" and "one sketch fed every
//!   sample" literally `==`, which [`ChurnSim::merged_cluster_matches`]
//!   checks across the whole run;
//! - every exact sample is also kept in [`ChurnSim::oracle`], so tests
//!   can bound the sketch's rank error against ground truth;
//! - a [`Watchdog`] samples progress/backlog/ledger/p99 at every wave
//!   boundary and freezes a [`FlightRecorder`] post-mortem on the
//!   first break, and the recorder keeps one time-series point per
//!   wave for the ops dashboard.
//!
//! Fault waves (octet corruption, or total blackhole) exercise the
//! reject taxonomy and the watchdog's stall detection under churn.

use crate::gc::GcPolicy;
use crate::multi::ClusterSim;
use crate::sim::SimConfig;
use crate::Nanos;
use pa_obs::{
    AttrEntry, FlightRecorder, LeakLedger, MaskDomain, MaskingLedger, MetricsSnapshot, Phase,
    QuantileSketch, RejectLedger, ScopeConfig, ScopePlane, WatchInput, Watchdog, WatchdogConfig,
    WorkClass,
};
use pa_unet::FaultConfig;

/// Configuration of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of connection waves.
    pub waves: usize,
    /// Client connections per wave (total connections = `waves` ×
    /// `clients_per_wave`).
    pub clients_per_wave: usize,
    /// Closed-loop requests per client.
    pub per_client: u64,
    /// Server CPUs (§6 partitioning: connection k runs on k mod cpus).
    pub n_cpus: usize,
    /// Endpoint shards in the global plane (connection series roll up
    /// per shard, shards roll up into the cluster).
    pub shards: usize,
    /// The global (and per-wave) scope-plane configuration.
    pub scope: ScopeConfig,
    /// The watchdog configuration (sampled once per wave boundary).
    pub watchdog: WatchdogConfig,
    /// Every `corrupt_every`-th wave runs with octet corruption
    /// (0 = never): exercises the reject taxonomy.
    pub corrupt_every: usize,
    /// Waves from this index on run against a total-blackhole network
    /// (`usize::MAX` = never): progress flatlines with requests
    /// outstanding, which the watchdog must call a stall.
    pub blackhole_from: usize,
    /// Fault-injection seed.
    pub seed: u64,
    /// Per-wave virtual-time horizon.
    pub wave_horizon: Nanos,
}

impl ChurnConfig {
    /// A small, fast churn: 8 waves × 32 clients (256 connections),
    /// one corrupt wave in four.
    pub fn small() -> ChurnConfig {
        ChurnConfig {
            waves: 8,
            clients_per_wave: 32,
            per_client: 4,
            n_cpus: 4,
            shards: 8,
            scope: ScopeConfig::default(),
            watchdog: WatchdogConfig::default(),
            corrupt_every: 4,
            blackhole_from: usize::MAX,
            seed: 0x0C0C,
            wave_horizon: 30_000_000_000,
        }
    }

    /// A churn sized to roughly `total_conns` distinct connections
    /// (waves of 250), for the high-cardinality acceptance runs.
    pub fn sized(total_conns: usize) -> ChurnConfig {
        let per_wave = 250.min(total_conns.max(1));
        ChurnConfig {
            waves: total_conns.div_ceil(per_wave),
            clients_per_wave: per_wave,
            per_client: 2,
            ..ChurnConfig::small()
        }
    }

    /// Total connections this config will create.
    pub fn total_conns(&self) -> usize {
        self.waves * self.clients_per_wave
    }
}

/// One completed churn run: the global telemetry plane, its watchdog
/// and flight recorder, and the exact-sample oracle.
pub struct ChurnSim {
    cfg: ChurnConfig,
    /// The global roll-up plane (shard endpoints, per-connection
    /// series until the byte budget, overflow beyond).
    pub plane: ScopePlane,
    /// The wave-boundary health watchdog.
    pub watchdog: Watchdog,
    /// One sample per wave; post-mortems on watchdog alerts.
    pub recorder: FlightRecorder,
    /// Every exact latency sample, in fold order (ground truth for
    /// rank-error bounds).
    pub oracle: Vec<u64>,
    /// Requests completed across all waves.
    pub completed: u64,
    /// Requests offered across all waves.
    pub expected: u64,
    /// Reject taxonomy merged over every connection of every wave.
    pub rejects: RejectLedger,
    /// Slow-path attribution merged over every connection: where the
    /// per-(layer, cause) overhead concentrated.
    pub holds: Vec<AttrEntry>,
    /// Masking attribution merged over every connection of every wave
    /// (virtual-time domain): on-path vs masked vs leaked work, plus
    /// the engine's per-op fast-path cost as on-path rows.
    pub masking: MaskingLedger,
    /// Critical-path leaks merged over every connection: which
    /// `(layer, phase, cause)` buckets a later delivery had to wait on.
    pub leaks: LeakLedger,
    clock: Nanos,
    waves_run: usize,
    conn_seq: usize,
    merged: QuantileSketch,
    ledger_ok: bool,
}

impl ChurnSim {
    /// Builds an idle churn run (call [`ChurnSim::run`]).
    pub fn new(cfg: ChurnConfig) -> ChurnSim {
        let plane = ScopePlane::new(cfg.scope);
        let merged = QuantileSketch::new(cfg.scope.sketch_config());
        ChurnSim {
            watchdog: Watchdog::new(cfg.watchdog),
            // Interval 1 ns: every wave boundary is a due sample. One
            // point per wave, capacity for the whole run.
            recorder: FlightRecorder::with_limits(1, cfg.waves.max(16), 64),
            plane,
            oracle: Vec::new(),
            completed: 0,
            expected: 0,
            rejects: RejectLedger::new(),
            holds: Vec::new(),
            masking: MaskingLedger::empty("churn", MaskDomain::Virtual),
            leaks: LeakLedger::default(),
            clock: 0,
            waves_run: 0,
            conn_seq: 0,
            merged,
            ledger_ok: true,
            cfg,
        }
    }

    /// The churn configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Waves completed so far.
    pub fn waves_run(&self) -> usize {
        self.waves_run
    }

    /// Accumulated virtual time across all waves.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Runs every wave.
    pub fn run(&mut self) {
        for w in 0..self.cfg.waves {
            self.run_wave(w);
        }
    }

    fn wave_faults(&self, w: usize) -> FaultConfig {
        let mut f = FaultConfig::none();
        if self.cfg.corrupt_every > 0 && (w + 1).is_multiple_of(self.cfg.corrupt_every) {
            f.corrupt = 0.05;
            f.seed = self.cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        if w >= self.cfg.blackhole_from {
            f.drop = 1.0;
            f.seed = self.cfg.seed ^ w as u64;
        }
        f
    }

    fn run_wave(&mut self, w: usize) {
        let mut sim_cfg = SimConfig::paper();
        sim_cfg.gc = [GcPolicy::EveryN(64); 2];
        sim_cfg.faults = self.wave_faults(w);
        let mut wave = ClusterSim::new(&sim_cfg, self.cfg.clients_per_wave, self.cfg.n_cpus);
        wave.attach_scope(self.cfg.scope);
        wave.run(self.cfg.per_client, self.cfg.wave_horizon);

        let wave_expected = self.cfg.per_client * self.cfg.clients_per_wave as u64;
        let wave_end = self.clock + wave.now().max(1);
        self.expected += wave_expected;
        self.completed += wave.completed;

        // Fold the wave's exact per-client latencies into the global
        // plane (and the oracle). Shards stripe round-robin over the
        // global connection sequence, so every shard sees every wave.
        for (k, series) in wave.rtt_by_client.iter().enumerate() {
            let conn = &wave.clients[k].conn;
            let key = self.plane.register(
                &format!("shard{:02}", self.conn_seq % self.cfg.shards),
                &format!("w{w:03}c{k:04}"),
            );
            let tag = conn.last_deliver_explain();
            for &v in series.values() {
                self.plane.record(key, v as u64, wave_end, 0, tag);
                self.oracle.push(v as u64);
            }
            self.conn_seq += 1;
        }
        // The merge cross-check: the wave plane recorded the same
        // samples live (inside `client_deliveries`); merging its
        // cluster sketch must land on the same canonical state as the
        // sample-by-sample global plane.
        self.merged
            .merge(wave.scope_plane().expect("attached").cluster().sketch());

        // Aggregate the wave's reject taxonomy, attribution, masking
        // ledger, and ledger health from both sides of every
        // connection. One cost model prices every conn's phase table
        // (same stack throughout the wave).
        let mut wave_ledger_ok = true;
        let cost = (sim_cfg.cost)(
            wave.clients[0]
                .conn
                .layer_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for conn in wave
            .clients
            .iter()
            .map(|c| &c.conn)
            .chain(wave.server_conns().iter())
        {
            let stats = conn.stats();
            self.rejects.merge(&stats.rejects);
            wave_ledger_ok &= stats.delivery_balanced();
            for e in conn.attribution().entries() {
                match self
                    .holds
                    .iter_mut()
                    .find(|h| h.op == e.op && h.layer == e.layer && h.cause == e.cause)
                {
                    Some(h) => h.count += e.count,
                    None => self.holds.push(*e),
                }
            }
            let mut report = conn.xray_report();
            cost.price_report(&mut report);
            let mut ml = MaskingLedger::from_phases("churn", &report.phases, MaskDomain::Virtual);
            let sends = stats.fast_sends + stats.slow_sends;
            let delivers = stats.fast_deliveries + stats.slow_deliveries;
            ml.push_engine(
                "engine/send",
                Phase::PreSend,
                WorkClass::OnPath,
                sends,
                sends * cost.fast_send(),
            );
            ml.push_engine(
                "engine/deliver",
                Phase::PreDeliver,
                WorkClass::OnPath,
                delivers,
                delivers * cost.fast_deliver(),
            );
            self.masking.merge(&ml);
            self.leaks.merge(conn.leaks());
        }
        self.ledger_ok &= wave_ledger_ok;

        // Watchdog: one observation per wave boundary. Backlog is the
        // wave's lost (offered, never answered) requests — a blackhole
        // wave flatlines progress with backlog standing, a stall.
        let alerts = self.watchdog.observe(WatchInput {
            at: wave_end,
            progress: self.completed,
            backlog: wave_expected - wave.completed,
            ledger_ok: wave_ledger_ok,
            p99_ns: self.plane.cluster().sketch().p99(),
            leak_permille: self.masking.leak_permille(),
        });

        self.clock = wave_end;
        self.waves_run += 1;

        // Flight recorder: one point per wave, post-mortem on alerts.
        let snap = self.snapshot(wave_end);
        let gauges = [
            ("wave_completed", wave.completed as f64),
            ("wave_lost", (wave_expected - wave.completed) as f64),
            ("wave_rate_rps", wave.rate()),
        ];
        self.recorder.maybe_sample(&snap, &gauges);
        for a in &alerts {
            self.recorder
                .trigger_postmortem(wave_end, &format!("watchdog: {a}"), &snap);
        }
    }

    /// A unified snapshot of the churn telemetry at `at`: the global
    /// plane, run totals, the nonzero reject taxonomy, and the
    /// watchdog's health counters.
    pub fn snapshot(&self, at: Nanos) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new(at);
        self.plane.record_into(&mut snap, "scope");
        snap.record("churn", "waves", self.waves_run as u64);
        snap.record("churn", "conns", self.conn_seq as u64);
        snap.record("churn", "completed", self.completed);
        snap.record("churn", "expected", self.expected);
        snap.record("churn", "lost", self.expected - self.completed);
        snap.record("masking", "masked_permille", self.masking.masked_permille());
        snap.record("masking", "leak_permille", self.masking.leak_permille());
        snap.record("masking", "leaked_calls", self.leaks.total_calls());
        for (reason, n) in self.rejects.iter() {
            if n > 0 {
                snap.record("rejects", reason.label(), n);
            }
        }
        snap.record("watchdog", "samples", self.watchdog.samples());
        snap.record("watchdog", "alerts_total", self.watchdog.alerts_total());
        snap.record(
            "watchdog",
            "ledger_broken",
            self.watchdog.ledger_broken() as u64,
        );
        snap
    }

    /// True while every wave's delivery ledgers reconciled.
    pub fn ledger_ok(&self) -> bool {
        self.ledger_ok
    }

    /// The merge cross-check: merging each wave's independently-built
    /// cluster sketch must equal the global plane's cluster sketch,
    /// which saw every sample one at a time. Canonical-form merge makes
    /// this exact `==`, not approximate agreement.
    pub fn merged_cluster_matches(&self) -> bool {
        self.merged == *self.plane.cluster().sketch()
    }

    /// Exact oracle quantile by sorted rank (ceil-rank convention,
    /// matching [`QuantileSketch::quantile`]).
    pub fn oracle_quantile(&self, q: f64) -> u64 {
        let mut sorted = self.oracle.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The fraction of oracle samples ≤ `v` (rank of a sketch answer
    /// in ground truth).
    pub fn oracle_rank(&self, v: u64) -> f64 {
        if self.oracle.is_empty() {
            return 0.0;
        }
        self.oracle.iter().filter(|&&x| x <= v).count() as f64 / self.oracle.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_churn_reconciles_and_stays_bounded() {
        let mut churn = ChurnSim::new(ChurnConfig::small());
        churn.run();
        assert_eq!(churn.waves_run(), 8);
        assert_eq!(churn.config().total_conns(), 256);
        assert!(churn.completed > 0);
        assert_eq!(churn.plane.records(), churn.oracle.len() as u64);
        assert_eq!(
            churn.plane.cluster().sketch().count(),
            churn.oracle.len() as u64
        );
        assert!(churn.plane.rollup_reconciles(), "roll-up reconciles");
        assert!(churn.within_everything(), "budget + merge + ledger");
        // The corrupt waves exercised the reject taxonomy, yet every
        // ledger still reconciled and the watchdog stayed calm (losses
        // were absorbed while progress kept advancing).
        assert!(churn.rejects.total() > 0, "corrupt waves must reject");
        assert!(churn.ledger_ok());
        assert!(!churn.watchdog.ledger_broken());
        assert_eq!(churn.recorder.samples(), 8, "one point per wave");
    }

    impl ChurnSim {
        fn within_everything(&self) -> bool {
            self.plane.within_budget() && self.merged_cluster_matches() && self.ledger_ok
        }
    }

    #[test]
    fn blackhole_waves_trip_the_stall_watchdog() {
        let mut cfg = ChurnConfig::small();
        cfg.corrupt_every = 0;
        cfg.blackhole_from = 3;
        let mut churn = ChurnSim::new(cfg);
        churn.run();
        assert!(churn.completed > 0, "healthy waves completed");
        assert!(!churn.watchdog.healthy());
        assert!(
            churn
                .watchdog
                .alerts()
                .iter()
                .any(|(_, a)| matches!(a, pa_obs::WatchAlert::Stall { .. })),
            "{:?}",
            churn.watchdog.alerts()
        );
        let pm = churn.recorder.postmortem().expect("alert froze the run");
        assert!(pm.reason.contains("watchdog"), "{}", pm.reason);
    }

    #[test]
    fn sketch_quantiles_track_the_oracle() {
        let mut churn = ChurnSim::new(ChurnConfig::small());
        churn.run();
        let alpha = churn.config().scope.alpha + 1e-6;
        for q in [0.5, 0.9, 0.99] {
            let got = churn.plane.cluster().sketch().quantile(q);
            let lo = churn.oracle_quantile((q - 0.01).max(0.0)) as f64 * (1.0 - alpha);
            let hi = churn.oracle_quantile((q + 0.01).min(1.0)) as f64 * (1.0 + alpha);
            assert!(
                (lo..=hi).contains(&(got as f64)),
                "q={q}: sketch {got} outside oracle band [{lo}, {hi}]"
            );
        }
    }
}
