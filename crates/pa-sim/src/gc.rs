//! The garbage-collection cost model.
//!
//! §5: "Garbage collection, in this case, takes between 150 and 450
//! µsecs, with an average of about 300 µsecs … For predictable results
//! without hiccups, we triggered garbage collection after every message
//! reception." §5 then shows that collecting only occasionally raises
//! the round-trip ceiling from ~1900/s to ~6000/s at the price of
//! millisecond hiccups, and §6 reports that explicit allocation of
//! high-bandwidth objects makes collections "reduce dramatically".

use crate::Nanos;
use pa_obs::rng::{Rng, SplitMix64};

/// When the collector runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// After every message reception (the paper's measured default —
    /// Figure 5's solid line).
    EveryReception,
    /// After every `n` receptions (Figure 5's dashed line; the paper's
    /// "occasionally" with ~1 ms hiccups).
    EveryN(u32),
    /// Never — the §6 explicit-pool discipline (high-bandwidth objects
    /// recycled by hand; in our Rust implementation this is literally
    /// [`pa_buf::MsgPool`]).
    Never,
}

/// The GC model for one node.
#[derive(Debug)]
pub struct GcModel {
    policy: GcPolicy,
    min_pause: Nanos,
    max_pause: Nanos,
    rng: SplitMix64,
    receptions: u32,
    collections: u64,
    total_pause: Nanos,
    longest_pause: Nanos,
}

impl GcModel {
    /// The paper's collector: 150–450 µs pauses.
    pub fn paper(policy: GcPolicy, seed: u64) -> GcModel {
        GcModel {
            policy,
            min_pause: 150_000,
            max_pause: 450_000,
            rng: SplitMix64::new(seed),
            receptions: 0,
            collections: 0,
            total_pause: 0,
            longest_pause: 0,
        }
    }

    /// Called after each reception; returns the pause to charge, if a
    /// collection triggers now.
    pub fn on_reception(&mut self) -> Option<Nanos> {
        self.receptions += 1;
        let due = match self.policy {
            GcPolicy::EveryReception => true,
            GcPolicy::EveryN(n) => self.receptions.is_multiple_of(n.max(1)),
            GcPolicy::Never => false,
        };
        if !due {
            return None;
        }
        let pause = self.rng.gen_range_inclusive(self.min_pause, self.max_pause);
        self.collections += 1;
        self.total_pause += pause;
        self.longest_pause = self.longest_pause.max(pause);
        Some(pause)
    }

    /// Collections run so far.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Mean pause so far (0 if none).
    pub fn mean_pause(&self) -> Nanos {
        self.total_pause.checked_div(self.collections).unwrap_or(0)
    }

    /// Longest pause so far.
    pub fn longest_pause(&self) -> Nanos {
        self.longest_pause
    }

    /// The policy in force.
    pub fn policy(&self) -> GcPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reception_always_pauses() {
        let mut gc = GcModel::paper(GcPolicy::EveryReception, 1);
        for _ in 0..100 {
            let p = gc.on_reception().expect("collects every time");
            assert!((150_000..=450_000).contains(&p));
        }
        assert_eq!(gc.collections(), 100);
    }

    #[test]
    fn mean_pause_is_near_300us() {
        let mut gc = GcModel::paper(GcPolicy::EveryReception, 2);
        for _ in 0..10_000 {
            gc.on_reception();
        }
        let mean = gc.mean_pause();
        assert!((280_000..=320_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn every_n_spaces_collections() {
        let mut gc = GcModel::paper(GcPolicy::EveryN(10), 3);
        let mut pauses = 0;
        for _ in 0..100 {
            if gc.on_reception().is_some() {
                pauses += 1;
            }
        }
        assert_eq!(pauses, 10);
    }

    #[test]
    fn never_never_pauses() {
        let mut gc = GcModel::paper(GcPolicy::Never, 4);
        for _ in 0..1000 {
            assert!(gc.on_reception().is_none());
        }
        assert_eq!(gc.collections(), 0);
        assert_eq!(gc.mean_pause(), 0);
    }

    #[test]
    fn deterministic_by_seed() {
        let collect = |seed| {
            let mut gc = GcModel::paper(GcPolicy::EveryReception, seed);
            (0..50)
                .map(|_| gc.on_reception().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }
}
