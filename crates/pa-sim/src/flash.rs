//! Flash-crowd scenario: a million expected peers, a hundred thousand
//! live at once, and the storms in between.
//!
//! §6's "Maximum Load" analysis asks what happens when a server carries
//! one PA per client at real populations. [`FlashCrowd`] drives a
//! [`ShardedEndpoint`] through the whole arc of such an event, with
//! exact bookkeeping at every step:
//!
//! 1. **Directory**: pre-register the full expected population
//!    (`idents` entries — at full scale ≥ 1M) so admission can verify
//!    arrivals against it;
//! 2. **Accept storm**: the live population (`live`, at full scale
//!    ~100k) arrives at once and is admitted through the per-shard
//!    accept budget over several ticks (a counted, bounded ramp — not a
//!    stampede into the tables);
//! 3. **Establish**: every client's first (ident-carrying) frame
//!    verifies, binds its cookie, and *migrates* the connection to the
//!    shard that cookie hashes to;
//! 4. **Steady state**: rounds of cookie-only traffic over rotating
//!    windows of the population, alternating the zero-copy burst path
//!    and the per-shard-pool wire path;
//! 5. **Re-key storm**: a slice of clients rotates cookies mid-flight
//!    (more migrations, bounded tombstones), then replays every retired
//!    cookie — each replay must be refused as **stale**, exactly;
//! 6. **Adversarial storm**: unknown cookies, foreign and truncated
//!    idents, zero cookies, truncated preambles — every category
//!    counted against a known send count, `==` not `>=`;
//! 7. **Departure**: explicit removals plus idle eviction drain the
//!    crowd to zero, with every ledger still reconciling.
//!
//! Telemetry rides on one [`TelemetryDomain`] per shard (the pa-mcobs
//! plane): each phase folds per-shard counter *deltas* into that
//! shard's domain, and the final [`SnapshotCoordinator::collect`] must
//! reproduce the endpoint's own ledgers exactly when the domains are
//! merged — the same fold-the-deltas discipline the multi-core
//! observability plane uses, applied to demux sharding.

use crate::Nanos;
use pa_buf::Msg;
use pa_core::conn::{Connection, ConnectionParams, DeliverOutcome, DropReason};
use pa_core::layer::NullLayer;
use pa_core::shard::{ShardDelivery, ShardHandle, ShardedEndpoint};
use pa_core::{AdmitError, PaConfig};
use pa_obs::{
    DomainCounter, GlobalSnapshot, RejectLedger, SketchConfig, SnapshotCoordinator, TelemetryDomain,
};
use pa_wire::{ByteOrder, Cookie, EndpointAddr, Preamble};
use std::collections::HashSet;

/// Deterministic SplitMix64 stream for adversarial frame synthesis.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Scale knobs of a flash-crowd run.
#[derive(Debug, Clone)]
pub struct FlashConfig {
    /// Shard count (power of two).
    pub shards: usize,
    /// Expected-population directory size (real idents + filler).
    pub idents: usize,
    /// Live connections admitted.
    pub live: usize,
    /// Per-shard accepts per tick during the admission storm.
    pub accept_budget: u32,
    /// Steady-traffic rounds (each over one rotating window).
    pub rounds: usize,
    /// Clients active per steady round.
    pub window: usize,
    /// Frames per ingest burst.
    pub burst: usize,
    /// Clients re-keyed (then replayed) in the rotation storm.
    pub rekeys: usize,
    /// Unknown-cookie frames in the adversarial storm.
    pub storm_unknown: usize,
    /// Foreign-ident frames (full-length, unregistered) in the storm.
    pub storm_foreign: usize,
    /// Truncated-ident frames (shorter than any registered ident).
    pub storm_trunc_ident: usize,
    /// Zero-cookie frames.
    pub storm_zero: usize,
    /// Truncated-preamble frames.
    pub storm_trunc_preamble: usize,
    /// Connections removed explicitly at departure (the rest are
    /// idle-evicted).
    pub removals: usize,
    /// Seed for the adversarial streams.
    pub seed: u64,
}

impl FlashConfig {
    /// A debug-build smoke scale: 8 shards, 20k directory, 2k live.
    pub fn smoke() -> FlashConfig {
        FlashConfig {
            shards: 8,
            idents: 20_000,
            live: 2_000,
            accept_budget: 64,
            rounds: 3,
            window: 256,
            burst: 512,
            rekeys: 128,
            storm_unknown: 1_000,
            storm_foreign: 400,
            storm_trunc_ident: 200,
            storm_zero: 200,
            storm_trunc_preamble: 200,
            removals: 200,
            seed: 0xF1A5_4C04D,
        }
    }

    /// The acceptance scale of ROADMAP item 1: a ≥1M-ident directory,
    /// ~100k live connections, 64 shards. Release builds only.
    pub fn full() -> FlashConfig {
        FlashConfig {
            shards: 64,
            idents: 1_000_000,
            live: 100_000,
            accept_budget: 512,
            rounds: 2,
            window: 8_192,
            burst: 1_024,
            rekeys: 2_048,
            storm_unknown: 50_000,
            storm_foreign: 20_000,
            storm_trunc_ident: 10_000,
            storm_zero: 10_000,
            storm_trunc_preamble: 10_000,
            removals: 10_000,
            seed: 0xF1A5_4C04D,
        }
    }
}

/// What one flash-crowd run did, and whether every ledger held.
#[derive(Debug, Clone)]
pub struct FlashReport {
    /// Idents in the expected directory at its peak.
    pub idents_preregistered: usize,
    /// Connections admitted.
    pub admitted: usize,
    /// Ticks the admission storm took under the accept budget.
    pub admission_ticks: u64,
    /// Accepts deferred (refused this tick, admitted a later one).
    pub deferred: u64,
    /// Establish-time migrations (cookie hashed off the provisional
    /// shard).
    pub migrations: u64,
    /// Cookie-only frames routed in steady state.
    pub steady_frames: u64,
    /// Application messages delivered and recycled.
    pub delivered: u64,
    /// Cookies retired by the re-key storm.
    pub rekeyed: usize,
    /// Replays of retired cookies refused as stale (must equal
    /// `rekeyed`).
    pub stale_refusals: u64,
    /// Connections removed explicitly at departure.
    pub removed: usize,
    /// Connections idle-evicted at departure.
    pub evicted: u64,
    /// Frames each shard demuxed (the balance distribution).
    pub per_shard_frames: Vec<u64>,
    /// Every reject, front + all shards, folded.
    pub rejects: RejectLedger,
    /// [`ShardedEndpoint::demux_balanced`] — front conservation plus
    /// every shard's own demux ledger.
    pub demux_balanced: bool,
    /// Every storm category matched its send count exactly, and the
    /// benign phases contributed zero rejects.
    pub rejects_reconcile: bool,
    /// Each shard router's stale ledger identity held.
    pub stale_ledgers_ok: bool,
    /// Each shard pool's flux identity held.
    pub pools_ok: bool,
    /// The merged per-shard telemetry domains reproduced the demux
    /// ledgers exactly.
    pub fold_exact: bool,
}

impl FlashReport {
    /// Every invariant of the run, conjoined.
    pub fn reconciles(&self) -> bool {
        self.demux_balanced
            && self.rejects_reconcile
            && self.stale_ledgers_ok
            && self.pools_ok
            && self.fold_exact
    }

    /// Max/min per-shard frame counts (how even the hash spread was).
    pub fn shard_spread(&self) -> (u64, u64) {
        let max = self.per_shard_frames.iter().copied().max().unwrap_or(0);
        let min = self.per_shard_frames.iter().copied().min().unwrap_or(0);
        (max, min)
    }
}

struct Client {
    conn: Connection,
    handle: ShardHandle,
    /// Cookie raws this client has retired (re-key storm replays them).
    retired: Vec<u64>,
}

/// The flash-crowd driver. Build with [`FlashCrowd::new`], run with
/// [`FlashCrowd::run`].
pub struct FlashCrowd {
    cfg: FlashConfig,
    server: ShardedEndpoint,
    clients: Vec<Client>,
    coordinator: SnapshotCoordinator,
    domains: Vec<TelemetryDomain>,
    /// Per-shard (frames, routed, rejects) at the last domain fold.
    folded: Vec<(u64, u64, u64)>,
    clock: Nanos,
    report: FlashReport,
    delivery_scratch: Vec<ShardDelivery>,
}

const SERVER_HOST: u64 = 0xFEED;
const TICK: Nanos = 1_000_000; // 1 ms of virtual time per tick

impl FlashCrowd {
    /// Builds the server, the telemetry plane, and an empty report.
    pub fn new(cfg: FlashConfig) -> FlashCrowd {
        let mut coordinator = SnapshotCoordinator::new(SketchConfig::default());
        let domains = (0..cfg.shards)
            .map(|i| coordinator.domain(&format!("shard{i:02}")))
            .collect();
        let mut server = ShardedEndpoint::new(cfg.shards);
        server.set_accept_budget_per_shard(Some(cfg.accept_budget));
        FlashCrowd {
            folded: vec![(0, 0, 0); cfg.shards],
            server,
            clients: Vec::new(),
            coordinator,
            domains,
            clock: 0,
            delivery_scratch: Vec::new(),
            report: FlashReport {
                idents_preregistered: 0,
                admitted: 0,
                admission_ticks: 0,
                deferred: 0,
                migrations: 0,
                steady_frames: 0,
                delivered: 0,
                rekeyed: 0,
                stale_refusals: 0,
                removed: 0,
                evicted: 0,
                per_shard_frames: vec![0; cfg.shards],
                rejects: RejectLedger::new(),
                demux_balanced: false,
                rejects_reconcile: false,
                stale_ledgers_ok: false,
                pools_ok: false,
                fold_exact: false,
            },
            cfg,
        }
    }

    fn conn_pair(&self, i: usize) -> (Connection, Connection) {
        let host = i as u64 + 1;
        let mk = |local: u64, peer: u64, seed: u64| {
            Connection::new(
                vec![Box::new(NullLayer)],
                PaConfig::paper_default(),
                ConnectionParams::new(
                    EndpointAddr::from_parts(local, 1),
                    EndpointAddr::from_parts(peer, 1),
                    seed,
                ),
            )
            .expect("null stack always builds")
        };
        let client = mk(host, SERVER_HOST, host.wrapping_mul(2) + 1);
        let server = mk(SERVER_HOST, host, host.wrapping_mul(2) + 2);
        (client, server)
    }

    /// Folds each shard's demux-counter growth since the last fold into
    /// that shard's telemetry domain — the delta discipline that makes
    /// the final merged snapshot reproduce the ledgers exactly.
    fn fold_domains(&mut self, burst_phase: bool) {
        for i in 0..self.cfg.shards {
            let ep = self.server.shard(i);
            let now = (ep.frames_seen(), ep.routed_frames(), ep.rejects().total());
            let last = self.folded[i];
            let d = &mut self.domains[i];
            d.set_now(self.clock);
            d.add_stat("demux", "frames", now.0 - last.0);
            d.add_stat("demux", "routed", now.1 - last.1);
            d.add_stat("demux", "rejects", now.2 - last.2);
            if burst_phase && now.0 > last.0 {
                d.bump(DomainCounter::Bursts);
                d.add(DomainCounter::BurstFrames, now.0 - last.0);
            }
            self.folded[i] = now;
        }
    }

    fn drain_and_recycle(&mut self) -> u64 {
        let mut scratch = std::mem::take(&mut self.delivery_scratch);
        scratch.clear();
        self.server.drain_deliveries(&mut scratch);
        let n = scratch.len() as u64;
        for d in scratch.drain(..) {
            self.server.recycle_delivery(d);
        }
        self.delivery_scratch = scratch;
        n
    }

    /// Phase 1+2: build the expected directory, then admit the live
    /// population through the per-shard accept budget.
    fn admission_storm(&mut self) {
        let mut arrivals = Vec::with_capacity(self.cfg.live);
        for i in 0..self.cfg.live {
            let (client, server_side) = self.conn_pair(i);
            self.server
                .preregister_ident(server_side.expected_ident().to_vec());
            arrivals.push((client, server_side));
        }
        // Filler: the rest of the million-peer directory, expected but
        // never arriving this event.
        for i in self.cfg.live..self.cfg.idents {
            self.server
                .preregister_ident(format!("expected-peer-{i:08x}").into_bytes());
        }
        self.report.idents_preregistered = self.server.expected_count();

        // The storm: everyone at the door at once, admitted only as
        // fast as the budget allows; deferred arrivals retry next tick.
        while !arrivals.is_empty() {
            self.clock += TICK;
            self.server.tick(self.clock);
            self.report.admission_ticks += 1;
            let mut retry = Vec::new();
            for (client, server_side) in arrivals {
                assert!(
                    self.server.take_expected(server_side.expected_ident()),
                    "every arrival is in the expected directory"
                );
                match self.server.try_accept(server_side) {
                    Ok(handle) => self.clients.push(Client {
                        conn: client,
                        handle,
                        retired: Vec::new(),
                    }),
                    Err(AdmitError::Deferred(conn)) | Err(AdmitError::TableFull(conn)) => {
                        // Back in the directory, back in the queue.
                        self.server
                            .preregister_ident(conn.expected_ident().to_vec());
                        self.report.deferred += 1;
                        retry.push((client, conn));
                    }
                }
            }
            arrivals = retry;
        }
        self.report.admitted = self.clients.len();
    }

    /// Phase 3: every client's first frame carries its ident, verifies,
    /// binds the cookie, and (usually) migrates the connection to the
    /// cookie's home shard.
    fn establish(&mut self) {
        let mut batch: Vec<Msg> = Vec::with_capacity(self.cfg.burst);
        for start in (0..self.clients.len()).step_by(self.cfg.burst) {
            let end = (start + self.cfg.burst).min(self.clients.len());
            batch.clear();
            for c in &mut self.clients[start..end] {
                c.conn.send(b"establish");
                batch.push(c.conn.poll_transmit().expect("first send always emits"));
            }
            let report = self.server.from_network_burst(&mut batch);
            assert_eq!(report.routed, (end - start) as u64, "establish all routes");
            for c in &mut self.clients[start..end] {
                c.conn.process_pending();
            }
            self.report.delivered += self.drain_and_recycle();
        }
        self.report.migrations = self.server.front_stats().migrations;
        self.fold_domains(true);
    }

    /// Phase 4: rounds of cookie-only traffic over rotating windows,
    /// alternating the burst path and the per-shard-pool wire path.
    fn steady_traffic(&mut self) {
        let live = self.clients.len();
        let mut batch: Vec<Msg> = Vec::with_capacity(self.cfg.burst);
        for round in 0..self.cfg.rounds {
            let base = round * self.cfg.window;
            let payload = [round as u8; 16];
            if round % 2 == 0 {
                // Burst path: frames batched, demuxed as per-shard
                // sorted runs.
                for w in (0..self.cfg.window).step_by(self.cfg.burst) {
                    let n = self.cfg.burst.min(self.cfg.window - w);
                    batch.clear();
                    for k in 0..n {
                        let c = &mut self.clients[(base + w + k) % live];
                        c.conn.send(&payload);
                        batch.push(c.conn.poll_transmit().expect("steady send emits"));
                    }
                    self.report.steady_frames += n as u64;
                    let rep = self.server.from_network_burst(&mut batch);
                    assert_eq!(rep.routed, n as u64, "steady bursts all route");
                    for k in 0..n {
                        self.clients[(base + w + k) % live].conn.process_pending();
                    }
                    self.report.delivered += self.drain_and_recycle();
                }
            } else {
                // Wire path: each frame's bytes enter through the home
                // shard's pool (take → route → deliver → recycle).
                for k in 0..self.cfg.window {
                    let c = &mut self.clients[(base + k) % live];
                    c.conn.send(&payload);
                    let frame = c.conn.poll_transmit().expect("steady send emits");
                    let out = self.server.ingest_wire(frame.as_slice());
                    assert!(!matches!(out, DeliverOutcome::Dropped(_)), "{out:?}");
                    c.conn.process_pending();
                    self.report.steady_frames += 1;
                }
                self.report.delivered += self.drain_and_recycle();
            }
            self.clock += TICK;
            self.server.tick(self.clock);
            self.fold_domains(round % 2 == 0);
        }
    }

    /// Phase 5: re-key a slice of the population (bounded tombstones,
    /// possibly more migrations), then replay every retired cookie and
    /// demand a stale refusal for each.
    fn rekey_storm(&mut self) {
        let live = self.clients.len();
        let stride = (live / self.cfg.rekeys.max(1)).max(1);
        let mut rekeyed = Vec::new();
        for k in 0..self.cfg.rekeys.min(live) {
            let i = (k * stride) % live;
            if self.clients[i].retired.len() >= 4 {
                continue; // stride wrapped onto an already-stormed client
            }
            let c = &mut self.clients[i];
            let old = c.conn.local_cookie().raw();
            c.conn.rotate_cookie(self.cfg.seed ^ (k as u64) << 17);
            c.retired.push(old);
            c.conn.send(b"rekeyed");
            let frame = c.conn.poll_transmit().expect("rekey send emits");
            let out = self.server.from_network(frame);
            assert!(!matches!(out, DeliverOutcome::Dropped(_)), "{out:?}");
            c.conn.process_pending();
            rekeyed.push(i);
        }
        self.report.rekeyed = rekeyed.len();
        self.report.delivered += self.drain_and_recycle();

        // Replay every retired cookie: each hashes to the shard that
        // tombstoned it and must be refused as stale there — exactly
        // one refusal per retirement, no misses, no misroutes.
        let stale_before = self.server.global_rejects().get(DropReason::StaleCookie);
        for &i in &rekeyed {
            let old = *self.clients[i].retired.last().expect("just retired");
            let mut wire = Preamble::common(Cookie::from_raw(old), ByteOrder::Big)
                .encode()
                .to_vec();
            wire.extend_from_slice(b"replay of a retired route");
            let out = self.server.from_network(Msg::from_wire(wire));
            assert_eq!(out, DeliverOutcome::Dropped(DropReason::StaleCookie));
        }
        self.report.stale_refusals =
            self.server.global_rejects().get(DropReason::StaleCookie) - stale_before;
        self.fold_domains(false);
    }

    /// Phase 6: the adversarial storm — every hostile category at a
    /// known count, fed through the burst path mixed together.
    fn adversarial_storm(&mut self) {
        let mut rng = Rng(self.cfg.seed);
        // Cookie raws that must NOT be used as "unknown": everything
        // live or retired (retired raws are stale, not unknown).
        let mut taken: HashSet<u64> = HashSet::new();
        for c in &self.clients {
            taken.insert(c.conn.local_cookie().raw());
            taken.extend(c.retired.iter().copied());
        }
        let ident_len = self.clients[0].conn.local_ident().len();

        let mut frames: Vec<Msg> = Vec::new();
        for _ in 0..self.cfg.storm_unknown {
            let raw = loop {
                let r = rng.next() & ((1 << 62) - 1);
                if r != 0 && !taken.contains(&r) {
                    break r;
                }
            };
            let mut wire = Preamble::common(Cookie::from_raw(raw), ByteOrder::Big)
                .encode()
                .to_vec();
            wire.extend_from_slice(b"nobody home");
            frames.push(Msg::from_wire(wire));
        }
        for _ in 0..self.cfg.storm_foreign {
            // Full-length ident that matches no registered connection.
            let mut wire =
                Preamble::with_conn_ident(Cookie::from_raw(rng.next() | 1), ByteOrder::Big)
                    .encode()
                    .to_vec();
            wire.extend((0..ident_len + 8).map(|_| 0xEEu8));
            frames.push(Msg::from_wire(wire));
        }
        for _ in 0..self.cfg.storm_trunc_ident {
            // Ident flag set, but too short to carry any registered
            // ident.
            let mut wire =
                Preamble::with_conn_ident(Cookie::from_raw(rng.next() | 1), ByteOrder::Big)
                    .encode()
                    .to_vec();
            wire.extend_from_slice(&[0xEE; 4]);
            frames.push(Msg::from_wire(wire));
        }
        for _ in 0..self.cfg.storm_zero {
            let mut wire = Preamble::common(Cookie::from_raw(0), ByteOrder::Big)
                .encode()
                .to_vec();
            wire.extend_from_slice(b"anonymous");
            frames.push(Msg::from_wire(wire));
        }
        for _ in 0..self.cfg.storm_trunc_preamble {
            frames.push(Msg::from_wire(vec![0xAB; 5]));
        }
        // Deterministic interleave.
        let n = frames.len();
        for i in (1..n).rev() {
            frames.swap(i, (rng.next() % (i as u64 + 1)) as usize);
        }
        let before = *self.server.front_stats();
        let ledger_before = self.server.global_rejects();
        for chunk_start in (0..n).step_by(self.cfg.burst) {
            let end = (chunk_start + self.cfg.burst).min(n);
            let mut chunk: Vec<Msg> = frames.drain(..end - chunk_start).collect();
            let rep = self.server.from_network_burst(&mut chunk);
            assert_eq!(rep.routed, 0, "nothing in the storm routes");
        }
        assert_eq!(self.server.front_stats().frames - before.frames, n as u64);
        let delta = self.server.global_rejects().delta(&ledger_before);
        // Exact per-category accounting, == not >=.
        assert_eq!(
            delta.get(DropReason::UnknownCookie),
            self.cfg.storm_unknown as u64
        );
        assert_eq!(
            delta.get(DropReason::ForeignIdent),
            self.cfg.storm_foreign as u64
        );
        assert_eq!(
            delta.get(DropReason::TruncatedIdent),
            self.cfg.storm_trunc_ident as u64
        );
        assert_eq!(
            delta.get(DropReason::ZeroCookie),
            self.cfg.storm_zero as u64
        );
        assert_eq!(
            delta.get(DropReason::TruncatedPreamble),
            self.cfg.storm_trunc_preamble as u64
        );
        self.fold_domains(true);
    }

    /// Phase 7: the crowd leaves — explicit removals for a slice, idle
    /// eviction for the rest — and every handle goes stale.
    fn departure(&mut self) {
        for k in 0..self.cfg.removals.min(self.clients.len()) {
            let h = self.clients[k].handle;
            self.server
                .remove_connection(h)
                .expect("live handle removes");
            self.report.removed += 1;
        }
        self.server.set_idle_timeout(Some(TICK));
        self.clock += 1_000 * TICK;
        self.server.tick(self.clock);
        self.report.evicted = (0..self.cfg.shards)
            .map(|i| self.server.shard(i).lifecycle().evicted_idle)
            .sum();
        assert_eq!(self.server.connection_count(), 0, "the crowd left");
        // Every handle is now stale — refused and counted, never
        // misrouted.
        for k in [0usize, self.clients.len() / 2, self.clients.len() - 1] {
            assert!(self
                .server
                .try_send(self.clients[k].handle, b"late")
                .is_err());
        }
        self.fold_domains(false);
    }

    /// Final ledger audit: demux conservation, exact reject taxonomy,
    /// stale ledgers, pool flux, and the telemetry fold.
    fn audit(&mut self) {
        self.report.demux_balanced = self.server.demux_balanced();
        self.report.rejects = self.server.global_rejects();
        for i in 0..self.cfg.shards {
            self.report.per_shard_frames[i] = self.server.shard(i).frames_seen();
        }

        // The benign phases contributed zero rejects, so the global
        // taxonomy is exactly the storms: re-key replays (stale) plus
        // the five adversarial categories.
        let r = &self.report.rejects;
        self.report.rejects_reconcile = r.get(DropReason::StaleCookie)
            == self.report.rekeyed as u64
            && r.get(DropReason::UnknownCookie) == self.cfg.storm_unknown as u64
            && r.get(DropReason::ForeignIdent) == self.cfg.storm_foreign as u64
            && r.get(DropReason::TruncatedIdent) == self.cfg.storm_trunc_ident as u64
            && r.get(DropReason::ZeroCookie) == self.cfg.storm_zero as u64
            && r.get(DropReason::TruncatedPreamble) == self.cfg.storm_trunc_preamble as u64
            && r.total()
                == (self.report.rekeyed
                    + self.cfg.storm_unknown
                    + self.cfg.storm_foreign
                    + self.cfg.storm_trunc_ident
                    + self.cfg.storm_zero
                    + self.cfg.storm_trunc_preamble) as u64;

        self.report.stale_ledgers_ok =
            (0..self.cfg.shards).all(|i| self.server.shard(i).router().stale_ledger_reconciles());

        self.report.pools_ok = (0..self.cfg.shards).all(|i| {
            let s = self.server.shard_pool_stats(i);
            self.server.shard_pool_idle(i) as u64 == s.returns + s.burst_refills - s.hits - s.capped
        });

        // The telemetry fold: publish every shard domain, collect the
        // epoch-consistent snapshot, and the merged rows must equal the
        // endpoint's own ledgers — exactly, the pa-mcobs discipline.
        let snap = self.collect_snapshot();
        let stats = snap.merged_stats();
        self.report.fold_exact = stats.total("frames") == self.server.shard_frames()
            && stats.total("routed")
                == (0..self.cfg.shards)
                    .map(|i| self.server.shard(i).routed_frames())
                    .sum::<u64>()
            && stats.total("rejects")
                == (0..self.cfg.shards)
                    .map(|i| self.server.shard(i).rejects().total())
                    .sum::<u64>();
    }

    fn collect_snapshot(&mut self) -> GlobalSnapshot {
        let epoch = self.coordinator.advance();
        for d in &mut self.domains {
            d.set_now(self.clock);
            d.publish();
        }
        self.coordinator.collect(epoch)
    }

    /// Runs the whole event and returns the report.
    pub fn run(mut self) -> FlashReport {
        self.admission_storm();
        self.establish();
        self.steady_traffic();
        self.rekey_storm();
        self.adversarial_storm();
        self.departure();
        self.audit();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_flash_crowd_reconciles_end_to_end() {
        let cfg = FlashConfig::smoke();
        let report = FlashCrowd::new(cfg.clone()).run();
        assert_eq!(report.idents_preregistered, cfg.idents);
        assert_eq!(report.admitted, cfg.live);
        // The accept budget made the storm a ramp: 2000 arrivals over 8
        // shards at 64/shard/tick cannot land in one tick.
        assert!(report.admission_ticks > 1, "{report:?}");
        assert!(report.deferred > 0, "{report:?}");
        // Most establishes migrate (the cookie rarely hashes to the
        // provisional ident-placed shard): expect ≈ (1 - 1/shards).
        assert!(report.migrations as usize >= cfg.live / 2, "{report:?}");
        assert_eq!(report.rekeyed, cfg.rekeys);
        assert_eq!(report.stale_refusals, report.rekeyed as u64);
        assert_eq!(report.removed + report.evicted as usize, cfg.live);
        // Every shard carried real traffic.
        let (max, min) = report.shard_spread();
        assert!(min > 0, "no idle shards: {:?}", report.per_shard_frames);
        assert!(max < report.steady_frames, "no single-shard hotspots");
        assert!(report.demux_balanced, "{report:?}");
        assert!(report.rejects_reconcile, "{report:?}");
        assert!(report.stale_ledgers_ok, "{report:?}");
        assert!(report.pools_ok, "{report:?}");
        assert!(report.fold_exact, "{report:?}");
        assert!(report.reconciles());
    }
}
