//! One simulated host: a real PA connection plus a virtual CPU.
//!
//! The connection is the genuine [`pa_core::Connection`] — the engine
//! decides fast versus slow paths, packs backlogs, drains posts. The
//! node's job is to *price* what the engine did: it snapshots the
//! connection's counters around each operation and charges the cost
//! model for the difference, advancing a per-node `cpu_free_at` clock.
//! Frames leave for the network at the moment the CPU finishes the
//! operation that produced them.

use crate::cost::CostModel;
use crate::gc::GcModel;
use crate::Nanos;
use pa_buf::Msg;
use pa_core::{ConnStats, Connection, DeliverOutcome, SendOutcome};
use pa_obs::{HistoSummary, LatencyHisto, XrayReport};
use pa_unet::Netif;
use pa_wire::EndpointAddr;

/// When deferred post-processing gets scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostSchedule {
    /// Only after a delivery completes — §5: "post-processing and
    /// garbage collection are scheduled to occur after message
    /// deliveries" (because on U-Net they take longer than a round
    /// trip). Pure senders must combine this with explicit idle calls.
    AfterDelivery,
    /// After any operation that leaves work pending (right for
    /// streaming senders and slower networks — §5's Ethernet remark).
    WhenIdle,
}

/// Events a node reports for the Figure 4 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// Application invoked send (time = completion of the send op).
    Send(SendOutcome),
    /// A frame was handed to the network.
    WireOut,
    /// Application messages were delivered.
    Deliver(usize),
    /// Deferred post-processing finished.
    PostDone,
    /// A garbage collection finished.
    GcDone,
}

/// A timestamped node event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Completion time of the event.
    pub at: Nanos,
    /// What happened.
    pub event: NodeEvent,
}

/// One simulated host.
pub struct NodeSim {
    /// The real protocol engine.
    pub conn: Connection,
    /// The cost model pricing its operations.
    pub cost: CostModel,
    /// The GC model (reception-triggered).
    pub gc: GcModel,
    /// Post-processing scheduling policy.
    pub schedule: PostSchedule,
    /// Time the virtual CPU becomes free.
    pub cpu_free_at: Nanos,
    /// Scheduled post-processing wake-up, if any.
    pub wakeup_at: Option<Nanos>,
    /// Receptions whose GC trigger hasn't been charged yet.
    gc_due: u32,
    /// Event log (drained by the sim's timeline).
    pub log: Vec<Stamp>,
    /// Whether to record events (disable for long sweeps).
    pub record_log: bool,
    /// Total CPU time charged.
    pub cpu_busy: Nanos,
    /// Fast- vs slow-path cost distributions (always on: recording is
    /// one `leading_zeros` + adds, negligible next to the sim itself).
    pub histos: PathHistos,
}

/// Per-path latency histograms of *priced operation costs*: how long the
/// virtual CPU was busy executing each send or deliver, keyed by the path
/// the engine actually took. These are the Figure-4 distributions — fast
/// sends should cluster tightly around the paper's ~25 µs while slow
/// sends spread out with layer depth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathHistos {
    /// Cost of operations whose send took the fast path.
    pub fast_send: LatencyHisto,
    /// Cost of operations whose send went through pre-processing.
    pub slow_send: LatencyHisto,
    /// Cost of operations whose delivery took the fast path.
    pub fast_deliver: LatencyHisto,
    /// Cost of operations whose delivery went through pre-processing.
    pub slow_deliver: LatencyHisto,
}

impl PathHistos {
    /// Classifies one priced operation by the counter movement it caused
    /// and records its cost into the matching histogram(s). Operations
    /// that moved several counters at once (backlog drains) are skipped:
    /// their cost is not attributable to one path.
    fn observe(&mut self, before: &ConnStats, after: &ConnStats, cost: Nanos) {
        let d = |f: fn(&ConnStats) -> u64| f(after) - f(before);
        match (d(|s| s.fast_sends), d(|s| s.slow_sends)) {
            (1, 0) => self.fast_send.record(cost),
            (0, 1) => self.slow_send.record(cost),
            _ => {}
        }
        match (d(|s| s.fast_deliveries), d(|s| s.slow_deliveries)) {
            (1, 0) => self.fast_deliver.record(cost),
            (0, 1) => self.slow_deliver.record(cost),
            _ => {}
        }
    }

    /// Folds another node's histograms into this one.
    pub fn merge(&mut self, other: &PathHistos) {
        self.fast_send.merge(&other.fast_send);
        self.slow_send.merge(&other.slow_send);
        self.fast_deliver.merge(&other.fast_deliver);
        self.slow_deliver.merge(&other.slow_deliver);
    }

    /// `(label, summary)` for each non-empty histogram, in path order.
    pub fn summaries(&self) -> Vec<(&'static str, HistoSummary)> {
        [
            ("fast_send", &self.fast_send),
            ("slow_send", &self.slow_send),
            ("fast_deliver", &self.fast_deliver),
            ("slow_deliver", &self.slow_deliver),
        ]
        .into_iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|(name, h)| (name, h.summary()))
        .collect()
    }
}

/// Prices the counter movement between two stats snapshots under a
/// cost model (shared by [`NodeSim`] and the multi-connection server).
pub fn price_delta(cost: &CostModel, before: &ConnStats, after: &ConnStats) -> Nanos {
    let d = |f: fn(&ConnStats) -> u64| f(after) - f(before);
    let mut ns = 0;
    ns += d(|s| s.fast_sends) * cost.fast_send();
    ns += d(|s| s.slow_sends) * cost.slow_send();
    ns += d(|s| s.queued_sends) * cost.backlog_push;
    ns += d(|s| s.fast_deliveries) * cost.fast_deliver();
    ns += d(|s| s.slow_deliveries) * cost.slow_deliver();
    ns += d(|s| s.post_sends) * cost.post_send_frame();
    ns += d(|s| s.post_delivers) * cost.post_deliver_frame();
    ns += d(|s| s.packed_msgs) * cost.pack_per_msg;
    ns += d(|s| s.control_msgs) * cost.control_send();
    // Unpacking: per delivered message beyond one per frame.
    let frames = d(|s| s.fast_deliveries) + d(|s| s.slow_deliveries);
    let msgs = d(|s| s.msgs_delivered);
    ns += msgs.saturating_sub(frames) * cost.unpack_per_msg;
    ns
}

impl NodeSim {
    /// Wraps a connection with its models.
    pub fn new(conn: Connection, cost: CostModel, gc: GcModel, schedule: PostSchedule) -> NodeSim {
        NodeSim {
            conn,
            cost,
            gc,
            schedule,
            cpu_free_at: 0,
            wakeup_at: None,
            gc_due: 0,
            log: Vec::new(),
            record_log: true,
            cpu_busy: 0,
            histos: PathHistos::default(),
        }
    }

    /// A *priced* xray report for this node: the connection's
    /// attribution, forensics, and phase-invocation counts, with every
    /// phase row priced by this node's cost model (so the table shows
    /// the paper's per-layer critical-path breakdown in virtual
    /// nanoseconds), plus a virtual-CPU note.
    pub fn xray_report(&self) -> XrayReport {
        let mut r = self.conn.xray_report();
        self.cost.price_report(&mut r);
        r.at = self.cpu_free_at;
        r.notes.push(format!(
            "virtual cpu: busy {} ns, free at {} ns",
            self.cpu_busy, self.cpu_free_at
        ));
        r
    }

    fn run_op<R>(&mut self, t: Nanos, op: impl FnOnce(&mut Connection) -> R) -> (Nanos, R) {
        let start = t.max(self.cpu_free_at);
        self.conn.set_now(start);
        let before = *self.conn.stats();
        let r = op(&mut self.conn);
        let after = *self.conn.stats();
        let cost = price_delta(&self.cost, &before, &after);
        self.histos.observe(&before, &after, cost);
        self.cpu_busy += cost;
        self.cpu_free_at = start + cost;
        (self.cpu_free_at, r)
    }

    fn flush_frames(&mut self, net: &mut dyn Netif, local: EndpointAddr) {
        let peer = self.conn.peer_addr();
        let at = self.cpu_free_at;
        let mut any = false;
        while let Some(frame) = self.conn.poll_transmit() {
            net.send(local, peer, frame, at);
            any = true;
        }
        if any && self.record_log {
            self.log.push(Stamp {
                at,
                event: NodeEvent::WireOut,
            });
        }
    }

    fn maybe_schedule_wakeup(&mut self, after_delivery: bool) {
        let due = match self.schedule {
            PostSchedule::AfterDelivery => after_delivery,
            PostSchedule::WhenIdle => true,
        };
        // A backlog blocked behind a disabled predicted header cannot
        // be drained by a wake-up — only an acknowledgement can reopen
        // the window — so it must not keep a wake-up armed (that would
        // spin the simulator at one instant in virtual time).
        let drainable_backlog =
            self.conn.backlog_len() > 0 && self.conn.send_prediction().enabled();
        if due
            && (self.conn.has_pending() || drainable_backlog || self.gc_due > 0)
            && self.wakeup_at.is_none()
        {
            self.wakeup_at = Some(self.cpu_free_at);
        }
    }

    /// Hands a consumed delivery buffer back to the connection's
    /// message pool (§6 explicit recycling). The simulated application
    /// calls this once it is done with a message so the steady state
    /// allocates nothing. Free in virtual time: recycling is bookwork
    /// the real PA does on the host's dime, not protocol processing.
    pub fn recycle(&mut self, msg: Msg) {
        self.conn.recycle(msg);
    }

    /// Application send at time `t`. Returns completion time.
    pub fn app_send(
        &mut self,
        t: Nanos,
        payload: &[u8],
        net: &mut dyn Netif,
        local: EndpointAddr,
    ) -> (Nanos, SendOutcome) {
        let (done, outcome) = self.run_op(t, |c| c.send(payload));
        if self.record_log {
            self.log.push(Stamp {
                at: done,
                event: NodeEvent::Send(outcome),
            });
        }
        self.flush_frames(net, local);
        self.maybe_schedule_wakeup(false);
        (done, outcome)
    }

    /// A frame arrived at time `t`. Returns completion time and the
    /// payloads delivered to the application.
    pub fn on_frame(
        &mut self,
        t: Nanos,
        frame: Msg,
        net: &mut dyn Netif,
        local: EndpointAddr,
    ) -> (Nanos, Vec<Msg>) {
        let (done, outcome) = self.run_op(t, |c| c.deliver_frame(frame));
        let mut delivered = Vec::new();
        while let Some(m) = self.conn.poll_delivery() {
            delivered.push(m);
        }
        if matches!(
            outcome,
            DeliverOutcome::Fast { .. } | DeliverOutcome::Slow { .. }
        ) {
            self.gc_due += 1;
            if self.record_log {
                self.log.push(Stamp {
                    at: done,
                    event: NodeEvent::Deliver(delivered.len()),
                });
            }
        }
        self.flush_frames(net, local);
        self.maybe_schedule_wakeup(true);
        (done, delivered)
    }

    /// Runs the deferred post-processing (and any due GC) at `t`.
    /// Returns the completion time and any application messages the
    /// backlog drain released (a drain re-runs queued receive frames,
    /// so deliveries can surface here, not just in [`Self::on_frame`]).
    pub fn run_wakeup(
        &mut self,
        t: Nanos,
        net: &mut dyn Netif,
        local: EndpointAddr,
    ) -> (Nanos, Vec<Msg>) {
        self.wakeup_at = None;
        let (mut done, _report) = self.run_op(t, |c| c.process_pending());
        let mut delivered = Vec::new();
        while let Some(m) = self.conn.poll_delivery() {
            delivered.push(m);
        }
        if self.record_log && !delivered.is_empty() {
            self.log.push(Stamp {
                at: done,
                event: NodeEvent::Deliver(delivered.len()),
            });
        }
        if self.record_log {
            self.log.push(Stamp {
                at: done,
                event: NodeEvent::PostDone,
            });
        }
        self.flush_frames(net, local);
        // GC triggers owed for receptions processed up to now (§5:
        // "triggered garbage collection after every message reception").
        let due = std::mem::take(&mut self.gc_due);
        for _ in 0..due {
            if let Some(pause) = self.gc.on_reception() {
                self.cpu_free_at += pause;
                self.cpu_busy += pause;
                done = self.cpu_free_at;
                if self.record_log {
                    self.log.push(Stamp {
                        at: done,
                        event: NodeEvent::GcDone,
                    });
                }
            }
        }
        // More work may have appeared (backlog drains leave fresh
        // post-send items).
        self.maybe_schedule_wakeup(true);
        (done, delivered)
    }

    /// Timer tick (retransmissions).
    pub fn tick(&mut self, t: Nanos, net: &mut dyn Netif, local: EndpointAddr) {
        let (_done, ()) = self.run_op(t, |c| c.tick(t));
        self.flush_frames(net, local);
        self.maybe_schedule_wakeup(false);
    }

    /// Our address.
    pub fn addr(&self) -> EndpointAddr {
        self.conn.local_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::GcPolicy;
    use pa_core::{ConnectionParams, PaConfig};
    use pa_stack::StackSpec;
    use pa_unet::{LoopbackNet, SimNet};

    fn node(addr: u64, peer: u64, schedule: PostSchedule) -> NodeSim {
        let spec = StackSpec::paper();
        let conn = Connection::new(
            spec.build(),
            PaConfig::paper_default(),
            ConnectionParams::new(
                EndpointAddr::from_parts(addr, 1),
                EndpointAddr::from_parts(peer, 1),
                addr,
            ),
        )
        .unwrap();
        let names: Vec<String> = spec.build().iter().map(|l| l.name().to_string()).collect();
        NodeSim::new(
            conn,
            CostModel::paper_ml(names),
            GcModel::paper(GcPolicy::EveryReception, addr),
            schedule,
        )
    }

    #[test]
    fn fast_send_costs_25us() {
        let mut n = node(1, 2, PostSchedule::AfterDelivery);
        let mut net = LoopbackNet::new();
        let (done, outcome) = n.app_send(1000, &[1u8; 8], &mut net, n.addr());
        assert_eq!(outcome, SendOutcome::FastPath);
        assert_eq!(done, 1000 + 25_000, "the paper's ~25 µs to U-Net handoff");
        assert_eq!(net.in_flight(), 1);
        assert_eq!(n.wakeup_at, None, "post deferred until a delivery");
    }

    #[test]
    fn busy_cpu_delays_the_operation() {
        let mut n = node(1, 2, PostSchedule::AfterDelivery);
        let mut net = LoopbackNet::new();
        n.cpu_free_at = 50_000;
        let (done, _) = n.app_send(1000, &[1u8; 8], &mut net, n.addr());
        assert_eq!(done, 50_000 + 25_000);
    }

    #[test]
    fn one_way_delivery_costs_25us_and_schedules_posts() {
        let mut a = node(1, 2, PostSchedule::AfterDelivery);
        let mut b = node(2, 1, PostSchedule::AfterDelivery);
        let mut net = SimNet::atm();
        a.app_send(0, &[7u8; 8], &mut net, a.addr());
        let arr = net.poll_arrival(u64::MAX).unwrap();
        let (done, delivered) = b.on_frame(arr.at, arr.frame, &mut net, b.addr());
        assert_eq!(delivered.len(), 1);
        assert_eq!(done - arr.at, 25_000);
        assert!(b.wakeup_at.is_some(), "posts scheduled after delivery");
        // Table 4's one-way: 25 (send) + 35+ (wire) + 25 (deliver).
        assert!(done >= 85_000, "one-way ≈ 85 µs, got {done}");
    }

    #[test]
    fn wakeup_charges_posts_and_gc() {
        let mut a = node(1, 2, PostSchedule::AfterDelivery);
        let mut b = node(2, 1, PostSchedule::AfterDelivery);
        let mut net = SimNet::atm();
        a.app_send(0, &[7u8; 8], &mut net, a.addr());
        let arr = net.poll_arrival(u64::MAX).unwrap();
        let (done, _) = b.on_frame(arr.at, arr.frame, &mut net, b.addr());
        let wake = b.wakeup_at.unwrap();
        let (after, _) = b.run_wakeup(wake, &mut net, b.addr());
        // post-deliver 50 µs + one GC pause 150–450 µs. (No post-send:
        // b hasn't sent.) Control-msg acks may add a little.
        let cost = after - done;
        assert!((200_000..=600_000).contains(&cost), "wakeup cost {cost}");
        assert_eq!(b.gc.collections(), 1);
    }

    #[test]
    fn when_idle_schedule_wakes_after_send() {
        let mut n = node(1, 2, PostSchedule::WhenIdle);
        let mut net = LoopbackNet::new();
        n.app_send(0, &[1u8; 8], &mut net, n.addr());
        assert!(n.wakeup_at.is_some());
        let wake = n.wakeup_at.unwrap();
        let (done, _) = n.run_wakeup(wake, &mut net, n.addr());
        // post-send of the 4-layer stack = 80 µs.
        assert_eq!(done - wake, 80_000);
    }

    #[test]
    fn path_histograms_price_fast_and_slow_ops() {
        let mut a = node(1, 2, PostSchedule::AfterDelivery);
        let mut b = node(2, 1, PostSchedule::AfterDelivery);
        let mut net = SimNet::atm();
        a.app_send(0, &[7u8; 8], &mut net, a.addr());
        let arr = net.poll_arrival(u64::MAX).unwrap();
        b.on_frame(arr.at, arr.frame, &mut net, b.addr());
        assert_eq!(a.histos.fast_send.count(), 1);
        assert_eq!(a.histos.fast_send.max(), 25_000, "the ~25 µs fast send");
        // Predictions are primed at stack-initialization time, so even
        // the first delivery takes the fast path.
        assert_eq!(b.histos.fast_deliver.count(), 1);
        assert_eq!(b.histos.fast_deliver.max(), 25_000);
        assert!(b.histos.slow_deliver.is_empty());
        // Merge folds both nodes into one distribution set.
        let mut all = PathHistos::default();
        all.merge(&a.histos);
        all.merge(&b.histos);
        assert_eq!(all.fast_send.count(), 1);
        assert_eq!(all.fast_deliver.count(), 1);
        let labels: Vec<&str> = all.summaries().iter().map(|(n, _)| *n).collect();
        assert_eq!(labels, ["fast_send", "fast_deliver"], "empty paths omitted");
    }

    #[test]
    fn cpu_busy_accumulates() {
        let mut n = node(1, 2, PostSchedule::WhenIdle);
        let mut net = LoopbackNet::new();
        n.app_send(0, &[1u8; 8], &mut net, n.addr());
        let w = n.wakeup_at.unwrap();
        n.run_wakeup(w, &mut net, n.addr());
        assert_eq!(n.cpu_busy, 25_000 + 80_000);
    }
}
