//! Virtual-time simulation of the paper's evaluation environment.
//!
//! The paper measures the PA on two SPARCstation-20s under SunOS 4.1.3
//! over U-Net/ATM, with the protocol stack in O'Caml. None of that
//! hardware exists on this side of three decades, so the evaluation is
//! reproduced under a **calibrated cost model** in virtual time:
//!
//! - [`cost::CostModel`] — CPU costs of every PA/stack operation,
//!   calibrated to §5's measurements (25 µs fast send/deliver, 80 µs
//!   post-send, 50 µs post-deliver for the four-layer stack, +15 µs per
//!   extra window layer),
//! - [`gc::GcModel`] — the O'Caml stop-and-collect pauses (150–450 µs,
//!   ~300 µs mean) under selectable policies (§5 triggers a collection
//!   after every message reception; §6 discusses occasional collection
//!   and explicit pools),
//! - [`node::NodeSim`] — one host: a real [`pa_core::Connection`] (the
//!   actual engine decides fast/slow paths; nothing about behaviour is
//!   simulated) plus a virtual CPU that charges model costs,
//! - [`sim::TwoNodeSim`] — two nodes over a [`pa_unet::SimNet`], with
//!   an event queue, application behaviours (ping-pong, streaming), and
//!   a timeline recorder for Figure 4,
//! - [`experiments`] — one driver per table/figure; see EXPERIMENTS.md.
//!
//! The point of this design: the *protocol* is real (every frame runs
//! through the same engine the unit tests exercise), only *time* is
//! modeled. Who takes which path is decided by the actual code paths;
//! the cost model only prices them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cost;
pub mod drain;
pub mod experiments;
pub mod flash;
pub mod gc;
pub mod metrics;
pub mod multi;
pub mod node;
pub mod pipeline;
pub mod sim;

pub use churn::{ChurnConfig, ChurnSim};
pub use cost::{CostModel, Language};
pub use drain::{
    inline_echo_frames, DrainJob, DrainedConn, PostDrainWorker, ThreadedEcho, ThreadedEchoConfig,
    ThreadedEchoReport,
};
pub use flash::{FlashConfig, FlashCrowd, FlashReport};
pub use gc::{GcModel, GcPolicy};
pub use metrics::{Series, Summary};
pub use multi::ClusterSim;
pub use node::NodeSim;
pub use node::{NodeEvent, PathHistos, PostSchedule};
pub use pipeline::{per_packet_reference, BurstPipeline, PipelineConfig, PipelineReport};
pub use sim::{AppBehavior, SimConfig, TimelineEvent, TwoNodeSim};

/// Virtual time in nanoseconds.
pub type Nanos = u64;
