//! pa-pipeline: the batched wire + pipelined pre/post engine.
//!
//! PR 8 made the §3.1 mask *spatial* one connection at a time: post
//! phases run on a [`PostDrainWorker`] thread while the application
//! thread keeps sending. This module makes it a *pipeline over bursts*:
//! the application thread runs pre phases + fused filters inline over a
//! whole burst of messages (pool refill, queue drains and telemetry
//! flushes amortized once per burst), then hands the connection's post
//! phases to the drain thread and immediately starts the *other*
//! endpoint's pre work — so round `r`'s post phases overlap round `r`'s
//! remaining pre phases in wall-clock time.
//!
//! The contract that keeps this honest:
//!
//! - **burst=1 is the seed engine.** Every burst entry point runs the
//!   identical per-message inner logic in a loop, so a
//!   [`BurstPipeline`] at burst 1 with inline posts produces the same
//!   wire bytes and the same counters as a hand-written per-packet
//!   loop ([`per_packet_reference`] pins this).
//! - **refuse, don't block.** A full drain pipeline hands the
//!   connection back and the posts run inline, bracketed into the
//!   application domain ([`PipelineReport::inline_fallbacks`] counts
//!   them) — backpressure, never loss.
//! - **ledgers conserve across the burst boundary.** Each thread folds
//!   `current − checkpoint` meter deltas into its own
//!   [`TelemetryDomain`] exactly as in PR 8; bursting only changes how
//!   *often* the brackets close (once per burst, not once per
//!   message), not what they sum to, so the merged masking ledger
//!   still conserves by exact `==`.

use crate::cost::CostModel;
use crate::drain::{seal_ledger, PostDrainWorker};
use crate::Nanos;
use pa_buf::Msg;
use pa_core::{ConnStats, Connection, ConnectionParams, PaConfig, SendOutcome};
use pa_obs::domain::{DomainCounter, TelemetryDomain};
use pa_obs::{
    GlobalSnapshot, JourneySet, PhaseMeter, ProbeSink, SketchConfig, SnapshotCoordinator, TraceRing,
};
use pa_stack::StackSpec;
use pa_wire::EndpointAddr;
use std::collections::VecDeque;
use std::time::Instant;

/// Configuration of a [`BurstPipeline`] run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Burst rounds to run (each round offers `burst` payloads).
    pub rounds: u64,
    /// Messages offered per round. 1 = the seed per-packet engine.
    pub burst: usize,
    /// Post phases on the drain thread (`true`) or inline (`false`).
    pub threaded_post: bool,
    /// Bracket and fold meter/stat deltas into telemetry domains. Off
    /// for pure-throughput benchmarking of the engine alone.
    pub telemetry: bool,
    /// Capture every wire frame (the golden-bytes image). Costly;
    /// identity tests only.
    pub capture_frames: bool,
    /// Stamp wall-clock offer→completion latencies per message.
    pub measure_wall: bool,
    /// Drain-pipeline depth before `submit` refuses.
    pub worker_capacity: usize,
    /// PA configuration for both endpoints.
    pub pa: PaConfig,
    /// Stack on both endpoints.
    pub stack: StackSpec,
    /// Attach trace rings (journeys need `pa.trace_ctx` too).
    pub trace: bool,
    /// Trace-ring capacity per endpoint.
    pub ring_capacity: usize,
    /// Virtual ns per round.
    pub round_ns: Nanos,
    /// Payload bytes per message.
    pub payload_len: usize,
}

impl PipelineConfig {
    /// The default batched run: posts on the drain thread, telemetry
    /// on, no frame capture.
    pub fn batched(rounds: u64, burst: usize) -> PipelineConfig {
        PipelineConfig {
            rounds,
            burst,
            threaded_post: true,
            telemetry: true,
            capture_frames: false,
            measure_wall: false,
            worker_capacity: 4,
            pa: PaConfig::paper_default(),
            stack: StackSpec::paper(),
            trace: false,
            ring_capacity: 0,
            round_ns: 200_000,
            payload_len: 32,
        }
    }

    /// The seed reference arm: burst 1, posts inline — the engine
    /// exactly as every pre-PR-9 harness drives it.
    pub fn per_packet(rounds: u64) -> PipelineConfig {
        PipelineConfig {
            threaded_post: false,
            ..PipelineConfig::batched(rounds, 1)
        }
    }

    /// A traced batched run (journeys on).
    pub fn traced(rounds: u64, burst: usize) -> PipelineConfig {
        PipelineConfig {
            pa: PaConfig {
                trace_ctx: true,
                ..PaConfig::paper_default()
            },
            trace: true,
            ring_capacity: 1 << 15,
            ..PipelineConfig::batched(rounds, burst)
        }
    }

    /// A benchmarking arm: telemetry and capture off, wall-clock
    /// latencies on.
    pub fn bench(rounds: u64, burst: usize, threaded_post: bool) -> PipelineConfig {
        PipelineConfig {
            threaded_post,
            telemetry: false,
            measure_wall: true,
            ..PipelineConfig::batched(rounds, burst)
        }
    }
}

/// What a [`BurstPipeline`] run produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// The epoch-consistent merged snapshot.
    pub snapshot: GlobalSnapshot,
    /// Journeys stitched from both endpoints' trace rings (empty when
    /// tracing was off).
    pub journeys: JourneySet,
    /// Every wire frame in transmit order (`(sender, bytes)`; sender
    /// 0 = requester, 1 = echoer). Empty unless `capture_frames`.
    pub frames: Vec<(u32, Vec<u8>)>,
    /// Payload messages offered by the requester.
    pub offered: u64,
    /// Echo replies delivered back to the requester.
    pub completed: u64,
    /// Messages echoed by the responder.
    pub echoed: u64,
    /// Frames dropped by either endpoint's demux/stack.
    pub dropped: u64,
    /// Requester sends that took the fast path.
    pub fast_sends: u64,
    /// Requester sends parked in the backlog (packed on drain, §3.4).
    pub queued_sends: u64,
    /// Post drains that ran inline because the drain pipeline refused.
    pub inline_fallbacks: u64,
    /// Burst rounds completed.
    pub rounds: u64,
    /// Wire bursts flushed (both directions).
    pub bursts: u64,
    /// Frames carried by those bursts.
    pub burst_frames: u64,
    /// Wall-clock offer→completion ns per message (only when
    /// `measure_wall`; in completion order).
    pub latencies_ns: Vec<u64>,
    /// Requester connection counters at teardown.
    pub stats_a: ConnStats,
    /// Echoer connection counters at teardown.
    pub stats_b: ConnStats,
    /// The cost model that priced the ledgers.
    pub cost: CostModel,
}

impl PipelineReport {
    /// True if the merged masking ledger conserves exactly — calls and
    /// ns `==` — against the merged phase table. Meaningful only for
    /// runs with `telemetry` on.
    pub fn conserves(&self) -> bool {
        match self.snapshot.merged_ledger() {
            Some(ml) => {
                let rows = self.snapshot.phase_rows(|l, p| self.cost.phase_cost(l, p));
                ml.conserves(&rows)
            }
            None => false,
        }
    }

    /// Achieved frames per wire flush (the batching the engine actually
    /// saw, as opposed to the configured burst).
    pub fn batching_factor(&self) -> f64 {
        if self.bursts == 0 {
            return 0.0;
        }
        self.burst_frames as f64 / self.bursts as f64
    }

    /// The p-quantile of the wall-clock latencies (`0.0..=1.0`), in ns.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    A,
    B,
}

/// An echo pair driven burst-at-a-time: pre phases inline over whole
/// bursts, post phases pipelined onto the PR 8 drain thread.
///
/// Call [`BurstPipeline::step`] once per round (benchmarks time exactly
/// this) and [`BurstPipeline::finish`] to quiesce, seal the ledgers and
/// collect the merged report.
#[derive(Debug)]
pub struct BurstPipeline {
    cfg: PipelineConfig,
    cost: CostModel,
    coord: SnapshotCoordinator,
    app: TelemetryDomain,
    worker: Option<PostDrainWorker>,
    a: Option<Box<Connection>>,
    b: Option<Box<Connection>>,
    a_seq: Option<u64>,
    b_seq: Option<u64>,
    // Reusable bracketing scratch (the app-thread side of the PR 8
    // discipline, minus the per-call allocations).
    names: Vec<&'static str>,
    meters_before: Vec<PhaseMeter>,
    stats_before: ConnStats,
    // Reusable burst scratch: frames in flight and delivered messages.
    wire: Vec<Msg>,
    msgs: Vec<Msg>,
    payload: Vec<u8>,
    offered_at: VecDeque<Instant>,
    latencies_ns: Vec<u64>,
    frames: Vec<(u32, Vec<u8>)>,
    offered: u64,
    completed: u64,
    echoed: u64,
    dropped: u64,
    fast_sends: u64,
    queued_sends: u64,
    inline_fallbacks: u64,
    bursts: u64,
    burst_frames: u64,
    rounds_done: u64,
    now: Nanos,
}

fn connect(
    cfg: &PipelineConfig,
    local: u64,
    peer: u64,
    seed: u64,
    ring_conn: u32,
) -> Box<Connection> {
    let mut conn = Box::new(
        Connection::new(
            cfg.stack.build(),
            cfg.pa,
            ConnectionParams::new(
                EndpointAddr::from_parts(local, 7),
                EndpointAddr::from_parts(peer, 7),
                seed,
            ),
        )
        .expect("pipeline stack must compile"),
    );
    if cfg.trace {
        let mut probe = ProbeSink::ring(cfg.ring_capacity);
        if let Some(r) = probe.trace_ring_mut() {
            r.set_conn(ring_conn);
        }
        conn.set_probe(probe);
    }
    conn
}

impl BurstPipeline {
    /// Builds the echo pair (requester `a`, echoer `b`), the telemetry
    /// domains and — when `threaded_post` — the drain worker.
    pub fn new(cfg: PipelineConfig) -> BurstPipeline {
        let layer_names: Vec<String> = cfg
            .stack
            .build()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        let cost = CostModel::paper_ml(layer_names);
        let mut coord = SnapshotCoordinator::new(SketchConfig::default_scope());
        let app = coord.domain("app");
        let worker = if cfg.threaded_post {
            let drain_domain = coord.domain("drain");
            Some(PostDrainWorker::spawn(
                drain_domain,
                cost.clone(),
                cfg.worker_capacity,
            ))
        } else {
            None
        };
        let a = connect(&cfg, 1, 2, 0xEC_0A, 1);
        let b = connect(&cfg, 2, 1, 0xEC_0B, 2);
        let expect = (cfg.rounds as usize).saturating_mul(cfg.burst);
        let payload: Vec<u8> = (0..cfg.payload_len).map(|i| i as u8).collect();
        BurstPipeline {
            cost,
            coord,
            app,
            worker,
            a: Some(a),
            b: Some(b),
            a_seq: None,
            b_seq: None,
            names: Vec::new(),
            meters_before: Vec::new(),
            stats_before: ConnStats::default(),
            wire: Vec::with_capacity(cfg.burst.max(1) * 2),
            msgs: Vec::with_capacity(cfg.burst.max(1) * 2),
            payload,
            offered_at: VecDeque::with_capacity(if cfg.measure_wall {
                expect.min(1 << 20)
            } else {
                0
            }),
            latencies_ns: Vec::with_capacity(if cfg.measure_wall {
                expect.min(1 << 20)
            } else {
                0
            }),
            frames: Vec::new(),
            offered: 0,
            completed: 0,
            echoed: 0,
            dropped: 0,
            fast_sends: 0,
            queued_sends: 0,
            inline_fallbacks: 0,
            bursts: 0,
            burst_frames: 0,
            rounds_done: 0,
            now: 0,
            cfg,
        }
    }

    fn bracket(&mut self, conn: &Connection) {
        if !self.cfg.telemetry {
            return;
        }
        self.meters_before.clear();
        self.meters_before.extend_from_slice(conn.phase_meters());
        if self.names.len() != self.meters_before.len() {
            self.names = conn.layer_names();
        }
        self.stats_before = *conn.stats();
    }

    fn fold(&mut self, conn: &Connection) {
        if !self.cfg.telemetry {
            return;
        }
        for (i, m) in conn.phase_meters().iter().enumerate() {
            self.app
                .absorb_meter(self.names[i], &m.delta_since(&self.meters_before[i]));
        }
        for (name, v) in conn.stats().delta(&self.stats_before).fields() {
            self.app.add_stat("conn", name, v);
        }
    }

    /// Post phases for `conn`: ship to the drain thread, or — when the
    /// pipeline refuses or `threaded_post` is off — run inline,
    /// bracketed into the application domain.
    fn dispatch(&mut self, conn: Box<Connection>, now: Nanos, side: Side) {
        let mut conn = if let (true, Some(worker)) = (self.cfg.threaded_post, self.worker.as_mut())
        {
            match worker.submit(&mut self.app, conn, now) {
                Ok(seq) => {
                    match side {
                        Side::A => self.a_seq = Some(seq),
                        Side::B => self.b_seq = Some(seq),
                    }
                    return;
                }
                Err(conn) => {
                    self.inline_fallbacks += 1;
                    conn
                }
            }
        } else {
            conn
        };
        self.bracket(&conn);
        conn.set_now(now);
        conn.process_pending();
        self.fold(&conn);
        match side {
            Side::A => self.a = Some(conn),
            Side::B => self.b = Some(conn),
        }
    }

    /// Waits until `side`'s connection is back in hand (drained
    /// connections can come back in either order; route by sequence
    /// number).
    fn ensure(&mut self, side: Side) {
        loop {
            let have = match side {
                Side::A => self.a.is_some(),
                Side::B => self.b.is_some(),
            };
            if have {
                return;
            }
            let worker = self
                .worker
                .as_mut()
                .expect("conn must be in the drain pipeline");
            let d = worker.recv().expect("worker returns every connection");
            if self.a_seq == Some(d.seq) {
                self.a_seq = None;
                self.a = Some(d.conn);
            } else if self.b_seq == Some(d.seq) {
                self.b_seq = None;
                self.b = Some(d.conn);
            } else {
                unreachable!("drained conn with unknown handoff seq");
            }
        }
    }

    fn capture(&mut self, sender: u32) {
        if !self.cfg.capture_frames {
            return;
        }
        for f in &self.wire {
            self.frames.push((sender, f.as_slice().to_vec()));
        }
    }

    fn note_burst(&mut self, n: usize) {
        self.bursts += 1;
        self.burst_frames += n as u64;
        if self.cfg.telemetry {
            self.app.bump(DomainCounter::Bursts);
            self.app.add(DomainCounter::BurstFrames, n as u64);
        }
    }

    /// One burst round. The steady state allocates nothing: scratch
    /// vectors, bracketing buffers and the drain rings are all reused.
    ///
    /// Within the round, posts overlap the other endpoint's pre work:
    /// the requester's post drain runs while the echoer delivers and
    /// echoes, and the echoer's drain runs while the requester takes
    /// its replies.
    pub fn step(&mut self) {
        let k = self.cfg.burst.max(1);
        let now = (self.rounds_done + 1) * self.cfg.round_ns;
        self.now = now;
        if self.cfg.telemetry {
            self.app.set_now(now);
        }

        // --- requester pre: offer a burst, flush it to the wire.
        self.ensure(Side::A);
        let mut a = self.a.take().expect("ensured");
        self.bracket(&a);
        a.set_now(now);
        a.prepare_burst(k);
        for _ in 0..k {
            if self.cfg.measure_wall {
                self.offered_at.push_back(Instant::now());
            }
            match a.send(&self.payload) {
                SendOutcome::FastPath => self.fast_sends += 1,
                SendOutcome::Queued => self.queued_sends += 1,
                _ => {}
            }
            self.offered += 1;
        }
        self.fold(&a);
        let n = a.poll_transmit_burst(usize::MAX, &mut self.wire);
        self.capture(0);
        self.note_burst(n);
        self.dispatch(a, now, Side::A); // posts overlap the echoer's pre work

        // --- echoer pre: deliver the burst, echo every message.
        self.ensure(Side::B);
        let mut b = self.b.take().expect("ensured");
        self.bracket(&b);
        b.set_now(now);
        let rep = b.deliver_burst(&mut self.wire);
        self.dropped += rep.dropped as u64;
        let got = b.poll_delivery_burst(usize::MAX, &mut self.msgs);
        b.prepare_burst(got);
        for m in self.msgs.drain(..) {
            b.send(m.as_slice());
            self.echoed += 1;
            b.recycle(m);
        }
        self.fold(&b);
        let n = b.poll_transmit_burst(usize::MAX, &mut self.wire);
        self.capture(1);
        self.note_burst(n);
        self.dispatch(b, now + 1, Side::B); // posts overlap the reply leg

        // --- requester: take the replies.
        let mid = now + self.cfg.round_ns / 2;
        if self.cfg.telemetry {
            self.app.set_now(mid);
        }
        self.ensure(Side::A);
        let mut a = self.a.take().expect("ensured");
        self.bracket(&a);
        a.set_now(mid);
        let rep = a.deliver_burst(&mut self.wire);
        self.dropped += rep.dropped as u64;
        a.poll_delivery_burst(usize::MAX, &mut self.msgs);
        for m in self.msgs.drain(..) {
            if self.cfg.measure_wall {
                if let Some(t) = self.offered_at.pop_front() {
                    self.latencies_ns.push(t.elapsed().as_nanos() as u64);
                }
            }
            self.completed += 1;
            a.recycle(m);
        }
        self.fold(&a);
        self.dispatch(a, mid + 1, Side::A);

        self.rounds_done += 1;
        if self.cfg.telemetry {
            // One flush decision per burst, not per message.
            self.app.maybe_publish();
        }
    }

    /// One inline quiescing pass: drain backlogs (packing them, §3.4),
    /// move whatever is on the wire, take replies. Returns how many
    /// frames + messages moved.
    fn quiesce_pass(&mut self) -> usize {
        self.now += self.cfg.round_ns;
        let now = self.now;
        if self.cfg.telemetry {
            self.app.set_now(now);
        }
        let mut moved = 0usize;

        let mut a = self.a.take().expect("quiesce holds both conns");
        self.bracket(&a);
        a.set_now(now);
        a.process_pending();
        self.fold(&a);
        moved += a.poll_transmit_burst(usize::MAX, &mut self.wire);
        self.capture(0);

        let mut b = self.b.take().expect("quiesce holds both conns");
        self.bracket(&b);
        b.set_now(now);
        let rep = b.deliver_burst(&mut self.wire);
        self.dropped += rep.dropped as u64;
        moved += rep.msgs;
        let got = b.poll_delivery_burst(usize::MAX, &mut self.msgs);
        b.prepare_burst(got);
        for m in self.msgs.drain(..) {
            b.send(m.as_slice());
            self.echoed += 1;
            b.recycle(m);
        }
        b.set_now(now + 1);
        b.process_pending();
        self.fold(&b);
        moved += b.poll_transmit_burst(usize::MAX, &mut self.wire);
        self.capture(1);
        self.b = Some(b);

        let mid = now + self.cfg.round_ns / 2;
        self.bracket(&a);
        a.set_now(mid);
        let rep = a.deliver_burst(&mut self.wire);
        self.dropped += rep.dropped as u64;
        moved += rep.msgs;
        a.poll_delivery_burst(usize::MAX, &mut self.msgs);
        for m in self.msgs.drain(..) {
            if self.cfg.measure_wall {
                if let Some(t) = self.offered_at.pop_front() {
                    self.latencies_ns.push(t.elapsed().as_nanos() as u64);
                }
            }
            self.completed += 1;
            a.recycle(m);
        }
        a.set_now(mid + 1);
        a.process_pending();
        self.fold(&a);
        self.a = Some(a);
        moved
    }

    /// Quiesces the pipeline (messages still windowed/backlogged get
    /// packed, flushed and delivered), seals both domains' ledger
    /// shards, and collects the epoch-consistent merged report.
    pub fn finish(mut self) -> PipelineReport {
        self.ensure(Side::A);
        self.ensure(Side::B);
        let mut idle_passes = 0u32;
        let mut guard = 0u32;
        while idle_passes < 2 && guard < 256 {
            guard += 1;
            if self.quiesce_pass() == 0 {
                idle_passes += 1;
            } else {
                idle_passes = 0;
            }
        }

        if let Some(worker) = self.worker.as_mut() {
            worker.shutdown();
        }
        seal_ledger(&mut self.app, &self.cost);
        self.app.set_now(self.now);
        let epoch = self.coord.advance();
        self.app.publish();
        let snapshot = self.coord.collect(epoch);

        let a = self.a.take().expect("quiesced");
        let b = self.b.take().expect("quiesced");
        let mut rings: Vec<TraceRing> = Vec::new();
        if self.cfg.trace {
            for conn in [&a, &b] {
                if let Some(r) = conn.probe().trace_ring() {
                    rings.push(r.clone());
                }
            }
        }
        let ring_refs: Vec<&TraceRing> = rings.iter().collect();
        let journeys = JourneySet::reconstruct(&ring_refs);

        PipelineReport {
            snapshot,
            journeys,
            frames: self.frames,
            offered: self.offered,
            completed: self.completed,
            echoed: self.echoed,
            dropped: self.dropped,
            fast_sends: self.fast_sends,
            queued_sends: self.queued_sends,
            inline_fallbacks: self.inline_fallbacks,
            rounds: self.rounds_done,
            bursts: self.bursts,
            burst_frames: self.burst_frames,
            latencies_ns: self.latencies_ns,
            stats_a: *a.stats(),
            stats_b: *b.stats(),
            cost: self.cost,
        }
    }

    /// Runs `cfg.rounds` steps and finishes.
    pub fn run(cfg: PipelineConfig) -> PipelineReport {
        let rounds = cfg.rounds;
        let mut p = BurstPipeline::new(cfg);
        for _ in 0..rounds {
            p.step();
        }
        p.finish()
    }
}

/// The seed per-packet engine driven through the *pre-PR-9* entry
/// points (`send` / `poll_transmit` / `deliver_frame` / `poll_delivery`
/// / `process_pending`), with the exact clock schedule and operation
/// order of a [`BurstPipeline`] at burst 1 with inline posts — the
/// reference image for the burst=1 identity gate. Returns the captured
/// wire frames and both endpoints' final counters.
pub fn per_packet_reference(cfg: &PipelineConfig) -> (Vec<(u32, Vec<u8>)>, ConnStats, ConnStats) {
    let mut a = connect(cfg, 1, 2, 0xEC_0A, 1);
    let mut b = connect(cfg, 2, 1, 0xEC_0B, 2);
    let payload: Vec<u8> = (0..cfg.payload_len).map(|i| i as u8).collect();
    let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut wire: Vec<Msg> = Vec::new();
    let mut now: Nanos = 0;

    let pass = |a: &mut Box<Connection>,
                b: &mut Box<Connection>,
                frames: &mut Vec<(u32, Vec<u8>)>,
                wire: &mut Vec<Msg>,
                now: Nanos,
                send: bool|
     -> usize {
        let mut moved = 0usize;
        a.set_now(now);
        if send {
            a.send(&payload);
        } else {
            a.process_pending();
        }
        while let Some(f) = a.poll_transmit() {
            frames.push((0, f.as_slice().to_vec()));
            wire.push(f);
            moved += 1;
        }
        if send {
            a.set_now(now);
            a.process_pending();
        }
        b.set_now(now);
        for f in wire.drain(..) {
            b.deliver_frame(f);
        }
        while let Some(m) = b.poll_delivery() {
            b.send(m.as_slice());
            b.recycle(m);
            moved += 1;
        }
        b.set_now(now + 1);
        b.process_pending();
        while let Some(f) = b.poll_transmit() {
            frames.push((1, f.as_slice().to_vec()));
            wire.push(f);
            moved += 1;
        }
        let mid = now + cfg.round_ns / 2;
        a.set_now(mid);
        for f in wire.drain(..) {
            a.deliver_frame(f);
        }
        while let Some(m) = a.poll_delivery() {
            a.recycle(m);
            moved += 1;
        }
        a.set_now(mid + 1);
        a.process_pending();
        moved
    };

    for round in 0..cfg.rounds {
        now = (round + 1) * cfg.round_ns;
        pass(&mut a, &mut b, &mut frames, &mut wire, now, true);
    }
    let mut idle_passes = 0u32;
    let mut guard = 0u32;
    while idle_passes < 2 && guard < 256 {
        guard += 1;
        now += cfg.round_ns;
        if pass(&mut a, &mut b, &mut frames, &mut wire, now, false) == 0 {
            idle_passes += 1;
        } else {
            idle_passes = 0;
        }
    }
    (frames, *a.stats(), *b.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_one_inline_is_identical_to_the_seed_per_packet_engine() {
        // The tentpole identity gate: a burst-1 pipeline with inline
        // posts is the seed engine — same wire bytes, same counters.
        let cfg = PipelineConfig {
            capture_frames: true,
            ..PipelineConfig::per_packet(12)
        };
        let report = BurstPipeline::run(cfg.clone());
        let (ref_frames, ref_a, ref_b) = per_packet_reference(&cfg);
        assert!(!report.frames.is_empty());
        assert_eq!(report.frames, ref_frames, "wire bytes must be identical");
        assert_eq!(
            report.stats_a, ref_a,
            "requester counters must be identical"
        );
        assert_eq!(report.stats_b, ref_b, "echoer counters must be identical");
        assert_eq!(report.completed, report.offered);
    }

    #[test]
    fn threaded_burst_run_is_byte_identical_to_inline_burst_run() {
        // Moving the posts to the drain thread must not change what
        // goes on the wire, at any burst size.
        for burst in [1usize, 8, 32] {
            let inline_cfg = PipelineConfig {
                threaded_post: false,
                capture_frames: true,
                ..PipelineConfig::batched(6, burst)
            };
            let threaded_cfg = PipelineConfig {
                capture_frames: true,
                ..PipelineConfig::batched(6, burst)
            };
            let inline = BurstPipeline::run(inline_cfg);
            let threaded = BurstPipeline::run(threaded_cfg);
            assert_eq!(
                inline.frames, threaded.frames,
                "burst {burst}: threaded posts changed the wire bytes"
            );
            assert_eq!(inline.completed, threaded.completed);
        }
    }

    #[test]
    fn batched_threaded_run_conserves_exactly_and_completes() {
        for burst in [8usize, 32, 64] {
            let report = BurstPipeline::run(PipelineConfig::batched(10, burst));
            assert_eq!(report.offered, 10 * burst as u64);
            assert_eq!(
                report.completed, report.offered,
                "burst {burst}: every offer completes"
            );
            assert_eq!(report.echoed, report.offered);
            assert_eq!(report.dropped, 0);
            assert!(
                report.conserves(),
                "burst {burst}: merged ledger must conserve:\n{}",
                report.snapshot.render()
            );
            assert!(report.batching_factor() >= 1.0);
        }
    }

    #[test]
    fn over_window_bursts_pack_the_backlog() {
        // Bursts past the window park in the backlog and leave packed
        // on the drain (§3.4) — fewer wire frames than messages.
        let report = BurstPipeline::run(PipelineConfig::batched(8, 64));
        assert_eq!(report.completed, report.offered);
        assert!(report.queued_sends > 0, "over-window sends must queue");
        assert!(
            report.burst_frames < report.offered * 2,
            "packing must compress the wire: {} frames for {} msgs each way",
            report.burst_frames,
            report.offered
        );
    }

    #[test]
    fn capacity_one_worker_forces_inline_fallbacks_and_still_conserves() {
        // Refuse-don't-block: with a depth-1 drain pipeline the second
        // dispatch of a round often refuses; the posts must run inline
        // and the ledger must still conserve exactly.
        let cfg = PipelineConfig {
            worker_capacity: 1,
            ..PipelineConfig::batched(12, 8)
        };
        let report = BurstPipeline::run(cfg);
        assert_eq!(report.completed, report.offered);
        assert!(
            report.inline_fallbacks > 0,
            "a depth-1 pipeline must refuse at least once"
        );
        assert!(report.conserves(), "fallbacks must not break conservation");
    }

    #[test]
    fn traced_burst_journeys_complete() {
        let report = BurstPipeline::run(PipelineConfig::traced(10, 8));
        assert!(!report.journeys.is_empty(), "journeys must be observed");
        assert!(
            report.journeys.completeness() >= 0.99,
            "journeys incomplete: {}",
            report.journeys.completeness()
        );
        assert!(report.conserves());
    }

    #[test]
    fn burst_counters_roll_up_into_the_snapshot() {
        let report = BurstPipeline::run(PipelineConfig::batched(5, 16));
        let app = report
            .snapshot
            .domains
            .iter()
            .find(|d| d.label == "app")
            .expect("app domain");
        assert_eq!(app.counter(DomainCounter::Bursts), report.bursts);
        assert_eq!(app.counter(DomainCounter::BurstFrames), report.burst_frames);
        assert!(report.bursts >= 2 * report.rounds);
    }
}
