//! The two-node experiment driver.
//!
//! Two [`NodeSim`]s over one [`SimNet`], with a global virtual clock, a
//! queue of application events (workload generators schedule sends), and
//! built-in behaviours: an **echo** responder (the §5 round-trip
//! server), a **sink** (one-way streaming receiver), and a
//! **closed-loop** client (sends the next request the moment the reply
//! lands — the saturated, dashed-line case of Figure 4).
//!
//! Every message payload begins with an 8-byte big-endian id assigned by
//! the sim; that is how round-trip and one-way latencies are matched up
//! (and why the smallest payload is 8 bytes — conveniently, the paper's
//! message size).

use crate::cost::CostModel;
use crate::gc::GcModel;
use crate::metrics::Series;
use crate::node::{NodeEvent, NodeSim, PostSchedule, Stamp};
use crate::Nanos;
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_obs::{
    CritDag, CritNode, FlightRecorder, Journey, JourneySet, MaskDomain, MaskingLedger,
    MetricsSnapshot, Phase, ProbeSink, ScopeConfig, ScopeKey, ScopePlane, WatchInput, Watchdog,
    WatchdogConfig, WorkClass, XrayTag,
};
use pa_stack::StackSpec;
use pa_unet::{FaultConfig, LinkProfile, Netif, SimNet};
use pa_wire::EndpointAddr;
use std::collections::HashMap;

/// What a node's application does with deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppBehavior {
    /// Count them.
    Sink,
    /// Send each payload straight back (the RPC server).
    Echo,
    /// On each delivery, send a fresh request of the same size
    /// immediately (closed-loop load generator).
    CloseLoop,
}

/// Configuration of a two-node simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Protocol stack on both nodes.
    pub stack: StackSpec,
    /// PA configuration on both nodes.
    pub pa: PaConfig,
    /// Cost model template (layer names filled in automatically).
    pub cost: fn(Vec<String>) -> CostModel,
    /// GC policy per node.
    pub gc: [crate::gc::GcPolicy; 2],
    /// Post-processing schedule per node.
    pub schedule: [PostSchedule; 2],
    /// Link timing.
    pub profile: LinkProfile,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Retransmission-tick period (None = no ticks; enable when faults
    /// drop frames).
    pub tick_every: Option<Nanos>,
    /// Turn the cost model into a no-PA baseline (framework overhead).
    pub baseline: bool,
    /// Compiled packet filters (cost side of the ablation).
    pub compiled_filter: bool,
}

impl SimConfig {
    /// The paper's measured configuration: 4-layer stack, PA on, ML
    /// costs, GC after every reception, U-Net/ATM link.
    pub fn paper() -> SimConfig {
        SimConfig {
            stack: StackSpec::paper(),
            pa: PaConfig::paper_default(),
            cost: CostModel::paper_ml,
            gc: [crate::gc::GcPolicy::EveryReception; 2],
            schedule: [PostSchedule::AfterDelivery; 2],
            profile: LinkProfile::atm_unet(),
            faults: FaultConfig::none(),
            tick_every: None,
            baseline: false,
            compiled_filter: false,
        }
    }

    /// The paper config with the in-band trace context on: frames
    /// carry journey ids, so a traced run can be reconstructed into
    /// causal journeys (call [`TwoNodeSim::enable_tracing`] too).
    pub fn traced() -> SimConfig {
        let mut cfg = SimConfig::paper();
        cfg.pa.trace_ctx = true;
        cfg
    }

    /// The forced-leak regression scenario: the paper config with lazy
    /// post-processing off, so every post phase runs synchronously
    /// inside the send/deliver/tick that triggered it — §3.1's masking
    /// rule broken on purpose, pinning post-phase work onto the
    /// critical path. The leak detector must charge all of it to
    /// `(layer, eager-post)` and the masking ratio must collapse.
    pub fn forced_leak() -> SimConfig {
        let mut cfg = SimConfig::paper();
        cfg.pa.lazy_post = false;
        cfg
    }
}

/// A timestamped event for the Figure 4 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Completion time.
    pub at: Nanos,
    /// Node index (0 or 1).
    pub node: usize,
    /// What completed.
    pub event: NodeEvent,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct AppEvent {
    at: Nanos,
    seq: u64,
    node: usize,
    size: usize,
}

/// The attached scope plane plus each node's registered series key.
struct ScopeState {
    plane: ScopePlane,
    keys: [ScopeKey; 2],
}

/// The attached critical-path telemetry: a *dedicated* scope plane
/// (masking permille samples merged into the latency plane's cluster
/// sketch would wreck its quantiles and its roll-up reconciliation)
/// holding one masking-ratio series per node under the `mask`
/// endpoint and one on-path-cost series per (layer, node) under
/// `onpath/<layer>`.
struct CritState {
    plane: ScopePlane,
    /// Sampling cadence in virtual ns.
    cadence: Nanos,
    /// Last sample instant.
    last_at: Option<Nanos>,
    /// Per-node masking-ratio series (each sample is a permille).
    mask_keys: [ScopeKey; 2],
    /// Per-node `(layer name, series key)` on-path-cost series (each
    /// sample is the on-path ns that layer accrued since the previous
    /// sample).
    layer_keys: [Vec<(String, ScopeKey)>; 2],
    /// Cumulative per-layer on-path ns at the previous sample.
    last_onpath: [Vec<u64>; 2],
}

/// The two-node simulator.
pub struct TwoNodeSim {
    /// The two hosts; node 0 is conventionally the client.
    pub nodes: [NodeSim; 2],
    /// The network between them.
    pub net: SimNet,
    behaviors: [AppBehavior; 2],
    clock: Nanos,
    app_events: std::collections::BinaryHeap<std::cmp::Reverse<AppEvent>>,
    next_seq: u64,
    next_id: u64,
    sent_at: HashMap<u64, (Nanos, usize)>,
    /// Round-trip latencies completed at node 0.
    pub rtt: Series,
    /// One-way latencies of first deliveries.
    pub one_way: Series,
    /// Deliveries per node.
    pub delivered: [u64; 2],
    /// Round trips completed.
    pub round_trips: u64,
    next_tick: Option<Nanos>,
    tick_every: Option<Nanos>,
    /// Closed-loop requests still to issue (per node).
    pub closeloop_remaining: u64,
    closeloop_size: usize,
    /// Blocking-RPC mode for node 0: at most one request outstanding;
    /// offered requests queue at the client (Figure 5's semantics).
    rpc_mode: bool,
    rpc_outstanding: bool,
    rpc_queue: std::collections::VecDeque<(Nanos, usize)>,
    /// The time-series flight recorder, if attached.
    recorder: Option<FlightRecorder>,
    /// The pa-scope roll-up plane, if attached: per-connection →
    /// per-endpoint → cluster mergeable latency sketches with sampled
    /// exemplars, fed one sample per completed latency measurement.
    scope: Option<ScopeState>,
    /// The health watchdog, if attached: samples progress/backlog/
    /// ledger/p99 on its own virtual-time cadence.
    watchdog: Option<Watchdog>,
    /// The critical-path masking telemetry, if attached.
    critpath: Option<CritState>,
    /// Consecutive flight-recorder samples each node's send path has
    /// been wedged (backlog non-empty, prediction disabled, nothing
    /// pending to re-enable it) — the disable-counter invariant.
    wedge_samples: [u32; 2],
}

impl TwoNodeSim {
    /// Builds the simulation from a config.
    pub fn new(cfg: &SimConfig) -> TwoNodeSim {
        let names: Vec<String> = cfg
            .stack
            .build()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        let mk_node = |idx: usize| {
            let (a, b) = if idx == 0 { (1, 2) } else { (2, 1) };
            let conn = Connection::new(
                cfg.stack.build(),
                cfg.pa,
                ConnectionParams::new(
                    EndpointAddr::from_parts(a, 7),
                    EndpointAddr::from_parts(b, 7),
                    0xC0FFEE + idx as u64,
                ),
            )
            .expect("valid stack");
            let mut cost = (cfg.cost)(names.clone());
            cost.baseline_framework = cfg.baseline;
            cost.compiled_filter = cfg.compiled_filter;
            NodeSim::new(
                conn,
                cost,
                GcModel::paper(cfg.gc[idx], 77 + idx as u64),
                cfg.schedule[idx],
            )
        };
        TwoNodeSim {
            nodes: [mk_node(0), mk_node(1)],
            net: SimNet::new(cfg.profile, cfg.faults),
            behaviors: [AppBehavior::Sink, AppBehavior::Echo],
            clock: 0,
            app_events: Default::default(),
            next_seq: 0,
            next_id: 1,
            sent_at: HashMap::new(),
            rtt: Series::new(),
            one_way: Series::new(),
            delivered: [0, 0],
            round_trips: 0,
            next_tick: cfg.tick_every,
            tick_every: cfg.tick_every,
            closeloop_remaining: 0,
            closeloop_size: 8,
            rpc_mode: false,
            rpc_outstanding: false,
            rpc_queue: Default::default(),
            recorder: None,
            scope: None,
            watchdog: None,
            critpath: None,
            wedge_samples: [0, 0],
        }
    }

    // ------------------------------------------------------------------
    // Telemetry: journeys and the flight recorder
    // ------------------------------------------------------------------

    /// Installs ring trace probes (capacity `ring_capacity` records) on
    /// both nodes. With [`SimConfig::traced`] (or `pa.trace_ctx = true`)
    /// every frame carries a journey id and the run's rings can be
    /// joined back into causal journeys by [`TwoNodeSim::journeys`].
    pub fn enable_tracing(&mut self, ring_capacity: usize) {
        for node in &mut self.nodes {
            node.conn.set_probe(ProbeSink::ring(ring_capacity));
        }
    }

    /// Reconstructs the causal journeys observed by both nodes' trace
    /// rings (empty if [`TwoNodeSim::enable_tracing`] was not called).
    pub fn journeys(&self) -> JourneySet {
        let rings: Vec<&pa_obs::TraceRing> = self
            .nodes
            .iter()
            .filter_map(|n| n.conn.probe().trace_ring())
            .collect();
        JourneySet::reconstruct(&rings)
    }

    /// Renders the per-hop latency waterfall of the traced run.
    pub fn waterfall(&self) -> String {
        self.journeys().waterfall()
    }

    /// Attaches a flight recorder sampling both nodes' counters every
    /// `interval` virtual nanoseconds, retaining `capacity` points per
    /// series. Sampling happens inside [`TwoNodeSim::run_until`]; it
    /// also watches the run's invariants (per-node delivery ledger,
    /// wedged disable counters) and freezes a post-mortem on the first
    /// break.
    pub fn attach_flight_recorder(&mut self, interval: Nanos, capacity: usize) {
        self.recorder = Some(FlightRecorder::new(interval, capacity));
        self.wedge_samples = [0, 0];
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Attaches a pa-scope roll-up plane: every completed latency
    /// measurement (round trip at its origin, one-way at the receiver)
    /// is recorded into the owning node's connection sketch, its
    /// endpoint sketch, and the cluster sketch, with reservoir-sampled
    /// exemplars carrying the delivery's journey id and
    /// [`pa_obs::XrayTag`]. The plane is telemetry *beside* the stack —
    /// attaching it never changes wire bytes or connection behaviour.
    pub fn attach_scope(&mut self, cfg: ScopeConfig) {
        let mut plane = ScopePlane::new(cfg);
        let keys = [
            plane.register("node0", "node0/conn0"),
            plane.register("node1", "node1/conn0"),
        ];
        self.scope = Some(ScopeState { plane, keys });
    }

    /// The attached scope plane, if any.
    pub fn scope_plane(&self) -> Option<&ScopePlane> {
        self.scope.as_ref().map(|s| &s.plane)
    }

    /// Attaches a health watchdog sampling the run on its own
    /// virtual-time cadence: progress = total deliveries + round trips,
    /// backlog = both nodes' send backlogs, ledger = both delivery
    /// ledgers, p99 = the scope plane's cluster sketch (0 when no plane
    /// is attached, which keeps SLO-burn detection off). Alerts are
    /// forwarded to the flight recorder as post-mortems when one is
    /// attached.
    pub fn attach_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Some(Watchdog::new(cfg));
    }

    /// The attached watchdog, if any.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    // ------------------------------------------------------------------
    // Critical-path masking analysis
    // ------------------------------------------------------------------

    /// Attaches the critical-path telemetry plane: every `cadence`
    /// virtual ns (and on [`TwoNodeSim::force_critpath_sample`]) each
    /// node's cumulative masking ratio is sampled as a permille into
    /// the `mask` endpoint, and each layer's freshly accrued on-path
    /// cost into `onpath/<layer>`. A dedicated plane — never the
    /// latency plane from [`TwoNodeSim::attach_scope`] — so the two
    /// unit domains cannot pollute each other's quantiles. Attaching
    /// it changes no wire bytes and no engine decisions.
    pub fn attach_critpath(&mut self, cfg: ScopeConfig, cadence: Nanos) {
        let mut plane = ScopePlane::new(cfg);
        let mask_keys = [
            plane.register("mask", "mask/node0"),
            plane.register("mask", "mask/node1"),
        ];
        let names = self.nodes[0].conn.layer_names();
        let mk = |plane: &mut ScopePlane, node: usize| {
            names
                .iter()
                .map(|l| {
                    let key =
                        plane.register(&format!("onpath/{l}"), &format!("onpath/{l}/node{node}"));
                    (l.to_string(), key)
                })
                .collect::<Vec<_>>()
        };
        let layer_keys = [mk(&mut plane, 0), mk(&mut plane, 1)];
        self.critpath = Some(CritState {
            plane,
            cadence,
            last_at: None,
            mask_keys,
            layer_keys,
            last_onpath: [vec![0; names.len()], vec![0; names.len()]],
        });
    }

    /// The attached critical-path plane, if any.
    pub fn critpath_plane(&self) -> Option<&ScopePlane> {
        self.critpath.as_ref().map(|c| &c.plane)
    }

    /// The masking ledger of one node in the virtual-time domain:
    /// every priced phase call attributed to exactly one of {on-path,
    /// masked, leaked}, from the same priced phase table that
    /// [`TwoNodeSim::xray_report`] renders — so
    /// [`MaskingLedger::conserves`] against that table is exact. On
    /// top of the per-layer rows it adds *engine* rows (marked so
    /// conservation skips them): the fast-path engine cost of every
    /// send and delivery as on-path work, and any mid-stream receive
    /// re-fuses the engine charged to the leak ledger.
    pub fn masking_ledger(&self, node: usize) -> MaskingLedger {
        let report = self.nodes[node].xray_report();
        let mut ml =
            MaskingLedger::from_phases(&format!("node{node}"), &report.phases, MaskDomain::Virtual);
        let stats = self.nodes[node].conn.stats();
        let cost = &self.nodes[node].cost;
        let sends = stats.fast_sends + stats.slow_sends;
        let delivers = stats.fast_deliveries + stats.slow_deliveries;
        ml.push_engine(
            "engine/send",
            Phase::PreSend,
            WorkClass::OnPath,
            sends,
            sends * cost.fast_send(),
        );
        ml.push_engine(
            "engine/deliver",
            Phase::PreDeliver,
            WorkClass::OnPath,
            delivers,
            delivers * cost.fast_deliver(),
        );
        // Engine-level leaks (receive re-fuse) have no virtual price in
        // the cost model; the call counts still surface in the ledger.
        for e in &self.nodes[node].conn.leaks().entries {
            if e.layer == "pa" {
                ml.push_engine("engine/refuse", e.phase, WorkClass::Leaked, e.calls, 0);
            }
        }
        ml
    }

    /// Both nodes' masking ledgers merged.
    pub fn masking_ledger_all(&self) -> MaskingLedger {
        let mut ml = self.masking_ledger(0);
        ml.merge(&self.masking_ledger(1));
        ml
    }

    /// The run's current critical-path leak rate in permille of all
    /// attributed work (both nodes).
    pub fn leak_permille(&self) -> u64 {
        self.masking_ledger_all().leak_permille()
    }

    /// One cadence-gated critical-path sampling pass.
    fn sample_critpath(&mut self, now: Nanos) {
        let due = match &self.critpath {
            Some(cs) => cs.last_at.is_none_or(|t| now >= t + cs.cadence),
            None => false,
        };
        if due {
            self.force_critpath_sample(now);
        }
    }

    /// Takes one critical-path telemetry sample right now (also runs
    /// on the attached cadence inside [`TwoNodeSim::run_until`]; call
    /// this after a run ends to capture the final state). No-op when
    /// [`TwoNodeSim::attach_critpath`] was never called.
    pub fn force_critpath_sample(&mut self, now: Nanos) {
        if self.critpath.is_none() {
            return;
        }
        let ledgers = [self.masking_ledger(0), self.masking_ledger(1)];
        let cs = self.critpath.as_mut().expect("checked above");
        cs.last_at = Some(now);
        for (node, ml) in ledgers.iter().enumerate() {
            cs.plane.record(
                cs.mask_keys[node],
                ml.masked_permille(),
                now,
                0,
                XrayTag::none(),
            );
            for (i, (layer, key)) in cs.layer_keys[node].iter().enumerate() {
                let cum: u64 = ml
                    .rows
                    .iter()
                    .filter(|r| !r.engine && r.layer == *layer)
                    .map(|r| r.on_path_ns)
                    .sum();
                let delta = cum.saturating_sub(cs.last_onpath[node][i]);
                cs.last_onpath[node][i] = cum;
                // Zero-delta windows mean the layer stayed entirely off
                // the critical path — the healthy steady state. Only
                // actual on-path work becomes a sample, so the series
                // quantiles describe the cost *when it happens*.
                if delta > 0 {
                    cs.plane.record(*key, delta, now, 0, XrayTag::none());
                }
            }
        }
    }

    /// Reconstructs per-message causal DAGs from the traced journeys
    /// (at most `limit`, in reconstruction order; empty when
    /// [`TwoNodeSim::enable_tracing`] was off). Each observed hop
    /// contributes the on-path chain *send → wire → demux+deliver*
    /// with the cost model's fast-path durations anchored to the
    /// hop's trace timestamps, the deferred post-send/post-deliver
    /// work as masked nodes on lane 1 with happens-before edges from
    /// their trigger, and a deliver→send edge into the next hop. In a
    /// forced-leak run ([`SimConfig::forced_leak`]) the post nodes
    /// instead sit *on* the chain as leaked work — exactly how the
    /// leak looked to the wire.
    pub fn critpath_dags(&self, limit: usize) -> Vec<CritDag> {
        let set = self.journeys();
        let eager = !self.nodes[0].conn.config().lazy_post;
        // Trace rings are labelled with the connection's host id.
        let host0 = self.nodes[0].conn.local_addr().host_id() as u32;
        set.journeys()
            .iter()
            .take(limit)
            .map(|j| self.journey_dag(j, eager, host0))
            .collect()
    }

    fn journey_dag(&self, j: &Journey, eager: bool, host0: u32) -> CritDag {
        let host = |label: u32| usize::from(label != host0);
        let mut dag = CritDag::new();
        // Tail of the on-path chain from the previous hop (the deliver
        // node, or in eager mode the leaked post-deliver it waits on).
        let mut prev: Option<usize> = None;
        for leg in &j.hops {
            let sender = host(leg.sent_conn);
            let cost = &self.nodes[sender].cost;
            let (fs, ps) = (cost.fast_send(), cost.post_send_frame());
            let send_end = if eager {
                leg.sent_at.saturating_sub(ps)
            } else {
                leg.sent_at
            };
            let send = dag.node(CritNode {
                label: format!("send-pre+filter h{}", leg.hop),
                host: sender as u32,
                lane: 0,
                class: WorkClass::OnPath,
                start: send_end.saturating_sub(fs),
                dur: fs,
            });
            if let Some(p) = prev {
                dag.edge(p, send);
            }
            let mut chain = send;
            if eager {
                // Post-send ran synchronously before the frame left.
                let post = dag.node(CritNode {
                    label: format!("post-send h{} (leaked)", leg.hop),
                    host: sender as u32,
                    lane: 0,
                    class: WorkClass::Leaked,
                    start: send_end,
                    dur: ps,
                });
                dag.edge(send, post);
                chain = post;
            } else {
                let post = dag.node(CritNode {
                    label: format!("post-send h{}", leg.hop),
                    host: sender as u32,
                    lane: 1,
                    class: WorkClass::Masked,
                    start: leg.sent_at,
                    dur: ps,
                });
                dag.edge(send, post);
            }
            let Some(recv_at) = leg.recv_at else {
                // Lost on the wire: the chain ends here.
                prev = None;
                continue;
            };
            let receiver = leg.recv_conn.map(host).unwrap_or(1 - sender);
            let rcost = &self.nodes[receiver].cost;
            let (fd, pd) = (rcost.fast_deliver(), rcost.post_deliver_frame());
            let wire = dag.node(CritNode {
                label: format!("wire h{}", leg.hop),
                host: sender as u32,
                lane: 0,
                class: WorkClass::OnPath,
                start: leg.sent_at,
                dur: recv_at.saturating_sub(fd).saturating_sub(leg.sent_at),
            });
            dag.edge(chain, wire);
            let deliver = dag.node(CritNode {
                label: format!("demux+filter+deliver h{}", leg.hop),
                host: receiver as u32,
                lane: 0,
                class: WorkClass::OnPath,
                start: recv_at.saturating_sub(fd),
                dur: fd,
            });
            dag.edge(wire, deliver);
            if eager {
                let post = dag.node(CritNode {
                    label: format!("post-deliver h{} (leaked)", leg.hop),
                    host: receiver as u32,
                    lane: 0,
                    class: WorkClass::Leaked,
                    start: recv_at,
                    dur: pd,
                });
                dag.edge(deliver, post);
                prev = Some(post);
            } else {
                let post = dag.node(CritNode {
                    label: format!("post-deliver h{}", leg.hop),
                    host: receiver as u32,
                    lane: 1,
                    class: WorkClass::Masked,
                    start: recv_at,
                    dur: pd,
                });
                dag.edge(deliver, post);
                prev = Some(deliver);
            }
        }
        dag
    }

    /// A priced [`pa_obs::XrayReport`] for one node, joined with the
    /// flight recorder when one is attached: the report's notes gain
    /// the recorder's sample count, any frozen post-mortem, and the
    /// latest slow-path sample — the "why is this connection off the
    /// fast path" diagnosis in one artifact.
    pub fn xray_report(&self, node: usize) -> pa_obs::XrayReport {
        let mut r = self.nodes[node].xray_report();
        r.scope = format!("node{node} ({})", r.scope);
        if let Some(fr) = &self.recorder {
            r.notes
                .push(format!("flight recorder: {} samples", fr.samples()));
            if let Some((at, v)) = fr.get("fast_path_ratio").and_then(|ts| ts.last()) {
                r.notes.push(format!(
                    "last sample: fast-path ratio {:.1}% at {at} ns",
                    v * 100.0
                ));
            }
            if let Some((at, v)) = fr
                .get(&format!("backlog_depth_node{node}"))
                .and_then(|ts| ts.last())
            {
                r.notes
                    .push(format!("last sample: backlog depth {v:.0} at {at} ns"));
            }
            if let Some(pm) = fr.postmortem() {
                r.notes
                    .push(format!("POST-MORTEM at {} ns: {}", pm.at, pm.reason));
            }
        }
        r
    }

    /// A unified metrics snapshot of the whole simulation at `at`:
    /// per-node connection counters under scopes `node0` / `node1`,
    /// plus sim-level delivery totals under `sim`.
    pub fn metrics_snapshot(&self, at: Nanos) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new(at);
        for (i, node) in self.nodes.iter().enumerate() {
            node.conn
                .stats()
                .record_into(&mut snap, &format!("node{i}"));
        }
        snap.record("sim", "delivered_node0", self.delivered[0]);
        snap.record("sim", "delivered_node1", self.delivered[1]);
        snap.record("sim", "round_trips", self.round_trips);
        if let Some(scope) = &self.scope {
            scope.plane.record_into(&mut snap, "scope");
        }
        if let Some(fr) = &self.recorder {
            fr.record_into(&mut snap, "recorder");
        }
        if let Some(wd) = &self.watchdog {
            snap.record("watchdog", "samples", wd.samples());
            snap.record("watchdog", "alerts_total", wd.alerts_total());
            snap.record("watchdog", "ledger_broken", wd.ledger_broken() as u64);
        }
        snap
    }

    /// One flight-recorder sampling pass at `now`: counter deltas plus
    /// instantaneous gauges (backlog depth, in-flight frames), and the
    /// invariant watch.
    fn sample_flight_recorder(&mut self, now: Nanos) {
        if !self.recorder.as_ref().is_some_and(|fr| fr.due(now)) {
            return;
        }
        let snap = self.metrics_snapshot(now);
        let gauges = [
            (
                "backlog_depth_node0",
                self.nodes[0].conn.backlog_len() as f64,
            ),
            (
                "backlog_depth_node1",
                self.nodes[1].conn.backlog_len() as f64,
            ),
            ("net_in_flight", self.net.in_flight() as f64),
        ];
        let mut failures: Vec<String> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.conn.stats().delivery_balanced() {
                failures.push(format!("delivery ledger out of balance on node{i}"));
            }
            // Disable-counter watch: a backlog that cannot drain
            // because the send prediction stays disabled with no
            // pending work left to re-enable it. One sample can be a
            // legitimate wait (window full, ack in flight); three
            // consecutive samples with nothing in flight — and no
            // retransmission timer armed that could recover — is a
            // wedge.
            let wedged = self.tick_every.is_none()
                && node.conn.backlog_len() > 0
                && !node.conn.send_prediction().enabled()
                && !node.conn.has_pending()
                && self.net.in_flight() == 0;
            if wedged {
                self.wedge_samples[i] += 1;
                if self.wedge_samples[i] >= 3 {
                    // The attributed hold table names the culprit.
                    let hold = node
                        .conn
                        .send_prediction()
                        .top_hold()
                        .map(|(layer, reason)| format!(" (held by {layer}: {reason})"))
                        .unwrap_or_default();
                    failures.push(format!(
                        "send path wedged on node{i}: disable count {} with {} backlogged{hold}",
                        node.conn.send_prediction().disable_count(),
                        node.conn.backlog_len()
                    ));
                }
            } else {
                self.wedge_samples[i] = 0;
            }
        }
        let fr = self.recorder.as_mut().expect("checked above");
        fr.maybe_sample(&snap, &gauges);
        for reason in failures {
            fr.trigger_postmortem(now, &reason, &snap);
        }
    }

    /// Puts node 0 in blocking-RPC mode: one request outstanding at a
    /// time; further offered requests wait in a client-side queue, and
    /// the measured RTT includes that queueing delay.
    pub fn set_rpc_mode(&mut self, on: bool) {
        self.rpc_mode = on;
    }

    /// Disables per-event logging on both nodes (long sweeps).
    pub fn set_logging(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.record_log = on;
            if !on {
                n.log.clear();
            }
        }
    }

    /// Sets a node's application behaviour.
    pub fn set_behavior(&mut self, node: usize, b: AppBehavior) {
        self.behaviors[node] = b;
    }

    /// Arms the closed-loop client on node 0: `n` request-reply cycles
    /// of `size`-byte messages, starting at `start`.
    pub fn arm_closed_loop(&mut self, n: u64, size: usize, start: Nanos) {
        self.behaviors[0] = AppBehavior::CloseLoop;
        self.behaviors[1] = AppBehavior::Echo;
        self.closeloop_remaining = n.saturating_sub(1);
        self.closeloop_size = size;
        self.schedule_send(0, start, size);
    }

    /// Schedules an application send of `size` bytes on `node` at `at`.
    pub fn schedule_send(&mut self, node: usize, at: Nanos, size: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.app_events.push(std::cmp::Reverse(AppEvent {
            at,
            seq,
            node,
            size,
        }));
    }

    /// Schedules `count` sends on `node` spaced `interval` apart.
    pub fn schedule_stream(
        &mut self,
        node: usize,
        start: Nanos,
        interval: Nanos,
        count: u64,
        size: usize,
    ) {
        for i in 0..count {
            self.schedule_send(node, start + i * interval, size);
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock
    }

    /// Gathers both nodes' logs into one ordered timeline.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        let mut out: Vec<TimelineEvent> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            out.extend(node.log.iter().map(|&Stamp { at, event }| TimelineEvent {
                at,
                node: i,
                event,
            }));
        }
        out.sort_by_key(|e| e.at);
        out
    }

    /// Clears measurements (after warm-up).
    pub fn reset_measurements(&mut self) {
        self.rtt = Series::new();
        self.one_way = Series::new();
        self.delivered = [0, 0];
        self.round_trips = 0;
        self.nodes[0].log.clear();
        self.nodes[1].log.clear();
    }

    fn payload(&mut self, size: usize, echo_of: Option<u64>) -> (u64, Vec<u8>) {
        let id = match echo_of {
            Some(id) => id,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        let mut p = vec![0u8; size.max(8)];
        p[..8].copy_from_slice(&id.to_be_bytes());
        (id, p)
    }

    fn do_send(&mut self, node: usize, t: Nanos, size: usize, echo_of: Option<u64>) {
        if node == 0 && self.rpc_mode && echo_of.is_none() {
            if self.rpc_outstanding {
                // Blocking client: queue the request; its latency clock
                // is already running.
                self.rpc_queue.push_back((t, size));
                return;
            }
            self.rpc_outstanding = true;
        }
        let (id, payload) = self.payload(size, echo_of);
        if echo_of.is_none() {
            self.sent_at
                .insert(id, (t.max(self.nodes[node].cpu_free_at), node));
        }
        let local = self.nodes[node].addr();
        self.nodes[node].app_send(t, &payload, &mut self.net, local);
    }

    /// RPC mode: records arrival-time latency for queued requests.
    fn rpc_send_queued(&mut self, now: Nanos) {
        let Some((t_arrival, size)) = self.rpc_queue.pop_front() else {
            self.rpc_outstanding = false;
            return;
        };
        let (id, payload) = self.payload(size, None);
        // Latency measured from the offered-arrival instant.
        self.sent_at.insert(id, (t_arrival, 0));
        let local = self.nodes[0].addr();
        self.nodes[0].app_send(now, &payload, &mut self.net, local);
    }

    /// Records one completed latency sample into the scope plane (a
    /// no-op when none is attached). The exemplar carries the
    /// delivering connection's last received journey id (0 when the
    /// trace context is off) and its last deliver-explain tag, so an
    /// aggregate anomaly drills down to a causal trace.
    fn record_scope(&mut self, node: usize, value: Nanos, at: Nanos) {
        let Some(scope) = &mut self.scope else {
            return;
        };
        let conn = &self.nodes[node].conn;
        let journey = conn.last_recv_trace().map(|(j, _)| j).unwrap_or(0);
        let tag = conn.last_deliver_explain();
        scope
            .plane
            .record(scope.keys[node], value, at, journey, tag);
    }

    fn handle_deliveries(&mut self, node: usize, done: Nanos, delivered: Vec<pa_buf::Msg>) {
        self.delivered[node] += delivered.len() as u64;
        for msg in delivered {
            let id = msg
                .get(0, 8)
                .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
                .unwrap_or(0);
            // Latency bookkeeping is behaviour-independent: a message
            // arriving back at its originator completes a round trip;
            // anywhere else it is a one-way delivery.
            match self.sent_at.get(&id) {
                Some(&(t0, origin)) if origin == node => {
                    self.rtt.push_nanos(done - t0);
                    self.round_trips += 1;
                    self.sent_at.remove(&id);
                    self.record_scope(node, done - t0, done);
                    if node == 0 && self.rpc_mode {
                        self.rpc_send_queued(done);
                    }
                }
                Some(&(t0, _)) => {
                    self.one_way.push_nanos(done - t0);
                    self.record_scope(node, done - t0, done);
                }
                None => {}
            }
            match self.behaviors[node] {
                AppBehavior::Sink => {}
                AppBehavior::Echo => {
                    self.do_send(node, done, msg.len(), Some(id));
                }
                AppBehavior::CloseLoop => {
                    if self.closeloop_remaining > 0 {
                        self.closeloop_remaining -= 1;
                        let size = self.closeloop_size;
                        self.do_send(node, done, size, None);
                    }
                }
            }
            // The application is done with the buffer: recycle it (§6).
            self.nodes[node].recycle(msg);
        }
    }

    /// Runs until `horizon` or until nothing remains to do.
    pub fn run_until(&mut self, horizon: Nanos) {
        loop {
            // Earliest pending event across all sources.
            let mut t_next = Nanos::MAX;
            if let Some(t) = self.net.next_arrival_at() {
                t_next = t_next.min(t);
            }
            if let Some(std::cmp::Reverse(e)) = self.app_events.peek() {
                t_next = t_next.min(e.at);
            }
            for n in &self.nodes {
                if let Some(w) = n.wakeup_at {
                    t_next = t_next.min(w);
                }
            }
            if let Some(t) = self.next_tick {
                t_next = t_next.min(t);
            }
            if t_next == Nanos::MAX {
                // Quiescent: the clock stays at the last event, so
                // rates computed against `now()` reflect actual
                // activity, not the horizon.
                break;
            }
            if t_next > horizon {
                self.clock = self.clock.max(horizon);
                break;
            }
            self.clock = self.clock.max(t_next);
            let now = self.clock;

            // 1. Network arrivals due now.
            while let Some(arr) = self.net.poll_arrival(now) {
                let node = if arr.to == self.nodes[0].addr() { 0 } else { 1 };
                let frame = arr.frame;
                let at = arr.at;
                let local = self.nodes[node].addr();
                let (done, delivered) = self.nodes[node].on_frame(at, frame, &mut self.net, local);
                self.handle_deliveries(node, done, delivered);
            }

            // 2. Node wake-ups due now.
            for node in 0..2 {
                if self.nodes[node].wakeup_at.is_some_and(|w| w <= now) {
                    let local = self.nodes[node].addr();
                    let (done, delivered) = self.nodes[node].run_wakeup(now, &mut self.net, local);
                    // A backlog drain can release queued receive frames,
                    // so deliveries may surface at wake-ups too.
                    self.handle_deliveries(node, done, delivered);
                }
            }

            // 3. Application sends due now.
            while self
                .app_events
                .peek()
                .is_some_and(|std::cmp::Reverse(e)| e.at <= now)
            {
                let std::cmp::Reverse(e) = self.app_events.pop().expect("peeked");
                self.do_send(e.node, e.at.max(now), e.size, None);
            }

            // 4. Retransmission ticks.
            if let Some(t) = self.next_tick {
                if t <= now {
                    for node in 0..2 {
                        let local = self.nodes[node].addr();
                        self.nodes[node].tick(now, &mut self.net, local);
                    }
                    self.next_tick = self.tick_every.map(|dt| now + dt);
                }
            }

            // 5. Flight-recorder sampling (no-op when not attached).
            if self.recorder.is_some() {
                self.sample_flight_recorder(now);
            }

            // 6. Watchdog sampling (no-op when not attached).
            if self.watchdog.is_some() {
                self.observe_watchdog(now);
            }

            // 7. Critical-path sampling (no-op when not attached).
            if self.critpath.is_some() {
                self.sample_critpath(now);
            }
        }
    }

    /// One watchdog pass at `now` (gated by the watchdog's own
    /// cadence). Fired alerts become flight-recorder post-mortems when
    /// a recorder is attached; either way they stay queryable through
    /// [`TwoNodeSim::watchdog`].
    fn observe_watchdog(&mut self, now: Nanos) {
        if !self.watchdog.as_ref().is_some_and(|wd| wd.due(now)) {
            return;
        }
        // Ledger construction allocates; only pay for it when someone
        // consumes the leak rate (the mask-leak detector, or the
        // critpath plane is attached and an operator will look).
        let leak_permille = if self.critpath.is_some()
            || self
                .watchdog
                .as_ref()
                .is_some_and(|wd| wd.config().max_leak_permille > 0)
        {
            self.leak_permille()
        } else {
            0
        };
        let input = WatchInput {
            at: now,
            progress: self.delivered[0] + self.delivered[1] + self.round_trips,
            backlog: (self.nodes[0].conn.backlog_len() + self.nodes[1].conn.backlog_len()) as u64,
            ledger_ok: self
                .nodes
                .iter()
                .all(|n| n.conn.stats().delivery_balanced()),
            p99_ns: self
                .scope
                .as_ref()
                .map(|s| s.plane.cluster().sketch().p99())
                .unwrap_or(0),
            leak_permille,
        };
        let alerts = self
            .watchdog
            .as_mut()
            .expect("checked above")
            .observe(input);
        if !alerts.is_empty() && self.recorder.is_some() {
            let snap = self.metrics_snapshot(now);
            if let Some(fr) = self.recorder.as_mut() {
                for alert in &alerts {
                    fr.trigger_postmortem(now, &format!("watchdog: {alert}"), &snap);
                }
            }
        }
    }

    /// Runs until the simulation is quiescent (no events at all) or
    /// `horizon` passes.
    pub fn run_to_quiescence(&mut self, horizon: Nanos) {
        self.run_until(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::GcPolicy;

    #[test]
    fn single_round_trip_is_about_170us() {
        // The headline number of the paper. A *cold* round trip pays
        // ~19 µs extra for the 75-byte identification on both legs;
        // warm round trips land at ~174 µs (see the fig4 experiment).
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.set_behavior(0, AppBehavior::CloseLoop);
        sim.arm_closed_loop(1, 8, 0);
        sim.run_until(10_000_000);
        assert_eq!(sim.round_trips, 1);
        let rtt = sim.rtt.summary().mean;
        assert!((160_000.0..=200_000.0).contains(&rtt), "RTT = {} ns", rtt);
    }

    #[test]
    fn one_way_latency_is_about_85us() {
        // Cold first message: ~96 µs (carries the ident); the steady
        // state of Table 4 is measured by experiments::table4.
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.set_behavior(1, AppBehavior::Sink);
        sim.schedule_send(0, 0, 8);
        sim.run_until(10_000_000);
        assert_eq!(sim.delivered[1], 1);
        let ow = sim.one_way.summary().mean;
        assert!((80_000.0..=100_000.0).contains(&ow), "one-way = {} ns", ow);
    }

    #[test]
    fn spaced_round_trips_stay_at_170us() {
        // Below ~1650 rt/s the paper says 170 µs is maintained: space
        // requests 1 ms apart (1000 rt/s).
        let mut cfg = SimConfig::paper();
        cfg.gc = [GcPolicy::EveryReception; 2];
        let mut sim = TwoNodeSim::new(&cfg);
        sim.set_behavior(1, AppBehavior::Echo);
        sim.set_behavior(0, AppBehavior::CloseLoop);
        for i in 0..20 {
            sim.schedule_send(0, i * 1_000_000, 8);
        }
        sim.run_until(100_000_000);
        assert_eq!(sim.round_trips, 20);
        let s = sim.rtt.summary();
        assert!(
            (160_000.0..=185_000.0).contains(&s.mean),
            "mean RTT {}",
            s.mean
        );
    }

    #[test]
    fn saturated_round_trips_pay_post_and_gc() {
        // Back-to-back round trips: the dashed case of Figure 4 — the
        // paper reports ~400 µs average, ~550 worst, ≲1900/s.
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.arm_closed_loop(100, 8, 0);
        sim.run_until(200_000_000);
        assert_eq!(sim.round_trips, 100);
        let s = sim.rtt.summary();
        assert!(
            s.mean > 250_000.0,
            "saturated RTT must exceed 170 µs: {}",
            s.mean
        );
        let rate = sim.round_trips as f64 / (sim.now() as f64 / 1e9);
        assert!((1_200.0..=2_600.0).contains(&rate), "rate {rate} rt/s");
    }

    #[test]
    fn occasional_gc_raises_the_ceiling() {
        let mut cfg = SimConfig::paper();
        cfg.gc = [GcPolicy::EveryN(64); 2];
        let mut sim = TwoNodeSim::new(&cfg);
        sim.arm_closed_loop(200, 8, 0);
        sim.run_until(200_000_000);
        assert_eq!(sim.round_trips, 200);
        let rate = sim.round_trips as f64 / (sim.now() as f64 / 1e9);
        assert!(rate > 3_000.0, "occasional GC rate {rate} rt/s");
    }

    #[test]
    fn deliveries_and_ids_match_under_streaming() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 100_000, 50, 8);
        sim.run_until(100_000_000);
        assert_eq!(sim.delivered[1], 50);
        assert_eq!(sim.one_way.len(), 50);
    }

    #[test]
    fn timeline_records_both_nodes() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.arm_closed_loop(1, 8, 0);
        sim.run_until(10_000_000);
        let tl = sim.timeline();
        assert!(tl
            .iter()
            .any(|e| e.node == 0 && matches!(e.event, NodeEvent::Send(_))));
        assert!(tl
            .iter()
            .any(|e| e.node == 1 && matches!(e.event, NodeEvent::Deliver(_))));
        assert!(tl.iter().any(|e| matches!(e.event, NodeEvent::GcDone)));
        // Ordered.
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rpc_mode_limits_outstanding_to_one() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.set_behavior(0, AppBehavior::Sink);
        sim.set_behavior(1, AppBehavior::Echo);
        sim.set_rpc_mode(true);
        // Offer 5 requests at the same instant: they must serialize.
        for _ in 0..5 {
            sim.schedule_send(0, 1000, 8);
        }
        sim.run_until(100_000_000);
        assert_eq!(sim.round_trips, 5, "queued requests all complete");
        let s = sim.rtt.summary();
        // The last request waited behind four whole round trips: its
        // latency (measured from the offered instant) must reflect it.
        assert!(
            s.max > s.min * 3.0,
            "queueing visible: min {} max {}",
            s.min,
            s.max
        );
    }

    #[test]
    fn drop_accounting_reconciles_under_fault_storm() {
        // The drop-accounting invariant under drop/corrupt/duplicate/
        // reorder faults: every frame the receiver saw is either a
        // delivery (fast or slow) or exactly one entry drop. By-layer
        // drops (checksum discards, duplicate suppression) happen inside
        // slow traversals and ride within `slow_deliveries`.
        let mut cfg = SimConfig::paper();
        cfg.faults = FaultConfig::harsh(11);
        cfg.tick_every = Some(2_000_000);
        let mut sim = TwoNodeSim::new(&cfg);
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 500_000, 200, 8);
        sim.run_until(30_000_000_000);
        let f = sim.net.fault_stats();
        assert!(
            f.corrupted > 0 && f.dropped > 0,
            "storm must actually storm"
        );
        for (i, node) in sim.nodes.iter().enumerate() {
            let s = node.conn.stats();
            assert!(
                s.delivery_balanced(),
                "node {i} ledger out of balance:\n{s}"
            );
        }
        let rx = sim.nodes[1].conn.stats();
        assert!(
            rx.drops_by_layer > 0 || rx.recv_filter_misses > 0,
            "faults must exercise the drop paths:\n{rx}"
        );
    }

    #[test]
    fn traced_run_reconstructs_every_delivered_journey() {
        // The tentpole acceptance: a traced 2-node run joins ≥ 99% of
        // its delivered messages into complete journeys.
        let mut sim = TwoNodeSim::new(&SimConfig::traced());
        sim.enable_tracing(4096);
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 100, 8);
        sim.run_until(200_000_000);
        assert_eq!(sim.delivered[1], 100);
        let set = sim.journeys();
        // One journey per wired frame (packed frames carry several
        // messages under one journey; control acks journey too).
        let frames_out =
            sim.nodes[0].conn.stats().frames_out + sim.nodes[1].conn.stats().frames_out;
        assert_eq!(set.len() as u64, frames_out, "one journey per frame");
        assert!(
            set.completeness() >= 0.99,
            "completeness {} ({}/{} complete, {} orphans)",
            set.completeness(),
            set.complete_count(),
            set.len(),
            set.orphan_delivers
        );
        assert_eq!(set.orphan_delivers, 0);
        // Hop latencies are the sim's one-way times: fast one-ways sit
        // near the paper's ~87 µs envelope.
        let lats: Vec<u64> = set
            .journeys()
            .iter()
            .filter_map(|j| j.total_latency())
            .collect();
        let min = *lats.iter().min().unwrap();
        assert!(
            (60_000..=120_000).contains(&min),
            "fastest hop ≈ 87 µs, got {min}"
        );
        // The waterfall renders one line per hop plus a header.
        let w = sim.waterfall();
        assert_eq!(w.lines().count(), set.len() + 1, "{w}");
        assert!(w.contains("1→2"), "{w}");
    }

    #[test]
    fn traced_round_trips_pair_each_direction() {
        let mut sim = TwoNodeSim::new(&SimConfig::traced());
        sim.enable_tracing(1024);
        sim.arm_closed_loop(10, 8, 0);
        sim.run_until(100_000_000);
        assert_eq!(sim.round_trips, 10);
        let set = sim.journeys();
        // Each round trip is two journeys (request and echo are
        // separate frames, each minting its own id at its sender).
        assert!(set.len() >= 20, "{} journeys", set.len());
        assert!(set.completeness() >= 0.99, "{}", set.completeness());
    }

    #[test]
    fn untraced_config_yields_no_journeys() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.enable_tracing(256);
        sim.schedule_send(0, 0, 8);
        sim.run_until(10_000_000);
        assert_eq!(sim.delivered[1], 1);
        assert!(sim.journeys().is_empty(), "no trace_ctx, no journeys");
    }

    #[test]
    fn flight_recorder_samples_a_streaming_run() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.attach_flight_recorder(1_000_000, 256); // 1 ms cadence
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 100, 8);
        sim.run_until(200_000_000);
        let fr = sim.flight_recorder().unwrap();
        assert!(fr.samples() >= 10, "{} samples", fr.samples());
        let ratio = fr.get("fast_path_ratio").expect("ratio series");
        assert!(ratio.last().unwrap().1 > 0.5, "{:?}", ratio.last());
        assert!(fr.get("frames").is_some());
        assert!(fr.get("backlog_depth_node0").is_some());
        assert!(fr.postmortem().is_none(), "healthy run, no postmortem");
        let prom = fr.to_prometheus();
        assert!(prom.contains("pa_fast_path_ratio"), "{prom}");
        let json = fr.to_json_lines();
        assert!(json.lines().count() >= 30, "{}", json.lines().count());
    }

    #[test]
    fn flight_recorder_survives_fault_storm_without_postmortem() {
        // The ledger holds under faults (drop_accounting test proves
        // it); the recorder must agree and keep quiet.
        let mut cfg = SimConfig::paper();
        cfg.faults = FaultConfig::harsh(11);
        cfg.tick_every = Some(2_000_000);
        let mut sim = TwoNodeSim::new(&cfg);
        // Ticks keep sampling long past the stream; the capacity must
        // retain the interesting (stormy) window too.
        sim.attach_flight_recorder(5_000_000, 4096);
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 500_000, 100, 8);
        sim.run_until(10_000_000_000);
        let fr = sim.flight_recorder().unwrap();
        assert!(fr.samples() > 0);
        assert!(
            fr.postmortem().is_none(),
            "{}",
            fr.postmortem()
                .map(|p| p.reason.clone())
                .unwrap_or_default()
        );
        // The storm shows up in the drop series instead.
        let drops = fr.get("drops").expect("drops series");
        assert!(drops.points().iter().any(|&(_, v)| v > 0.0));
    }

    #[test]
    fn wedged_send_path_freezes_a_postmortem() {
        // A network that swallows everything and no retransmission
        // timer: once the window fills, the send prediction stays
        // disabled, the backlog can never drain, and the recorder's
        // invariant watch must freeze a post-mortem naming the wedge.
        let mut cfg = SimConfig::paper();
        cfg.faults = FaultConfig {
            drop: 1.0,
            seed: 3,
            ..FaultConfig::none()
        };
        let mut sim = TwoNodeSim::new(&cfg);
        sim.attach_flight_recorder(100_000, 128);
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 60, 8);
        sim.run_until(60_000_000);
        let fr = sim.flight_recorder().unwrap();
        let pm = fr.postmortem().expect("wedge detected");
        assert!(pm.reason.contains("wedged"), "{}", pm.reason);
        assert!(pm.report.contains("POSTMORTEM"), "{}", pm.report);
        assert!(pm.report.contains("flight-recorder series"));
    }

    #[test]
    fn scope_plane_rolls_up_per_delivery_latencies() {
        // Traced streaming run with a scope plane attached: every
        // one-way completion lands in the per-conn, per-endpoint, and
        // cluster sketches, the roll-up reconciles exactly, and the
        // exemplars carry journey ids that resolve to real journeys.
        let mut sim = TwoNodeSim::new(&SimConfig::traced());
        sim.enable_tracing(4096);
        sim.attach_scope(pa_obs::ScopeConfig::default());
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 100, 8);
        sim.run_until(200_000_000);
        assert_eq!(sim.delivered[1], 100);
        let plane = sim.scope_plane().expect("attached");
        assert_eq!(plane.records(), 100);
        assert_eq!(plane.cluster().sketch().count(), 100);
        // All samples were receiver-side one-ways on node1.
        let node1 = plane.conn("node1/conn0").expect("registered");
        assert_eq!(node1.sketch().count(), 100);
        assert!(plane.rollup_reconciles(), "roll-up must reconcile");
        assert!(plane.within_budget(), "{} bytes", plane.mem_bytes());
        // The fastest delivery sits in the one-way envelope (~87 µs);
        // the stream saturates the receiver, so the upper quantiles
        // include queueing and must order correctly above it.
        let sk = plane.cluster().sketch();
        let min = sk.min();
        assert!((60_000..=120_000).contains(&min), "min = {min} ns");
        assert!(sk.p50() >= min && sk.p99() >= sk.p50());
        // Exemplar drill-down: each sampled exemplar names a journey
        // the trace rings actually reconstruct.
        let set = sim.journeys();
        let exemplars: Vec<_> = plane.cluster().exemplars().iter().collect();
        assert!(!exemplars.is_empty(), "exemplars sampled");
        for ex in exemplars {
            assert!(ex.journey != 0, "traced run mints journey ids");
            assert!(
                set.journeys().iter().any(|j| j.id == ex.journey),
                "exemplar journey {} resolves",
                pa_obs::render_journey_id(ex.journey)
            );
        }
    }

    #[test]
    fn scope_plane_is_inert_on_the_measurements() {
        // Attaching the plane is telemetry beside the stack: an
        // identical seeded run with and without it produces identical
        // latencies and connection counters.
        let run = |with_scope: bool| {
            let mut sim = TwoNodeSim::new(&SimConfig::paper());
            if with_scope {
                sim.attach_scope(pa_obs::ScopeConfig::default());
            }
            sim.arm_closed_loop(20, 8, 0);
            sim.run_until(100_000_000);
            (
                sim.rtt.summary().mean,
                sim.nodes[0].conn.stats().frames_out,
                sim.nodes[1].conn.stats().fast_deliveries,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn watchdog_stays_healthy_on_a_clean_run() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.attach_scope(pa_obs::ScopeConfig::default());
        sim.attach_watchdog(pa_obs::WatchdogConfig::default());
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 100, 8);
        sim.run_until(200_000_000);
        let wd = sim.watchdog().expect("attached");
        assert!(wd.samples() > 0, "watchdog sampled");
        assert!(wd.healthy(), "alerts: {:?}", wd.alerts());
        assert_eq!(wd.alerts_total(), 0);
    }

    #[test]
    fn watchdog_stall_freezes_a_postmortem() {
        // The wedge scenario again, but detected by the generic
        // watchdog (flat progress + standing backlog) rather than the
        // recorder's bespoke disable-counter watch: the recorder's own
        // cadence is set far past the horizon so the post-mortem can
        // only come from the watchdog.
        let mut cfg = SimConfig::paper();
        cfg.faults = FaultConfig {
            drop: 1.0,
            seed: 3,
            ..FaultConfig::none()
        };
        let mut sim = TwoNodeSim::new(&cfg);
        sim.attach_flight_recorder(1_000_000_000, 16);
        sim.attach_watchdog(pa_obs::WatchdogConfig {
            cadence: 100_000,
            ..Default::default()
        });
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 60, 8);
        sim.run_until(60_000_000);
        let wd = sim.watchdog().expect("attached");
        assert!(!wd.healthy());
        assert!(
            wd.alerts()
                .iter()
                .any(|(_, a)| matches!(a, pa_obs::WatchAlert::Stall { .. })),
            "{:?}",
            wd.alerts()
        );
        let pm = sim.flight_recorder().unwrap().postmortem().expect("frozen");
        assert!(pm.reason.contains("watchdog"), "{}", pm.reason);
        assert!(pm.reason.contains("stall"), "{}", pm.reason);
    }

    #[test]
    fn watchdog_slo_burn_needs_a_scope_plane() {
        // An absurdly tight SLO burns immediately — but only when a
        // scope plane supplies the p99; without one the signal stays 0
        // and the watchdog keeps quiet.
        let run = |with_scope: bool| {
            let mut sim = TwoNodeSim::new(&SimConfig::paper());
            if with_scope {
                sim.attach_scope(pa_obs::ScopeConfig::default());
            }
            sim.attach_watchdog(pa_obs::WatchdogConfig {
                cadence: 1_000_000,
                slo_p99_ns: 1_000, // 1 µs: every delivery busts it
                burn_windows: 2,
                ..Default::default()
            });
            sim.set_behavior(1, AppBehavior::Sink);
            sim.nodes[0].schedule = PostSchedule::WhenIdle;
            sim.schedule_stream(0, 0, 200_000, 50, 8);
            sim.run_until(200_000_000);
            sim.watchdog().unwrap().alerts_total()
        };
        assert_eq!(run(false), 0, "no plane, no p99, no burn");
        assert!(run(true) > 0, "plane-fed p99 trips the burn alert");
    }

    #[test]
    fn metrics_snapshot_exports_the_telemetry_plane() {
        let mut sim = TwoNodeSim::new(&SimConfig::paper());
        sim.attach_scope(pa_obs::ScopeConfig::default());
        sim.attach_flight_recorder(1_000_000, 64);
        sim.attach_watchdog(pa_obs::WatchdogConfig::default());
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 200_000, 20, 8);
        sim.run_until(100_000_000);
        let snap = sim.metrics_snapshot(sim.now());
        assert_eq!(snap.get("scope", "records"), Some(20));
        assert!(snap.get("scope", "mem_bytes").is_some_and(|v| v > 0));
        assert!(snap.get("recorder", "samples").is_some_and(|v| v > 0));
        assert_eq!(snap.get("recorder", "postmortems"), Some(0));
        assert!(snap.get("watchdog", "samples").is_some_and(|v| v > 0));
        assert_eq!(snap.get("watchdog", "ledger_broken"), Some(0));
    }

    #[test]
    fn lossy_network_with_ticks_still_completes() {
        let mut cfg = SimConfig::paper();
        cfg.faults = FaultConfig {
            drop: 0.1,
            seed: 5,
            ..FaultConfig::none()
        };
        cfg.tick_every = Some(2_000_000);
        let mut sim = TwoNodeSim::new(&cfg);
        sim.set_behavior(1, AppBehavior::Sink);
        sim.nodes[0].schedule = PostSchedule::WhenIdle;
        sim.schedule_stream(0, 0, 500_000, 40, 8);
        sim.run_until(3_000_000_000);
        assert_eq!(sim.delivered[1], 40, "reliability layer recovers drops");
    }
}
