//! Measurement collection and report formatting.

use crate::Nanos;
use std::fmt::Write as _;

/// A set of scalar samples (latencies, intervals).
#[derive(Debug, Default, Clone)]
pub struct Series {
    samples: Vec<f64>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Series {
        Series::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Adds a nanosecond sample.
    pub fn push_nanos(&mut self, v: Nanos) {
        self.samples.push(v as f64);
    }

    /// The raw samples, in recording order.
    pub fn values(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summary statistics.
    ///
    /// Sorting uses `f64::total_cmp`, so a stray NaN (e.g. a rate
    /// computed over a zero-length window) cannot panic the report —
    /// NaNs order after every number and surface in `max` where they
    /// are visible instead of fatal. The standard deviation is the
    /// *sample* (n−1) estimator, the right one for measured runs.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            (sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let pick = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        Summary {
            count: n,
            mean,
            stddev,
            min: sorted[0],
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Summary statistics of a [`Series`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample (n−1) standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Formats nanoseconds as microseconds with one decimal.
pub fn us(ns: Nanos) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Formats a float of nanoseconds as microseconds.
pub fn us_f(ns: f64) -> String {
    format!("{:.1}", ns / 1000.0)
}

/// A fixed-width text table for the paper-style reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().max(ncol))
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.summary().count, 0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Series::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.mean, 3.0);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.p50, 3.0);
        // Sample stddev of 1..=5: sqrt(10/4) = sqrt(2.5) ≈ 1.5811.
        assert!((sum.stddev - 1.5811).abs() < 0.01, "{}", sum.stddev);
    }

    #[test]
    fn nan_samples_do_not_panic_the_summary() {
        let mut s = Series::new();
        s.push(1.0);
        s.push(f64::NAN); // e.g. a rate over a zero-length window
        s.push(2.0);
        let sum = s.summary(); // must not panic
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 1.0);
        // total_cmp orders NaN after every number: it lands in max,
        // visible to a human reading the report.
        assert!(sum.max.is_nan());
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let mut s = Series::new();
        s.push(7.0);
        let sum = s.summary();
        assert_eq!(sum.stddev, 0.0);
        assert_eq!(sum.mean, 7.0);
    }

    #[test]
    fn percentiles_on_skewed_data() {
        let mut s = Series::new();
        for i in 0..100 {
            s.push(i as f64);
        }
        let sum = s.summary();
        assert_eq!(sum.p90, 89.0);
        assert_eq!(sum.p99, 98.0);
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(us(170_000), "170.0");
        assert_eq!(us_f(85_500.0), "85.5");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["what", "value"]);
        t.row(&["one-way latency".into(), "85 µs".into()]);
        t.row(&["throughput".into(), "80000 msgs/s".into()]);
        let r = t.render();
        assert!(r.contains("one-way latency"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
