//! §2 — header overhead: cross-layer packing vs. traditional per-layer
//! headers, and the cookie vs. connection-identification saving.
//!
//! Paper anchors: each Horus layer header padded to 4 bytes costs "a
//! total padding of at least 12 bytes — for a fairly small protocol
//! stack — and going up quickly for each additional layer"; the
//! connection identification "typically occupies about 76 bytes",
//! replaced in the common case by the 8-byte preamble; compiled
//! per-message headers land "much less than 40 bytes".

use crate::metrics::Table;
use pa_core::{Connection, ConnectionParams, PaConfig};
use pa_stack::StackSpec;
use pa_wire::{Class, EndpointAddr, LayoutBuilder, LayoutMode, PREAMBLE_LEN};

/// Header accounting for one layout mode of the paper stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeReport {
    /// Layout mode measured.
    pub mode: LayoutMode,
    /// Conn-ident header bytes.
    pub ident: usize,
    /// Protocol-specific header bytes.
    pub proto: usize,
    /// Message-specific header bytes.
    pub message: usize,
    /// Gossip header bytes.
    pub gossip: usize,
    /// Common-case per-message wire overhead for an 8-byte message
    /// (preamble + always-present headers + packing byte).
    pub common_case_overhead: usize,
    /// First-message / no-cookie overhead (adds the identification).
    pub worst_case_overhead: usize,
}

/// One point of the padding-growth sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Number of synthetic layers.
    pub layers: usize,
    /// Packed total header bytes.
    pub packed: usize,
    /// Traditional (4-byte padded) total header bytes.
    pub traditional: usize,
    /// Padding bytes the traditional layout wastes.
    pub padding: usize,
}

/// The full E5 result.
#[derive(Debug, Clone)]
pub struct Headers {
    /// Paper-stack accounting per mode.
    pub modes: Vec<ModeReport>,
    /// Padding growth with stack depth.
    pub sweep: Vec<SweepPoint>,
}

fn paper_stack_report(mode: LayoutMode) -> ModeReport {
    let conn = Connection::new(
        StackSpec::paper().build(),
        PaConfig {
            layout_mode: mode,
            ..PaConfig::paper_default()
        },
        ConnectionParams::new(
            EndpointAddr::from_parts(1, 1),
            EndpointAddr::from_parts(2, 1),
            1,
        ),
    )
    .expect("valid stack");
    let l = conn.layout();
    let ident = l.class_len(Class::ConnId);
    let proto = l.class_len(Class::Protocol);
    let message = l.class_len(Class::Message);
    let gossip = l.class_len(Class::Gossip);
    let common = PREAMBLE_LEN + proto + message + gossip + 1; // +1 packing byte
    ModeReport {
        mode,
        ident,
        proto,
        message,
        gossip,
        common_case_overhead: common,
        worst_case_overhead: common + ident,
    }
}

/// A synthetic "fairly small" layer: one flag, one counter, one word —
/// the shape that makes per-layer 4-byte padding hurt.
fn synthetic_sweep(max_layers: usize) -> Vec<SweepPoint> {
    (1..=max_layers)
        .map(|n| {
            let mut b = LayoutBuilder::new();
            for i in 0..n {
                b.begin_layer(&format!("l{i}"));
                // A flag bit and a word — the shape that makes per-layer
                // 4-byte-aligned headers pad heavily.
                b.add_field(Class::Protocol, "flag", 1, None)
                    .expect("valid");
                b.add_field(Class::Protocol, "word", 32, None)
                    .expect("valid");
            }
            let packed = b.compile(LayoutMode::Packed).expect("compiles");
            let trad = b.compile(LayoutMode::Traditional).expect("compiles");
            let packed_len = packed.class_len(Class::Protocol);
            let trad_len = trad.class_len(Class::Protocol);
            SweepPoint {
                layers: n,
                packed: packed_len,
                traditional: trad_len,
                padding: trad_len - (packed_len),
            }
        })
        .collect()
}

/// Runs the header-overhead accounting.
pub fn run() -> Headers {
    Headers {
        modes: vec![
            paper_stack_report(LayoutMode::Packed),
            paper_stack_report(LayoutMode::Traditional),
            paper_stack_report(LayoutMode::Traditional8),
        ],
        sweep: synthetic_sweep(10),
    }
}

impl Headers {
    /// Renders both tables.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "layout",
            "ident B",
            "proto B",
            "msg B",
            "gossip B",
            "per-msg overhead B",
            "first-msg overhead B",
        ]);
        for m in &self.modes {
            t.row(&[
                format!("{:?}", m.mode),
                m.ident.to_string(),
                m.proto.to_string(),
                m.message.to_string(),
                m.gossip.to_string(),
                m.common_case_overhead.to_string(),
                m.worst_case_overhead.to_string(),
            ]);
        }
        let mut s = Table::new(&["layers", "packed B", "traditional B", "padding B"]);
        for p in &self.sweep {
            s.row(&[
                p.layers.to_string(),
                p.packed.to_string(),
                p.traditional.to_string(),
                p.padding.to_string(),
            ]);
        }
        format!(
            "Header overhead (paper: ident ~76 B → 8 B preamble; packed per-msg headers well under 40 B;\ntraditional padding ≥ 12 B for a small stack)\n\n{}\nPadding growth with stack depth (synthetic small layers):\n\n{}",
            t.render(),
            s.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_is_about_76_bytes() {
        let h = run();
        let packed = &h.modes[0];
        assert!((70..=80).contains(&packed.ident), "{}", packed.ident);
    }

    #[test]
    fn packed_common_case_fits_one_unet_cell() {
        // Preamble + headers + packing + 8 B payload ≤ 40 B (§1's
        // single-cell constraint).
        let h = run();
        let packed = &h.modes[0];
        assert!(
            packed.common_case_overhead + 8 <= 40,
            "overhead {}",
            packed.common_case_overhead
        );
    }

    #[test]
    fn traditional_first_message_blows_the_cell() {
        let h = run();
        let trad = &h.modes[1];
        assert!(
            trad.worst_case_overhead + 8 > 40,
            "{}",
            trad.worst_case_overhead
        );
    }

    #[test]
    fn paper_stack_pays_real_padding_in_traditional_layout() {
        let h = run();
        let packed = &h.modes[0];
        let trad = &h.modes[1];
        let packed_total = packed.proto + packed.message + packed.gossip;
        let trad_total = trad.proto + trad.message + trad.gossip;
        assert!(
            trad_total >= packed_total + 5,
            "packed {packed_total} vs traditional {trad_total}"
        );
    }

    #[test]
    fn padding_grows_with_layers() {
        let h = run();
        assert!(h.sweep.windows(2).all(|w| w[1].padding >= w[0].padding));
        // The paper's "at least 12 bytes for a fairly small protocol
        // stack": our 4-layer synthetic point.
        let four = &h.sweep[3];
        assert!(four.padding >= 12, "4-layer padding {}", four.padding);
        let ten = h.sweep.last().expect("10 points");
        assert!(
            ten.padding >= 30,
            "deep stacks pad heavily: {}",
            ten.padding
        );
    }

    #[test]
    fn traditional8_never_smaller_than_traditional4() {
        let h = run();
        assert!(h.modes[2].common_case_overhead >= h.modes[1].common_case_overhead);
    }
}
