//! A1 — ablation: each PA mechanism toggled on its own.
//!
//! The paper argues for four mechanisms (header prediction + lazy
//! post-processing, cookies, packing, and — as future work — compiled
//! filters). This experiment quantifies each one's individual
//! contribution against the full PA, using the typical round trip and
//! the streaming throughput as the two scores.

use crate::gc::GcPolicy;
use crate::metrics::{us_f, Table};
use crate::node::PostSchedule;
use crate::sim::{AppBehavior, SimConfig, TwoNodeSim};

/// One ablated configuration's scores.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Configuration label.
    pub name: &'static str,
    /// Typical (unsaturated) RTT, ns.
    pub rtt: f64,
    /// Streaming throughput, 8-byte msgs/s.
    pub msgs_per_sec: f64,
}

/// The ablation results.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// All configurations; index 0 is the full PA.
    pub points: Vec<AblationPoint>,
}

fn score(name: &'static str, cfg: &SimConfig) -> AblationPoint {
    // Typical RTT: spaced round trips.
    let mut sim = TwoNodeSim::new(cfg);
    sim.set_behavior(0, AppBehavior::Sink);
    sim.set_behavior(1, AppBehavior::Echo);
    for i in 0..10u64 {
        sim.schedule_send(0, i * 10_000_000, 8);
    }
    sim.run_until(200_000_000);
    let rtt = sim.rtt.summary().mean;

    // Streaming throughput.
    let mut scfg = cfg.clone();
    scfg.gc = [GcPolicy::EveryN(16); 2];
    let mut sim = TwoNodeSim::new(&scfg);
    sim.set_behavior(1, AppBehavior::Sink);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    sim.schedule_stream(0, 0, 11_000, 20_000, 8);
    sim.run_until(10_000_000_000);
    let msgs = sim.delivered[1] as f64 / (sim.now() as f64 / 1e9);

    AblationPoint {
        name,
        rtt,
        msgs_per_sec: msgs,
    }
}

/// Runs the full PA plus each single-mechanism ablation.
pub fn run() -> Ablation {
    let full = SimConfig::paper();

    let mut no_predict = full.clone();
    no_predict.pa.predict = false;

    let mut no_cookies = full.clone();
    no_cookies.pa.cookies = false;

    let mut no_lazy = full.clone();
    no_lazy.pa.lazy_post = false;

    let mut no_packing = full.clone();
    no_packing.pa.packing = false;
    no_packing.pa.max_pack = 1;

    let mut compiled = full.clone();
    compiled.compiled_filter = true;
    compiled.pa.filter_backend = pa_core::FilterBackend::Compiled;

    Ablation {
        points: vec![
            score("full PA", &full),
            score("- prediction", &no_predict),
            score("- cookies", &no_cookies),
            score("- lazy post", &no_lazy),
            score("- packing", &no_packing),
            score("+ compiled filter", &compiled),
        ],
    }
}

impl Ablation {
    /// Renders the table.
    pub fn render(&self) -> String {
        let base = &self.points[0];
        let mut t = Table::new(&[
            "configuration",
            "RTT µs",
            "ΔRTT",
            "stream msgs/s",
            "Δstream",
        ]);
        for p in &self.points {
            t.row(&[
                p.name.into(),
                us_f(p.rtt),
                format!("{:+.0}%", (p.rtt / base.rtt - 1.0) * 100.0),
                format!("{:.0}", p.msgs_per_sec),
                format!(
                    "{:+.0}%",
                    (p.msgs_per_sec / base.msgs_per_sec - 1.0) * 100.0
                ),
            ]);
        }
        format!("Ablation: one PA mechanism at a time\n\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name<'a>(a: &'a Ablation, n: &str) -> &'a AblationPoint {
        a.points.iter().find(|p| p.name == n).expect("present")
    }

    #[test]
    fn removing_prediction_slows_the_round_trip() {
        let a = run();
        let full = by_name(&a, "full PA");
        let nopred = by_name(&a, "- prediction");
        assert!(
            nopred.rtt > full.rtt + 100_000.0,
            "prediction is worth >100 µs/rt: {} vs {}",
            nopred.rtt,
            full.rtt
        );
    }

    #[test]
    fn removing_lazy_post_puts_130us_back_on_the_path() {
        let a = run();
        let full = by_name(&a, "full PA");
        let nolazy = by_name(&a, "- lazy post");
        // Each side adds post-send (80) + post-deliver (50) inline.
        let delta = nolazy.rtt - full.rtt;
        assert!((150_000.0..=400_000.0).contains(&delta), "Δ {delta}");
    }

    #[test]
    fn removing_packing_kills_streaming_but_not_latency() {
        let a = run();
        let full = by_name(&a, "full PA");
        let nopack = by_name(&a, "- packing");
        assert!(nopack.msgs_per_sec < full.msgs_per_sec / 3.0);
        assert!(
            (nopack.rtt - full.rtt).abs() < 30_000.0,
            "latency unaffected"
        );
    }

    #[test]
    fn cookies_cost_is_modest_but_real() {
        let a = run();
        let full = by_name(&a, "full PA");
        let nocookie = by_name(&a, "- cookies");
        // ~75 extra bytes per frame over a 15 MB/s link ≈ +5 µs per leg.
        assert!(nocookie.rtt > full.rtt, "{} vs {}", nocookie.rtt, full.rtt);
        assert!(
            nocookie.rtt < full.rtt + 120_000.0,
            "but it is not the whole story"
        );
    }

    #[test]
    fn compiled_filter_shaves_a_little() {
        let a = run();
        let full = by_name(&a, "full PA");
        let comp = by_name(&a, "+ compiled filter");
        assert!(comp.rtt < full.rtt, "{} vs {}", comp.rtt, full.rtt);
    }
}
