//! §5 — per-layer overhead: "we also measured the performance for a
//! stack where the layer that actually implemented the sliding window
//! was stacked twice … the post-processing of the send and delivery
//! operations take about 15 µsecs each. We did not find additional
//! overhead for garbage collection."
//!
//! The crucial observation the experiment supports: extra layers cost
//! *post-processing* time (off the critical path), so the typical round
//! trip is unchanged — only the saturation ceiling drops.

use crate::cost::CostModel;
use crate::metrics::{us, us_f, Table};
use crate::node::PathHistos;
use crate::sim::{SimConfig, TwoNodeSim};
use pa_stack::StackSpec;

/// Measurements for one stack depth.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthPoint {
    /// Number of window layers stacked.
    pub window_copies: usize,
    /// Total layers.
    pub layers: usize,
    /// Post-send cost per frame, ns (model).
    pub post_send_ns: u64,
    /// Post-deliver cost per frame, ns (model).
    pub post_deliver_ns: u64,
    /// Typical (unsaturated) RTT, ns.
    pub typical_rtt: f64,
    /// Saturated closed-loop rate, rt/s.
    pub saturated_rate: f64,
    /// Fast- vs slow-path cost distributions, merged over both nodes
    /// and both runs (p50/p90/p99 in the rendered table).
    pub histos: PathHistos,
}

/// The layer-scaling experiment.
#[derive(Debug, Clone)]
pub struct LayerScaling {
    /// One point per stack depth.
    pub points: Vec<DepthPoint>,
}

fn measure(window_copies: usize) -> DepthPoint {
    let spec = StackSpec {
        window_copies,
        ..StackSpec::paper()
    };
    let names: Vec<String> = spec.build().iter().map(|l| l.name().to_string()).collect();
    let model = CostModel::paper_ml(names);

    let mut cfg = SimConfig::paper();
    cfg.stack = spec.clone();

    let mut histos = PathHistos::default();

    // Typical RTT: spaced round trips.
    let mut sim = TwoNodeSim::new(&cfg);
    sim.set_behavior(0, crate::sim::AppBehavior::Sink);
    sim.set_behavior(1, crate::sim::AppBehavior::Echo);
    for i in 0..10u64 {
        sim.schedule_send(0, i * 5_000_000, 8);
    }
    sim.run_until(100_000_000);
    let typical_rtt = sim.rtt.summary().mean;
    for node in &sim.nodes {
        histos.merge(&node.histos);
    }

    // Saturated rate: back-to-back.
    let mut cfg2 = cfg.clone();
    cfg2.gc = [crate::gc::GcPolicy::EveryN(64); 2];
    let mut sim = TwoNodeSim::new(&cfg2);
    sim.nodes[0].schedule = crate::node::PostSchedule::WhenIdle;
    sim.arm_closed_loop(500, 8, 0);
    sim.run_until(2_000_000_000);
    let saturated_rate = sim.round_trips as f64 / (sim.now() as f64 / 1e9);
    for node in &sim.nodes {
        histos.merge(&node.histos);
    }

    // Lossy variant: drops force retransmissions, which defeat the
    // header prediction — this is what populates the *slow*-path
    // histograms, so the export can show fast vs slow side by side.
    let mut cfg3 = cfg.clone();
    cfg3.faults = pa_unet::FaultConfig {
        drop: 0.1,
        seed: 5,
        ..pa_unet::FaultConfig::none()
    };
    cfg3.tick_every = Some(2_000_000);
    let mut sim = TwoNodeSim::new(&cfg3);
    sim.set_behavior(1, crate::sim::AppBehavior::Sink);
    sim.nodes[0].schedule = crate::node::PostSchedule::WhenIdle;
    sim.schedule_stream(0, 0, 500_000, 40, 8);
    sim.run_until(3_000_000_000);
    for node in &sim.nodes {
        histos.merge(&node.histos);
    }

    DepthPoint {
        window_copies,
        layers: spec.layer_count(),
        post_send_ns: model.post_send_frame(),
        post_deliver_ns: model.post_deliver_frame(),
        typical_rtt,
        saturated_rate,
        histos,
    }
}

/// Runs depths 1..=3 (the paper measured 1 and 2).
pub fn run() -> LayerScaling {
    LayerScaling {
        points: (1..=3).map(measure).collect(),
    }
}

impl LayerScaling {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "window copies",
            "layers",
            "post-send µs",
            "post-deliver µs",
            "typical RTT µs",
            "max rt/s",
        ]);
        for p in &self.points {
            t.row(&[
                p.window_copies.to_string(),
                p.layers.to_string(),
                us(p.post_send_ns),
                us(p.post_deliver_ns),
                us_f(p.typical_rtt),
                format!("{:.0}", p.saturated_rate),
            ]);
        }
        let mut out = format!(
            "Layer scaling (paper: doubling the window layer adds ~15 µs to each post phase,\nno extra GC, critical path unchanged)\n\n{}",
            t.render()
        );

        // Per-path cost distributions: the histogram evidence behind the
        // claim. Fast paths should be depth-independent; slow paths grow.
        let mut h = Table::new(&[
            "window copies",
            "path",
            "n",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "max µs",
        ]);
        for p in &self.points {
            for (path, s) in p.histos.summaries() {
                h.row(&[
                    p.window_copies.to_string(),
                    path.to_string(),
                    s.count.to_string(),
                    us(s.p50),
                    us(s.p90),
                    us(s.p99),
                    us(s.max),
                ]);
            }
        }
        out.push_str("\nPer-path cost distributions (merged over both nodes):\n\n");
        out.push_str(&h.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_window_adds_15us_to_each_post_phase() {
        let r = run();
        assert_eq!(r.points[1].post_send_ns - r.points[0].post_send_ns, 15_000);
        assert_eq!(
            r.points[1].post_deliver_ns - r.points[0].post_deliver_ns,
            15_000
        );
    }

    #[test]
    fn typical_rtt_unchanged_by_extra_layers() {
        // The masking claim itself: post costs are off the critical
        // path, so the spaced round trip stays ~170 µs at any depth.
        let r = run();
        for p in &r.points {
            assert!(
                (160_000.0..=190_000.0).contains(&p.typical_rtt),
                "depth {}: {}",
                p.window_copies,
                p.typical_rtt
            );
        }
    }

    #[test]
    fn histogram_export_reports_fast_vs_slow_percentiles() {
        let r = run();
        for p in &r.points {
            assert!(p.histos.fast_send.count() > 0, "depth {}", p.window_copies);
            // The typical fast send is depth-independent: p50 = 25 µs.
            assert_eq!(p.histos.fast_send.p50(), 25_000);
            assert_eq!(p.histos.fast_deliver.p50(), 25_000);
            // The lossy run defeats the prediction, so slow paths appear
            // too — and a slow delivery costs strictly more than a fast
            // one even at the median.
            assert!(
                p.histos.slow_deliver.count() > 0,
                "depth {}",
                p.window_copies
            );
            assert!(p.histos.slow_deliver.p50() > p.histos.fast_deliver.p50());
        }
        // Slow deliveries traverse every layer: cost grows with depth.
        assert!(
            r.points[2].histos.slow_deliver.max() > r.points[0].histos.slow_deliver.max(),
            "{} vs {}",
            r.points[2].histos.slow_deliver.max(),
            r.points[0].histos.slow_deliver.max()
        );
        let rendered = r.render();
        assert!(rendered.contains("p99"), "{rendered}");
        assert!(rendered.contains("fast_send"), "{rendered}");
        assert!(rendered.contains("slow_deliver"), "{rendered}");
    }

    #[test]
    fn saturation_ceiling_drops_with_depth() {
        let r = run();
        assert!(
            r.points[0].saturated_rate > r.points[1].saturated_rate,
            "{} vs {}",
            r.points[0].saturated_rate,
            r.points[1].saturated_rate
        );
        assert!(r.points[1].saturated_rate > r.points[2].saturated_rate);
    }
}
