//! Table 4 — "The basic performance of the O'Caml protocol stack using
//! the Protocol Accelerator."
//!
//! | What | Paper |
//! |---|---|
//! | one-way latency | 85 µs |
//! | message throughput | 80,000 msgs/s |
//! | #roundtrips/sec | 6,000 rt/s |
//! | bandwidth (1 KB msgs) | 15 MB/s |
//!
//! 8-byte user messages except for the bandwidth row. The throughput
//! and round-trip rows use occasional collection (the paper states 6000
//! rt/s is reached "by not garbage collecting every time"); the one-way
//! row is GC-independent.

use crate::gc::GcPolicy;
use crate::metrics::{us_f, Table};
use crate::node::PostSchedule;
use crate::sim::{AppBehavior, SimConfig, TwoNodeSim};

/// Measured Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4 {
    /// One-way latency for an 8-byte message, ns.
    pub one_way_ns: f64,
    /// Sustained one-way message throughput, msgs/s (8-byte messages).
    pub msgs_per_sec: f64,
    /// Closed-loop round trips per second (8-byte messages).
    pub roundtrips_per_sec: f64,
    /// Sustained bandwidth with 1 KB messages, bytes/s.
    pub bandwidth_bytes_per_sec: f64,
}

/// Runs all four rows.
pub fn run() -> Table4 {
    Table4 {
        one_way_ns: one_way_latency(),
        msgs_per_sec: message_throughput(),
        roundtrips_per_sec: roundtrip_rate(),
        bandwidth_bytes_per_sec: bandwidth(),
    }
}

/// One 8-byte message, quiet system: app-send to app-delivery.
/// Steady state — a warm-up message establishes the cookie first (the
/// paper's 85 µs excludes the identified first frame).
pub fn one_way_latency() -> f64 {
    let mut sim = TwoNodeSim::new(&SimConfig::paper());
    sim.set_behavior(1, AppBehavior::Sink);
    sim.nodes[0].schedule = PostSchedule::WhenIdle; // pure sender
    sim.schedule_send(0, 0, 8); // warm-up, carries the ident
    sim.schedule_send(0, 5_000_000, 8);
    sim.run_until(50_000_000);
    sim.one_way.summary().min
}

/// One-way streaming of 8-byte messages; the PA's packing amortizes
/// per-frame costs over backlog runs.
pub fn message_throughput() -> f64 {
    let mut cfg = SimConfig::paper();
    cfg.gc = [GcPolicy::EveryN(16); 2];
    let mut sim = TwoNodeSim::new(&cfg);
    sim.set_behavior(1, AppBehavior::Sink);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    let n: u64 = 40_000;
    // Offer slightly above the expected capacity so the backlog always
    // has a run to pack.
    let interval = 11_000; // 11 µs ≈ 90k msgs/s offered
    sim.schedule_stream(0, 0, interval, n, 8);
    sim.run_until(10_000_000_000);
    let duration_s = sim.now() as f64 / 1e9;
    sim.delivered[1] as f64 / duration_s
}

/// Closed-loop request-response rate with occasional collection.
pub fn roundtrip_rate() -> f64 {
    let mut cfg = SimConfig::paper();
    cfg.gc = [GcPolicy::EveryN(64); 2];
    let mut sim = TwoNodeSim::new(&cfg);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    sim.arm_closed_loop(2_000, 8, 0);
    sim.run_until(5_000_000_000);
    sim.round_trips as f64 / (sim.now() as f64 / 1e9)
}

/// One-way streaming of 1 KB messages; the 15 MB/s line binds.
pub fn bandwidth() -> f64 {
    let mut cfg = SimConfig::paper();
    cfg.gc = [GcPolicy::EveryN(16); 2];
    // Keep packed bodies under the 4 KB frag MTU (3 × 1 KB + headers).
    cfg.pa.max_pack = 3;
    let mut sim = TwoNodeSim::new(&cfg);
    sim.set_behavior(1, AppBehavior::Sink);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    let n: u64 = 30_000;
    let interval = 50_000; // 20 MB/s offered — above the line rate
    sim.schedule_stream(0, 0, interval, n, 1024);
    sim.run_until(4_000_000_000);
    let duration_s = sim.now() as f64 / 1e9;
    (sim.delivered[1] as f64 * 1024.0) / duration_s
}

impl Table4 {
    /// Renders in the paper's layout, with the paper's values alongside.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["What", "Paper", "Measured (sim)"]);
        t.row(&[
            "one-way latency".into(),
            "85 µs".into(),
            format!("{} µs", us_f(self.one_way_ns)),
        ]);
        t.row(&[
            "message throughput".into(),
            "80,000 msgs/sec".into(),
            format!("{:.0} msgs/sec", self.msgs_per_sec),
        ]);
        t.row(&[
            "#roundtrips/sec".into(),
            "6000 rt/sec".into(),
            format!("{:.0} rt/sec", self.roundtrips_per_sec),
        ]);
        t.row(&[
            "bandwidth (1 Kbyte msgs)".into(),
            "15 Mbytes/sec".into(),
            format!("{:.1} Mbytes/sec", self.bandwidth_bytes_per_sec / 1e6),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_matches_paper() {
        let ow = one_way_latency();
        assert!(
            (80_000.0..=90_000.0).contains(&ow),
            "one-way {ow} ns vs paper 85 µs"
        );
    }

    #[test]
    fn roundtrip_rate_near_6000() {
        let r = roundtrip_rate();
        assert!((4_000.0..=7_500.0).contains(&r), "rt/s {r} vs paper ~6000");
    }

    #[test]
    fn throughput_near_80k() {
        let m = message_throughput();
        assert!(
            (55_000.0..=110_000.0).contains(&m),
            "msgs/s {m} vs paper ~80k"
        );
    }

    #[test]
    fn bandwidth_near_line_rate() {
        let b = bandwidth();
        assert!(
            (11e6..=15.5e6).contains(&b),
            "bandwidth {b} B/s vs paper 15 MB/s"
        );
    }
}
