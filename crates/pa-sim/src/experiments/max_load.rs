//! §6 "Maximum Load" — the server-capacity analysis, measured.
//!
//! "the maximum number of Remote Procedure Calls that an individual
//! client may do is limited to 6000 per second. Even with multiple
//! clients, a server cannot process more than 6000 requests per second
//! total, because the post-processing will consume all the server's
//! available CPU cycles. … [on a multiprocessor] the protocol stacks
//! for different connections may be divided among the processors …
//! the maximum number of RPCs per second is multiplied by the number
//! of processors."

use crate::metrics::{us_f, Table};
use crate::multi::ClusterSim;

/// One cluster configuration's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Number of server processors.
    pub cpus: usize,
    /// Total completed requests per second.
    pub total_rate: f64,
    /// Mean request latency, ns.
    pub mean_rtt: f64,
}

/// The max-load experiment.
#[derive(Debug, Clone)]
pub struct MaxLoad {
    /// Sweep over (clients, cpus).
    pub points: Vec<LoadPoint>,
}

fn measure(clients: usize, cpus: usize) -> LoadPoint {
    let cfg = ClusterSim::paper_occasional_gc();
    let mut c = ClusterSim::new(&cfg, clients, cpus);
    c.run(250, 60_000_000_000);
    LoadPoint {
        clients,
        cpus,
        total_rate: c.rate(),
        mean_rtt: c.rtt.summary().mean,
    }
}

/// Runs the sweep: client scaling on one CPU, then CPU scaling.
pub fn run() -> MaxLoad {
    MaxLoad {
        points: vec![
            measure(1, 1),
            measure(2, 1),
            measure(4, 1),
            measure(8, 1),
            measure(4, 2),
            measure(8, 4),
        ],
    }
}

impl MaxLoad {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "clients",
            "server CPUs",
            "total rpc/s",
            "per-client rpc/s",
            "mean RTT µs",
        ]);
        for p in &self.points {
            t.row(&[
                p.clients.to_string(),
                p.cpus.to_string(),
                format!("{:.0}", p.total_rate),
                format!("{:.0}", p.total_rate / p.clients as f64),
                us_f(p.mean_rtt),
            ]);
        }
        format!(
            "Maximum load (§6: one CPU caps near 6000 rpc/s total no matter how many clients;\nprocessors multiply the ceiling)\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cpu_total_is_flat_in_client_count() {
        let one = measure(1, 1);
        let eight = measure(8, 1);
        // §6: the ceiling is per-server-CPU, not per-client.
        assert!(
            eight.total_rate < one.total_rate * 1.7,
            "1 client {} vs 8 clients {}",
            one.total_rate,
            eight.total_rate
        );
        assert!(
            (3_500.0..=7_500.0).contains(&one.total_rate),
            "{}",
            one.total_rate
        );
    }

    #[test]
    fn latency_degrades_as_clients_contend() {
        let one = measure(1, 1);
        let eight = measure(8, 1);
        assert!(
            eight.mean_rtt > one.mean_rtt * 2.0,
            "{} vs {}",
            eight.mean_rtt,
            one.mean_rtt
        );
    }

    #[test]
    fn cpus_multiply_the_ceiling() {
        let uni = measure(4, 1);
        let duo = measure(4, 2);
        assert!(
            duo.total_rate > uni.total_rate * 1.5,
            "{} vs {}",
            duo.total_rate,
            uni.total_rate
        );
    }
}
