//! §5's closing remark, measured: "On slower networks, such as
//! Ethernet, post-processing and garbage collection could be done
//! between round-trips as well."
//!
//! Over U-Net/ATM the 130 µs of post phases plus a ~300 µs collection
//! dwarf the 70 µs the network spends on a round trip — which is why
//! Figure 5's solid line saturates at ~1900 rt/s. Over 10 Mbit/s
//! Ethernet the wire legs alone take a millisecond; the same
//! post-processing and GC vanish into the waiting. Two consequences to
//! verify:
//!
//! 1. the closed-loop ceiling on Ethernet is set by the *network*, not
//!    by GC policy — the two GC policies converge, and
//! 2. the PA's latency win over the no-PA baseline shrinks (CPU is a
//!    smaller slice of a slower network's round trip) — layering
//!    overhead matters most on fast networks, the paper's opening
//!    argument.

use crate::cost::CostModel;
use crate::gc::GcPolicy;
use crate::metrics::{us_f, Table};
use crate::node::PostSchedule;
use crate::sim::{SimConfig, TwoNodeSim};
use pa_core::PaConfig;
use pa_unet::LinkProfile;

/// One network × configuration measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPoint {
    /// Label.
    pub name: &'static str,
    /// Typical round trip, ns.
    pub rtt: f64,
    /// Closed-loop ceiling, rt/s.
    pub max_rate: f64,
}

/// The Ethernet-vs-ATM comparison.
#[derive(Debug, Clone)]
pub struct Ethernet {
    /// ATM and Ethernet, PA on (both GC policies), plus no-PA baselines.
    pub points: Vec<NetPoint>,
}

fn measure(name: &'static str, cfg: &SimConfig) -> NetPoint {
    // Typical RTT: spaced round trips after warm-up.
    let mut sim = TwoNodeSim::new(cfg);
    sim.set_behavior(0, crate::sim::AppBehavior::Sink);
    sim.set_behavior(1, crate::sim::AppBehavior::Echo);
    sim.schedule_send(0, 0, 8); // warm-up
    for i in 1..=8u64 {
        sim.schedule_send(0, i * 20_000_000, 8);
    }
    sim.run_until(400_000_000);
    let rtt = sim.rtt.summary().p50;

    // Closed-loop ceiling.
    let mut sim = TwoNodeSim::new(cfg);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    sim.arm_closed_loop(300, 8, 0);
    sim.run_until(4_000_000_000);
    let max_rate = sim.round_trips as f64 / (sim.now() as f64 / 1e9);

    NetPoint {
        name,
        rtt,
        max_rate,
    }
}

/// Runs the comparison.
pub fn run() -> Ethernet {
    let atm_every = SimConfig::paper();

    let mut atm_occasional = SimConfig::paper();
    atm_occasional.gc = [GcPolicy::EveryN(64); 2];

    let mut eth_every = SimConfig::paper();
    eth_every.profile = LinkProfile::ethernet_10m();

    let mut eth_occasional = eth_every.clone();
    eth_occasional.gc = [GcPolicy::EveryN(64); 2];

    let mut eth_baseline = eth_every.clone();
    eth_baseline.pa = PaConfig::no_pa_baseline();
    eth_baseline.cost = CostModel::paper_c;
    eth_baseline.baseline = true;

    let mut atm_baseline = SimConfig::paper();
    atm_baseline.pa = PaConfig::no_pa_baseline();
    atm_baseline.cost = CostModel::paper_c;
    atm_baseline.baseline = true;

    Ethernet {
        points: vec![
            measure("ATM + PA, GC every rt", &atm_every),
            measure("ATM + PA, occasional GC", &atm_occasional),
            measure("ATM, no PA (C)", &atm_baseline),
            measure("Ethernet + PA, GC every rt", &eth_every),
            measure("Ethernet + PA, occasional GC", &eth_occasional),
            measure("Ethernet, no PA (C)", &eth_baseline),
        ],
    }
}

impl Ethernet {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["configuration", "typical RTT µs", "max rt/s"]);
        for p in &self.points {
            t.row(&[p.name.into(), us_f(p.rtt), format!("{:.0}", p.max_rate)]);
        }
        format!(
            "Network speed and the value of masking (§5: on Ethernet the post-processing\nand GC hide between round trips; §1: masking matters most on fast networks)\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_policies_converge_on_ethernet() {
        let e = run();
        let every = e
            .points
            .iter()
            .find(|p| p.name.contains("Ethernet + PA, GC every"))
            .unwrap();
        let occ = e
            .points
            .iter()
            .find(|p| p.name.contains("Ethernet + PA, occasional"))
            .unwrap();
        // On ATM the policies differ ~2.7×; on Ethernet the network
        // dominates and they must land within ~20% of each other.
        let ratio = occ.max_rate / every.max_rate;
        assert!(ratio < 1.3, "Ethernet ceilings converge: {ratio:.2}");
    }

    #[test]
    fn ethernet_rtt_is_wire_dominated() {
        let e = run();
        let pa = e
            .points
            .iter()
            .find(|p| p.name.contains("Ethernet + PA, GC every"))
            .unwrap();
        // 2 × (25 + 500 + 25) µs ≈ 1.1 ms.
        assert!((1_000_000.0..=1_300_000.0).contains(&pa.rtt), "{}", pa.rtt);
    }

    #[test]
    fn pa_speedup_shrinks_on_slow_networks() {
        let e = run();
        let f = |n: &str| e.points.iter().find(|p| p.name == n).unwrap();
        let atm_win = f("ATM, no PA (C)").rtt / f("ATM + PA, GC every rt").rtt;
        let eth_win = f("Ethernet, no PA (C)").rtt / f("Ethernet + PA, GC every rt").rtt;
        assert!(atm_win > 5.0, "ATM win {atm_win:.1}×");
        assert!(
            eth_win < atm_win / 2.0,
            "Ethernet win {eth_win:.1}× — masking matters most on fast networks"
        );
    }
}
