//! §1/§7 — the headline comparison: the PA masks an order of magnitude.
//!
//! "Between two SunOS user processes … we achieve a roundtrip latency of
//! 170 µsec using the PA, down from about 1.5 milliseconds in the
//! original C version of Horus." The FOX project's SML TCP cost ~9.4×
//! its C counterpart, so a no-PA ML stack sits further out still.
//!
//! Three systems over the same simulated U-Net/ATM link:
//!
//! 1. **PA-ML** — the paper's system (our default config),
//! 2. **no-PA C** — traditional layered processing in C: framework and
//!    layer costs inline on the critical path, identification on every
//!    message, padded headers,
//! 3. **no-PA ML** — the same, at ML stack-code cost.

use crate::cost::CostModel;
use crate::metrics::{us_f, Table};
use crate::sim::{SimConfig, TwoNodeSim};
use pa_core::PaConfig;

/// One system's measured round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPoint {
    /// Label.
    pub name: &'static str,
    /// Paper's figure for it, ns (None where the paper gives none).
    pub paper_ns: Option<f64>,
    /// Measured mean RTT, ns.
    pub measured_ns: f64,
}

/// The headline comparison.
#[derive(Debug, Clone)]
pub struct Headline {
    /// The three systems.
    pub systems: Vec<SystemPoint>,
}

fn rtt_of(cfg: &SimConfig) -> f64 {
    let mut sim = TwoNodeSim::new(cfg);
    // 20 well-spaced round trips (10 ms apart — far below saturation
    // for every system here).
    sim.set_behavior(0, crate::sim::AppBehavior::Sink);
    sim.set_behavior(1, crate::sim::AppBehavior::Echo);
    for i in 0..20u64 {
        sim.schedule_send(0, i * 10_000_000, 8);
    }
    sim.run_until(400_000_000);
    sim.rtt.summary().mean
}

/// Runs the three systems.
pub fn run() -> Headline {
    let pa_ml = rtt_of(&SimConfig::paper());

    let mut no_pa_c = SimConfig::paper();
    no_pa_c.pa = PaConfig::no_pa_baseline();
    no_pa_c.cost = CostModel::paper_c;
    no_pa_c.baseline = true;
    let no_pa_c_rtt = rtt_of(&no_pa_c);

    let mut no_pa_ml = SimConfig::paper();
    no_pa_ml.pa = PaConfig::no_pa_baseline();
    no_pa_ml.cost = CostModel::paper_ml;
    no_pa_ml.baseline = true;
    let no_pa_ml_rtt = rtt_of(&no_pa_ml);

    Headline {
        systems: vec![
            SystemPoint {
                name: "ML stack + PA",
                paper_ns: Some(170_000.0),
                measured_ns: pa_ml,
            },
            SystemPoint {
                name: "C Horus, no PA",
                paper_ns: Some(1_500_000.0),
                measured_ns: no_pa_c_rtt,
            },
            SystemPoint {
                name: "ML stack, no PA",
                paper_ns: None,
                measured_ns: no_pa_ml_rtt,
            },
        ],
    }
}

impl Headline {
    /// Speedup of the PA system over system `i`.
    pub fn speedup_over(&self, i: usize) -> f64 {
        self.systems[i].measured_ns / self.systems[0].measured_ns
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["system", "paper RTT µs", "measured RTT µs", "vs PA"]);
        for (i, s) in self.systems.iter().enumerate() {
            t.row(&[
                s.name.into(),
                s.paper_ns.map_or("—".into(), us_f),
                us_f(s.measured_ns),
                format!("{:.1}×", self.speedup_over(i)),
            ]);
        }
        format!(
            "Headline: round-trip latency, PA vs layered baselines\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_is_about_170us() {
        let h = run();
        assert!(
            (160_000.0..=185_000.0).contains(&h.systems[0].measured_ns),
            "{:?}",
            h.systems[0]
        );
    }

    #[test]
    fn no_pa_c_is_about_1_5ms() {
        let h = run();
        let c = h.systems[1].measured_ns;
        assert!((1_200_000.0..=1_900_000.0).contains(&c), "C no-PA {c}");
    }

    #[test]
    fn pa_wins_by_an_order_of_magnitude() {
        let h = run();
        let s = h.speedup_over(1);
        assert!(
            (6.0..=12.0).contains(&s),
            "paper: ~8.8× (1.5 ms / 170 µs); got {s:.1}×"
        );
    }

    #[test]
    fn ml_without_pa_is_the_worst() {
        let h = run();
        assert!(h.systems[2].measured_ns > h.systems[1].measured_ns * 2.0);
        assert!(h.speedup_over(2) > 15.0, "{:.1}", h.speedup_over(2));
    }
}
