//! Figure 4 — "A breakdown of the round-trip execution."
//!
//! The paper's figure shows, on two vertical timelines (sender right,
//! receiver left): SEND at 0, the message handed to U-Net at ~25 µs,
//! received 35 µs later, DELIVER done at ~85 µs, the reply's DELIVER at
//! ~170 µs, then POSTSEND DONE, POSTDELIVER DONE and GARBAGE COLLECTED
//! marching down to ~600–700 µs. A dashed second round trip depicts the
//! saturated case, where the next round trip waits on the
//! post-processing and collection of the previous one.
//!
//! We reproduce both: a timeline of one isolated round trip, and the
//! mean latency/period of back-to-back round trips.

use crate::metrics::us;
use crate::node::NodeEvent;
use crate::sim::{SimConfig, TimelineEvent, TwoNodeSim};

/// The Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Timeline of a single, isolated round trip.
    pub typical: Vec<TimelineEvent>,
    /// Round-trip latency of the isolated case, ns.
    pub typical_rtt: f64,
    /// Mean round-trip latency when driven back to back, ns.
    pub saturated_rtt: f64,
    /// Worst observed back-to-back latency, ns.
    pub saturated_worst: f64,
    /// Achieved back-to-back rate, rt/s.
    pub saturated_rate: f64,
}

/// Runs both cases.
pub fn run() -> Fig4 {
    // One isolated round trip — after a warm-up round trip, because the
    // paper's 170 µs is the steady state: the first message carries the
    // ~75-byte connection identification and runs the slow path.
    let mut sim = TwoNodeSim::new(&SimConfig::paper());
    sim.arm_closed_loop(1, 8, 0);
    sim.run_until(20_000_000);
    sim.reset_measurements();
    // Leave slack past the warm-up's trailing GC (the clock rests at
    // the last dispatch, but CPUs may still be busy).
    let t0 = sim.now() + 2_000_000;
    sim.schedule_send(0, t0, 8);
    sim.run_until(t0 + 20_000_000);
    let typical: Vec<TimelineEvent> = sim
        .timeline()
        .into_iter()
        .map(|mut e| {
            e.at -= t0; // renormalize to the figure's t = 0
            e
        })
        .collect();
    let typical_rtt = sim.rtt.summary().mean;

    // Back to back ("if the system is pushed to its limits"). The
    // saturated client overlaps post-processing with network flight.
    let mut sim = TwoNodeSim::new(&SimConfig::paper());
    sim.nodes[0].schedule = crate::node::PostSchedule::WhenIdle;
    sim.arm_closed_loop(500, 8, 0);
    sim.run_until(2_000_000_000);
    let s = sim.rtt.summary();
    Fig4 {
        typical,
        typical_rtt,
        saturated_rtt: s.mean,
        saturated_worst: s.max,
        saturated_rate: sim.round_trips as f64 / (sim.now() as f64 / 1e9),
    }
}

fn event_name(e: NodeEvent) -> &'static str {
    match e {
        NodeEvent::Send(_) => "SEND()",
        NodeEvent::WireOut => "TO U-NET",
        NodeEvent::Deliver(_) => "DELIVER()",
        NodeEvent::PostDone => "POST DONE",
        NodeEvent::GcDone => "GARBAGE COLLECTED",
    }
}

impl Fig4 {
    /// Renders the two-column timeline (receiver left, sender right —
    /// matching the figure) plus the saturated summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Figure 4: round-trip execution breakdown (times in µs)\n\n");
        out.push_str(&format!(
            "{:>10}  {:<28} {:<28}\n",
            "t (µs)", "RECEIVER (node 1)", "SENDER (node 0)"
        ));
        out.push_str(&format!("{}\n", "-".repeat(70)));
        for e in &self.typical {
            let name = event_name(e.event);
            if e.node == 1 {
                out.push_str(&format!("{:>10}  {:<28} {:<28}\n", us(e.at), name, ""));
            } else {
                out.push_str(&format!("{:>10}  {:<28} {:<28}\n", us(e.at), "", name));
            }
        }
        out.push_str(&format!(
            "\ntypical RTT: {} µs (paper: ~170 µs)\n",
            crate::metrics::us_f(self.typical_rtt)
        ));
        out.push_str(&format!(
            "saturated:   mean {} µs, worst {} µs at {:.0} rt/s (paper: ~400 µs avg, ~550 worst, ~1900 rt/s)\n",
            crate::metrics::us_f(self.saturated_rtt),
            crate::metrics::us_f(self.saturated_worst),
            self.saturated_rate,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_round_trip_breakdown() {
        let f = run();
        assert!(
            (160_000.0..=185_000.0).contains(&f.typical_rtt),
            "{}",
            f.typical_rtt
        );
        // The sender's first wire handoff is at ~25 µs.
        let first_wire = f
            .typical
            .iter()
            .find(|e| e.node == 0 && matches!(e.event, NodeEvent::WireOut))
            .expect("sender wired a frame");
        assert_eq!(first_wire.at, 25_000);
        // The receiver's delivery completes at ~85 µs.
        let deliver = f
            .typical
            .iter()
            .find(|e| e.node == 1 && matches!(e.event, NodeEvent::Deliver(_)))
            .expect("receiver delivered");
        assert!((80_000..=95_000).contains(&deliver.at), "{}", deliver.at);
        // Garbage collection lands somewhere in 300–800 µs.
        let gc = f
            .typical
            .iter()
            .find(|e| matches!(e.event, NodeEvent::GcDone))
            .expect("a collection ran");
        assert!((250_000..=900_000).contains(&gc.at), "{}", gc.at);
    }

    #[test]
    fn saturated_case_matches_paper_shape() {
        let f = run();
        assert!(
            f.saturated_rtt > f.typical_rtt * 1.5,
            "saturated {} vs typical {}",
            f.saturated_rtt,
            f.typical_rtt
        );
        assert!(
            (1_200.0..=2_600.0).contains(&f.saturated_rate),
            "{}",
            f.saturated_rate
        );
        assert!(f.saturated_worst >= f.saturated_rtt);
    }

    #[test]
    fn render_mentions_all_phases() {
        let f = run();
        let r = f.render();
        assert!(r.contains("SEND()"));
        assert!(r.contains("DELIVER()"));
        assert!(r.contains("GARBAGE COLLECTED"));
    }
}
