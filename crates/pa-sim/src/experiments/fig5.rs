//! Figure 5 — "The round-trip latency as a function of the number of
//! round-trips per second."
//!
//! Solid line: a garbage collection after every round trip — latency
//! holds at ~170 µs until ~1650 rt/s, then climbs as requests queue
//! behind post-processing + GC; the achievable maximum is ~1900 rt/s.
//! Dashed line: collecting only occasionally lifts the ceiling to
//! ~6000 rt/s (with millisecond hiccups, §5/§6).
//!
//! We sweep offered load open-loop (requests at fixed spacing) and
//! record the mean measured RTT and the achieved rate per offered rate.

use crate::gc::GcPolicy;
use crate::metrics::{us_f, Table};
use crate::sim::{AppBehavior, SimConfig, TwoNodeSim};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Offered round trips per second.
    pub offered: f64,
    /// Achieved round trips per second.
    pub achieved: f64,
    /// Mean round-trip latency, ns.
    pub mean_rtt: f64,
    /// 99th-percentile latency, ns.
    pub p99_rtt: f64,
}

/// The two series of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// GC after every reception (the solid line).
    pub gc_every: Vec<Point>,
    /// Occasional GC (the dashed line).
    pub gc_occasional: Vec<Point>,
}

fn measure(offered: f64, gc: GcPolicy) -> Point {
    let mut cfg = SimConfig::paper();
    cfg.gc = [gc; 2];
    let mut sim = TwoNodeSim::new(&cfg);
    sim.set_behavior(0, AppBehavior::Sink); // RTT recorded by origin match
    sim.set_behavior(1, AppBehavior::Echo);
    // Figure 5 measures blocking RPCs: one outstanding request, the
    // rest queue at the client (their latency includes the wait).
    sim.set_rpc_mode(true);
    sim.set_logging(false);
    // The client post-processes while waiting for the reply — the
    // adaptive scheduling behind the paper's 6000 rt/s analysis ("all
    // of the post-processing is done between the actual sending and
    // delivery of the messages").
    sim.nodes[0].schedule = crate::node::PostSchedule::WhenIdle;
    let interval = (1e9 / offered) as u64;
    let duration: u64 = 300_000_000; // 300 ms of offered load
    let count = duration / interval.max(1);
    sim.schedule_stream(0, 0, interval.max(1), count, 8);
    sim.run_until(duration + 100_000_000);
    let s = sim.rtt.summary();
    Point {
        offered,
        achieved: sim.round_trips as f64 / (sim.now() as f64 / 1e9),
        mean_rtt: s.mean,
        p99_rtt: s.p99,
    }
}

/// The offered-load grid (rt/s).
pub fn offered_grid() -> Vec<f64> {
    vec![
        250.0, 500.0, 1000.0, 1500.0, 1650.0, 1800.0, 2000.0, 3000.0, 4000.0, 5000.0, 6000.0,
    ]
}

/// Runs both series over the grid.
pub fn run() -> Fig5 {
    let grid = offered_grid();
    Fig5 {
        gc_every: grid
            .iter()
            .map(|&r| measure(r, GcPolicy::EveryReception))
            .collect(),
        gc_occasional: grid
            .iter()
            .map(|&r| measure(r, GcPolicy::EveryN(64)))
            .collect(),
    }
}

impl Fig5 {
    /// Renders both series as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "offered rt/s",
            "solid: achieved",
            "solid: RTT µs",
            "dashed: achieved",
            "dashed: RTT µs",
        ]);
        for (a, b) in self.gc_every.iter().zip(&self.gc_occasional) {
            t.row(&[
                format!("{:.0}", a.offered),
                format!("{:.0}", a.achieved),
                us_f(a.mean_rtt),
                format!("{:.0}", b.achieved),
                us_f(b.mean_rtt),
            ]);
        }
        format!(
            "Figure 5: RTT vs offered round trips/s\n(paper: solid knee ~1650 rt/s, ceiling ~1900; dashed ceiling ~6000)\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_latency_is_170us_under_both_policies() {
        for gc in [GcPolicy::EveryReception, GcPolicy::EveryN(64)] {
            let p = measure(500.0, gc);
            assert!(
                (160_000.0..=200_000.0).contains(&p.mean_rtt),
                "{gc:?}: {} ns at 500 rt/s",
                p.mean_rtt
            );
            assert!((p.achieved - 500.0).abs() < 50.0, "{}", p.achieved);
        }
    }

    #[test]
    fn gc_every_saturates_near_1900() {
        let p = measure(4000.0, GcPolicy::EveryReception);
        assert!(
            (1_300.0..=2_600.0).contains(&p.achieved),
            "solid-line ceiling: {} rt/s",
            p.achieved
        );
        assert!(p.mean_rtt > 300_000.0, "overload latency {}", p.mean_rtt);
    }

    #[test]
    fn occasional_gc_keeps_up_well_past_the_solid_knee() {
        let p = measure(3000.0, GcPolicy::EveryN(64));
        assert!((p.achieved - 3000.0).abs() < 300.0, "{}", p.achieved);
        assert!(p.mean_rtt < 400_000.0, "{}", p.mean_rtt);
    }

    #[test]
    fn crossover_ordering_holds() {
        // At 1800 rt/s the solid line is already degraded, the dashed
        // one is not.
        let solid = measure(1800.0, GcPolicy::EveryReception);
        let dashed = measure(1800.0, GcPolicy::EveryN(64));
        assert!(
            solid.mean_rtt > dashed.mean_rtt * 1.3,
            "solid {} vs dashed {}",
            solid.mean_rtt,
            dashed.mean_rtt
        );
    }
}
