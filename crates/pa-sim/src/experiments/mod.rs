//! One driver per table/figure of the paper (plus the ablation).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table4`] | Table 4 — basic performance of the O'Caml stack with the PA |
//! | [`fig4`] | Figure 4 — round-trip execution breakdown |
//! | [`fig5`] | Figure 5 — round-trip latency vs. offered round trips/s |
//! | [`layer_scaling`] | §5 — the sliding-window layer stacked twice |
//! | [`headers`] | §2 — header sizes: packed vs. traditional, cookie vs. ident |
//! | [`headline`] | §1/§7 — PA-ML vs. no-PA C Horus vs. no-PA ML |
//! | [`packing`] | §3.4/§5 — message packing: streaming and bandwidth |
//! | [`max_load`] | §6 — server capacity: client scaling and multiprocessor scaling |
//! | [`ethernet`] | §5/§1 — slow networks hide the post costs; masking matters most on fast ones |
//! | [`ablation`] | DESIGN.md A1 — each PA mechanism toggled individually |
//!
//! Every driver returns a plain result struct with a `render()` method;
//! the `pa-bench` harnesses print those, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.

pub mod ablation;
pub mod ethernet;
pub mod fig4;
pub mod fig5;
pub mod headers;
pub mod headline;
pub mod layer_scaling;
pub mod max_load;
pub mod packing;
pub mod table4;
