//! §3.4/§5 — message packing: one-way streaming throughput.
//!
//! "The packing technique used by the PA also improves one-way streaming
//! performance. For example, we are able to sustain about 80,000 8-byte
//! messages per second … In addition, we achieve the full bandwidth of
//! the underlying communication network (in this case about
//! 15 Mbytes/sec)." Without packing, every message pays its own
//! post-processing, and throughput collapses to roughly
//! 1 / (fast-send + post-send) ≈ 9.5k msgs/s.

use crate::gc::GcPolicy;
use crate::metrics::Table;
use crate::node::PostSchedule;
use crate::sim::{AppBehavior, SimConfig, TwoNodeSim};

/// One streaming measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    /// Message size, bytes.
    pub size: usize,
    /// Packing enabled?
    pub packing: bool,
    /// Sustained messages per second.
    pub msgs_per_sec: f64,
    /// Sustained payload bandwidth, bytes/s.
    pub bytes_per_sec: f64,
    /// Mean messages per frame achieved.
    pub msgs_per_frame: f64,
}

/// The packing experiment.
#[derive(Debug, Clone)]
pub struct Packing {
    /// Sweep over sizes × packing on/off.
    pub points: Vec<StreamPoint>,
}

fn stream(size: usize, packing: bool) -> StreamPoint {
    let mut cfg = SimConfig::paper();
    cfg.gc = [GcPolicy::EveryN(16); 2];
    cfg.pa.packing = packing;
    if !packing {
        cfg.pa.max_pack = 1;
    }
    // Keep packed frames under the 4 KB frag MTU.
    if size >= 512 {
        cfg.pa.max_pack = cfg.pa.max_pack.min((4096 / (size + 16)).max(1));
    }
    let mut sim = TwoNodeSim::new(&cfg);
    sim.set_behavior(1, AppBehavior::Sink);
    sim.nodes[0].schedule = PostSchedule::WhenIdle;
    let n: u64 = if packing { 30_000 } else { 4_000 };
    // Offer just above the expected ceiling for each mode.
    let interval = if packing { 11_000 } else { 80_000 };
    sim.schedule_stream(0, 0, interval, n, size);
    sim.run_until(20_000_000_000);
    let secs = sim.now() as f64 / 1e9;
    let frames = sim.nodes[1].conn.stats().frames_in.max(1);
    StreamPoint {
        size,
        packing,
        msgs_per_sec: sim.delivered[1] as f64 / secs,
        bytes_per_sec: (sim.delivered[1] as f64 * size as f64) / secs,
        msgs_per_frame: sim.delivered[1] as f64 / frames as f64,
    }
}

/// Runs the sweep (8 B with and without packing, plus 1 KB bandwidth).
pub fn run() -> Packing {
    Packing {
        points: vec![
            stream(8, true),
            stream(8, false),
            stream(1024, true),
            stream(1024, false),
        ],
    }
}

impl Packing {
    /// Throughput ratio packed/unpacked at 8 bytes.
    pub fn packing_speedup(&self) -> f64 {
        self.points[0].msgs_per_sec / self.points[1].msgs_per_sec
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["size B", "packing", "msgs/s", "MB/s", "msgs/frame"]);
        for p in &self.points {
            t.row(&[
                p.size.to_string(),
                if p.packing { "on" } else { "off" }.into(),
                format!("{:.0}", p.msgs_per_sec),
                format!("{:.2}", p.bytes_per_sec / 1e6),
                format!("{:.1}", p.msgs_per_frame),
            ]);
        }
        format!(
            "Message packing (paper: ~80,000 8-B msgs/s and full 15 MB/s with 1 KB msgs)\n\n{}\npacking speedup at 8 B: {:.1}×\n",
            t.render(),
            self.packing_speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_8b_throughput_near_80k() {
        let p = stream(8, true);
        assert!(
            (55_000.0..=110_000.0).contains(&p.msgs_per_sec),
            "packed: {} msgs/s",
            p.msgs_per_sec
        );
        assert!(
            p.msgs_per_frame > 4.0,
            "packing must amortize: {}",
            p.msgs_per_frame
        );
    }

    #[test]
    fn unpacked_8b_throughput_collapses() {
        let p = stream(8, false);
        assert!(
            (5_000.0..=16_000.0).contains(&p.msgs_per_sec),
            "unpacked: {} msgs/s",
            p.msgs_per_sec
        );
        assert!(p.msgs_per_frame <= 1.01);
    }

    #[test]
    fn packing_wins_by_several_x() {
        let r = run();
        assert!(r.packing_speedup() > 4.0, "{:.1}", r.packing_speedup());
    }

    #[test]
    fn kilobyte_messages_reach_line_rate_with_packing() {
        let p = stream(1024, true);
        assert!(
            (11e6..=15.5e6).contains(&p.bytes_per_sec),
            "1 KB packed bandwidth {} B/s",
            p.bytes_per_sec
        );
    }
}
